"""Setup script (legacy path: the environment's setuptools lacks the wheel
package needed for PEP 660 editable installs, so metadata lives here)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LiMiT reproduction: precise, low-overhead performance-counter "
        "access on a simulated machine (Demme & Sethumadhavan, ISCA 2011)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-workbench=repro.cli:main",
        ]
    },
)
