"""repro — reproduction of "Rapid identification of architectural
bottlenecks via precise event counting" (Demme & Sethumadhavan, ISCA 2011).

The package implements LiMiT — precise, low-overhead userspace access to
virtualized performance counters — together with the full substrate it needs
(a deterministic multicore simulator with a PMU-aware kernel), the baseline
access techniques the paper compares against, generative models of the
paper's application workloads, and the analysis/experiment harness that
regenerates every evaluation artifact.

Quickstart::

    from repro import (
        Compute, Event, EventRates, LimitSession, SimConfig, ThreadSpec,
        run_program,
    )

    session = LimitSession([Event.CYCLES, Event.INSTRUCTIONS])
    rates = EventRates.profile(ipc=1.5)

    def main(ctx):
        yield from session.setup(ctx)
        start = yield from session.read_all(ctx)
        yield Compute(1_000_000, rates)
        end = yield from session.read_all(ctx)
        ctx.scratch["delta"] = [e - s for s, e in zip(start, end)]

    result = run_program([ThreadSpec("main", main)], SimConfig())
"""

from repro.common import (
    CostModel,
    Frequency,
    KernelConfig,
    LockConfig,
    MachineConfig,
    PmuConfig,
    RandomStream,
    ReproError,
    SimConfig,
    format_cycles,
)
from repro.core import (
    DestructiveReadSession,
    InstrumentedLock,
    LimitSession,
    PlainLock,
    PreciseRegionProfiler,
    RdtscReader,
    UnsafeLimitSession,
    with_all_enhancements,
    with_hw_thread_virtualization,
    with_wide_counters,
)
from repro.hw import Domain, Event, EventRates
from repro.kernel import SlotSpec
from repro.sim import (
    Barrier,
    BoundedQueue,
    Compute,
    CondVar,
    Engine,
    JoinThread,
    LockAcquire,
    LockRelease,
    Rdtsc,
    RegionBegin,
    RegionEnd,
    RunResult,
    Semaphore,
    Sleep,
    SpawnThread,
    Syscall,
    ThreadContext,
    ThreadSpec,
    YieldCpu,
    run_program,
)

__version__ = "1.0.0"

__all__ = [
    "Barrier",
    "BoundedQueue",
    "Compute",
    "CondVar",
    "CostModel",
    "DestructiveReadSession",
    "Domain",
    "Engine",
    "Event",
    "EventRates",
    "Frequency",
    "InstrumentedLock",
    "JoinThread",
    "KernelConfig",
    "LimitSession",
    "LockAcquire",
    "LockConfig",
    "LockRelease",
    "MachineConfig",
    "PlainLock",
    "PmuConfig",
    "PreciseRegionProfiler",
    "RandomStream",
    "Rdtsc",
    "RdtscReader",
    "RegionBegin",
    "RegionEnd",
    "ReproError",
    "RunResult",
    "SimConfig",
    "Semaphore",
    "Sleep",
    "SlotSpec",
    "SpawnThread",
    "Syscall",
    "ThreadContext",
    "ThreadSpec",
    "UnsafeLimitSession",
    "YieldCpu",
    "format_cycles",
    "run_program",
    "with_all_enhancements",
    "with_hw_thread_virtualization",
    "with_wide_counters",
]
