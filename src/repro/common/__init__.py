"""Shared utilities: units, configuration, deterministic RNG, errors, tables."""

from repro.common.config import (
    CostModel,
    KernelConfig,
    LockConfig,
    MachineConfig,
    PmuConfig,
    SimConfig,
)
from repro.common.errors import (
    ConfigError,
    CounterError,
    ExperimentError,
    LockProtocolError,
    ReproError,
    SchedulerError,
    SessionError,
    SimulationError,
)
from repro.common.rng import RandomStream, derive_seed
from repro.common.tables import render_histogram, render_series, render_table
from repro.common.units import (
    DEFAULT_FREQUENCY,
    Frequency,
    events_per_million,
    format_cycles,
    per_kilo_instruction,
)

__all__ = [
    "ConfigError",
    "CostModel",
    "CounterError",
    "DEFAULT_FREQUENCY",
    "ExperimentError",
    "Frequency",
    "KernelConfig",
    "LockConfig",
    "LockProtocolError",
    "MachineConfig",
    "PmuConfig",
    "RandomStream",
    "ReproError",
    "SchedulerError",
    "SessionError",
    "SimConfig",
    "SimulationError",
    "derive_seed",
    "events_per_million",
    "format_cycles",
    "per_kilo_instruction",
    "render_histogram",
    "render_series",
    "render_table",
]
