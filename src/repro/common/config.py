"""Configuration dataclasses for the simulated machine, kernel and runs.

The :class:`CostModel` is the calibration table of the reproduction: every
instruction sequence and kernel path the paper times is given a cycle cost
here. Values are chosen so that the *ratios* the paper reports hold on the
default 2.4 GHz machine:

* a safe LiMiT read costs 88 cycles = ~36.7 ns ("low tens of nanoseconds"),
* a PAPI-style kernel-mediated read costs 1970 cycles = ~0.82 us (~22x),
* a ``read(2)`` on a perf fd costs 8400 cycles = ~3.5 us (~95x),

i.e. "one to two orders of magnitude faster than current access techniques"
per the abstract.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import DEFAULT_FREQUENCY, Frequency
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of every modelled instruction sequence and kernel path.

    All fields are cycles. The defaults are calibrated for a 2.4 GHz
    Nehalem-class core (see module docstring).
    """

    # -- raw instructions ---------------------------------------------------
    rdpmc: int = 34               #: the rdpmc instruction itself
    rdtsc: int = 24               #: the rdtsc instruction
    rdpmc_destructive: int = 38   #: proposed read-and-reset instruction (E11b)
    cas: int = 12                 #: lock cmpxchg
    wrmsr: int = 110              #: programming a counter control MSR
    rdmsr: int = 90               #: reading a counter MSR from the kernel

    # -- LiMiT userspace read sequence (micro-steps) -------------------------
    pmc_call_overhead: int = 14   #: function prologue before the sequence
    pmc_read_begin: int = 6       #: marking entry into the read region
    pmc_load_accum: int = 8       #: loading the 64-bit virtual accumulator
    pmc_read_end: int = 12        #: region-exit check + 64-bit combine
    pmc_store_result: int = 14    #: storing result / function epilogue

    # -- syscall machinery ----------------------------------------------------
    syscall_entry: int = 280      #: user->kernel mode switch + entry path
    syscall_exit: int = 200       #: kernel->user return path
    papi_user_overhead: int = 220  #: PAPI-like library dispatch before the trap
    papi_kernel_read_work: int = 1180  #: kernel-side counter collection
    papi_copyout: int = 90        #: copying values back to userspace
    perf_read_kernel_work: int = 7800  #: perf_event read(2) path (fd lookup,
    #: event->count synchronisation, format handling)
    perf_copyout: int = 120

    # -- scheduling ----------------------------------------------------------
    context_switch: int = 2400    #: direct cost of a context switch
    ctx_save_per_counter: int = 90   #: virtualization: save one counter
    ctx_restore_per_counter: int = 110  #: virtualization: restore one counter
    timer_tick: int = 1200        #: periodic timer interrupt handling

    # -- performance-monitoring interrupt -------------------------------------
    pmi_handler: int = 2400       #: PMI dispatch + overflow bookkeeping
    pmi_sample_record: int = 600  #: extra work to format+store one sample
    pmi_skid: int = 160           #: cycles between counter crossing and PMI

    # -- futex / locks ---------------------------------------------------------
    futex_wait_kernel: int = 1300  #: kernel side of futex(WAIT)
    futex_wake_kernel: int = 1600  #: kernel side of futex(WAKE)
    spin_quantum: int = 60         #: one spin-loop iteration

    # -- multi-socket effects -------------------------------------------------
    #: extra switch-in cycles after a cross-socket migration (cold remote
    #: caches, TLB shootdown residue). Only charged on machines with >1
    #: socket when a thread actually changes socket.
    cross_socket_migration: int = 9_000

    # -- profiling baselines -----------------------------------------------
    instrument_hook: int = 44     #: gprof-style entry/exit hook (mcount)
    vdso_gettime: int = 30        #: vDSO clock_gettime

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, int) or value < 0:
                raise ConfigError(
                    f"cost {f.name!r} must be a non-negative int, got {value!r}"
                )

    # Derived figures used in several experiments -----------------------------

    @property
    def limit_read_total(self) -> int:
        """Total cycles of one safe LiMiT read (uninterrupted)."""
        return (
            self.pmc_call_overhead
            + self.pmc_read_begin
            + self.pmc_load_accum
            + self.rdpmc
            + self.pmc_read_end
            + self.pmc_store_result
        )

    @property
    def limit_unsafe_read_total(self) -> int:
        """Total cycles of one *unsafe* read (no region protection)."""
        return (
            self.pmc_call_overhead
            + self.pmc_load_accum
            + self.rdpmc
            + self.pmc_store_result
        )

    @property
    def destructive_read_total(self) -> int:
        """Total cycles of a read using the proposed read-and-reset
        instruction (hardware enhancement, E11b): no accumulator load and no
        read-region protection are needed."""
        return self.pmc_call_overhead + self.rdpmc_destructive + self.pmc_store_result

    @property
    def limit_delta_overhead(self) -> int:
        """Measurement overhead *inside* a delta taken with two safe reads.

        The value a read returns reflects the counter at its observation
        instant, so the delta picks up the opening read's trailing steps
        (region-exit check + store) plus the closing read's leading steps
        (call, region-entry, accumulator load, rdpmc) — which together are
        exactly one full read. Calibrated tools subtract this constant.
        """
        return self.limit_read_total

    @property
    def papi_delta_overhead(self) -> int:
        """Same as :attr:`limit_delta_overhead` for PAPI-style reads: the
        opening read's return path plus the closing read's dispatch, trap
        and kernel collection — one full PAPI read in total."""
        return self.papi_read_total

    @property
    def papi_read_total(self) -> int:
        """Total cycles of one PAPI-style kernel-mediated counter read."""
        return (
            self.papi_user_overhead
            + self.syscall_entry
            + self.papi_kernel_read_work
            + self.papi_copyout
            + self.syscall_exit
        )

    @property
    def perf_read_total(self) -> int:
        """Total cycles of one ``read(2)`` on a perf_event fd."""
        return (
            self.syscall_entry
            + self.perf_read_kernel_work
            + self.perf_copyout
            + self.syscall_exit
        )


@dataclass(frozen=True)
class PmuConfig:
    """Per-core performance monitoring unit configuration."""

    n_counters: int = 4        #: number of programmable counters
    counter_width: int = 48    #: hardware counter width in bits
    #: When True, counters are architecturally 64-bit and never overflow in
    #: practice — this models hardware enhancement E11a (wide counters).
    wide_counters: bool = False

    def __post_init__(self) -> None:
        if self.n_counters < 1:
            raise ConfigError("PMU needs at least one counter")
        if not (8 <= self.counter_width <= 64):
            raise ConfigError(
                f"counter width must be in [8, 64], got {self.counter_width}"
            )

    @property
    def effective_width(self) -> int:
        return 64 if self.wide_counters else self.counter_width

    @property
    def overflow_threshold(self) -> int:
        return 1 << self.effective_width


@dataclass(frozen=True)
class MachineConfig:
    """The simulated hardware platform."""

    n_cores: int = 4
    #: number of sockets; cores are split evenly across them. Cross-socket
    #: migrations pay CostModel.cross_socket_migration.
    n_sockets: int = 1
    frequency: Frequency = DEFAULT_FREQUENCY
    pmu: PmuConfig = field(default_factory=PmuConfig)
    costs: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigError(f"need at least one core, got {self.n_cores}")
        if self.n_sockets < 1:
            raise ConfigError(f"need at least one socket, got {self.n_sockets}")
        if self.n_cores % self.n_sockets != 0:
            raise ConfigError(
                f"{self.n_cores} cores cannot be split evenly across "
                f"{self.n_sockets} sockets"
            )

    @property
    def cores_per_socket(self) -> int:
        return self.n_cores // self.n_sockets

    def socket_of(self, core_id: int) -> int:
        if not 0 <= core_id < self.n_cores:
            raise ConfigError(f"no such core: {core_id}")
        return core_id // self.cores_per_socket


@dataclass(frozen=True)
class KernelConfig:
    """Kernel policy knobs."""

    #: Scheduler timeslice. Smaller than a stock kernel's (1-4 ms) so that
    #: context-switch interactions show up in affordably short simulations;
    #: experiments that sweep preemption pressure override it.
    timeslice_cycles: int = 1_000_000
    #: Whether the LiMiT kernel patch (counter virtualization + userspace
    #: rdpmc + interrupted-read fixup) is applied. Always true in practice;
    #: exposed so tests can exercise the unpatched behaviour.
    limit_patch: bool = True
    #: Hardware enhancement E11c: the PMU virtualizes counters per hardware
    #: thread itself, so the kernel skips save/restore on context switch.
    hw_thread_virtualization: bool = False

    def __post_init__(self) -> None:
        if self.timeslice_cycles < 1_000:
            raise ConfigError(
                f"timeslice must be >= 1000 cycles, got {self.timeslice_cycles}"
            )


@dataclass(frozen=True)
class LockConfig:
    """Userspace mutex behaviour (glibc-adaptive-mutex-like)."""

    #: How many cycles to spin before falling back to futex(WAIT).
    spin_limit_cycles: int = 2_000

    def __post_init__(self) -> None:
        if self.spin_limit_cycles < 0:
            raise ConfigError("spin limit must be non-negative")


@dataclass(frozen=True)
class SimConfig:
    """Top-level configuration of one simulation run."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    locks: LockConfig = field(default_factory=LockConfig)
    seed: int = 0
    #: Hard safety limit: a run that exceeds this simulated time aborts with
    #: SimulationError instead of spinning forever.
    max_cycles: int = 2_000_000_000_000
    #: Record a per-thread trace of scheduling and lock events (costly).
    trace: bool = False
    #: Record simulator self-telemetry metrics (host-side counters/timers in
    #: :mod:`repro.obs.metrics`). Never perturbs simulated results — metrics
    #: observe the simulator, not the simulated machine.
    metrics: bool = True
    #: Cap on stored per-invocation region durations across a run
    #: (invocation *counts* stay exact beyond the cap).
    region_log_budget: int = 2_000_000
    #: Enable the macro-stepping fast path (closed-form multi-quantum
    #: fast-forward of solo compute phases). Results are fingerprint-identical
    #: either way; the switch exists for A/B verification and benchmarking.
    macro_stepping: bool = True
    #: Enable the compiled execution tier (:mod:`repro.sim.compiled`):
    #: thread programs are pre-lowered into flat segment tables and the
    #: engine batch-executes accounting over whole verified segments instead
    #: of interpreting op by op. Results are fingerprint-identical either
    #: way — segments bail out to the interpreted loop wherever exact
    #: interleaving matters; the switch exists for A/B verification.
    compiled_tier: bool = True
    #: Deterministic fault-injection plan (:mod:`repro.faults`); None or an
    #: empty plan disables injection entirely (zero hook overhead).
    fault_plan: FaultPlan | None = None

    def with_machine(self, **kwargs) -> "SimConfig":
        """Return a copy with machine fields replaced."""
        return dataclasses.replace(
            self, machine=dataclasses.replace(self.machine, **kwargs)
        )

    def with_kernel(self, **kwargs) -> "SimConfig":
        """Return a copy with kernel fields replaced."""
        return dataclasses.replace(
            self, kernel=dataclasses.replace(self.kernel, **kwargs)
        )

    def with_pmu(self, **kwargs) -> "SimConfig":
        """Return a copy with PMU fields replaced."""
        machine = dataclasses.replace(
            self.machine, pmu=dataclasses.replace(self.machine.pmu, **kwargs)
        )
        return dataclasses.replace(self, machine=machine)

    def with_faults(self, plan: FaultPlan | None) -> "SimConfig":
        """Return a copy with the fault-injection plan replaced."""
        return dataclasses.replace(self, fault_plan=plan)
