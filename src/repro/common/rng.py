"""Deterministic random-number streams.

Each simulated thread / workload component derives its own independent stream
from a root seed plus a string key, so that (a) simulations are exactly
reproducible given a seed, and (b) changing the number of threads in one
workload does not perturb the random choices made by another.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence


def derive_seed(root_seed: int, *keys: str | int) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a key path.

    Uses SHA-256 over the textual key path, which is stable across Python
    versions and process invocations (unlike ``hash()``).
    """
    material = repr(root_seed) + "\x00" + "\x00".join(str(k) for k in keys)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStream:
    """A seeded random stream with the distributions workloads need.

    Thin wrapper over :class:`random.Random` adding integer-cycle helpers and
    a couple of distributions (bounded lognormal, zipf) that the workload
    models use repeatedly.
    """

    def __init__(self, root_seed: int, *keys: str | int) -> None:
        self.seed = derive_seed(root_seed, *keys)
        self._rng = random.Random(self.seed)

    def child(self, *keys: str | int) -> "RandomStream":
        """Derive an independent child stream."""
        return RandomStream(self.seed, *keys)

    # -- basic delegations ------------------------------------------------

    def random(self) -> float:
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence, k: int) -> list:
        return self._rng.sample(seq, k)

    def expovariate(self, mean: float) -> float:
        """Exponential with the given *mean* (not rate)."""
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    # -- cycle-valued helpers ---------------------------------------------

    def exp_cycles(self, mean_cycles: float, minimum: int = 1) -> int:
        """Exponentially distributed integer cycle count with given mean."""
        return max(minimum, round(self.expovariate(mean_cycles)))

    def lognormal_cycles(
        self,
        median_cycles: float,
        sigma: float,
        minimum: int = 1,
        maximum: int | None = None,
    ) -> int:
        """Lognormally distributed integer cycle count.

        ``median_cycles`` is the distribution median (``exp(mu)``), which is
        a far more intuitive parameter than ``mu`` itself. Critical-section
        lengths and short-function durations are classically lognormal-ish.
        """
        mu = math.log(max(median_cycles, 1e-9))
        value = round(self._rng.lognormvariate(mu, sigma))
        value = max(minimum, value)
        if maximum is not None:
            value = min(maximum, value)
        return value

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Pick an index in [0, n) with a Zipf-like popularity skew.

        Used e.g. to pick which table lock a transaction touches: a few
        locks are hot, most are cold, matching server-workload behaviour.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if n == 1:
            return 0
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        target = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target <= acc:
                return i
        return n - 1

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p
