"""Time and frequency unit handling.

The whole simulator is integer-cycle based: every duration is an ``int``
number of core clock cycles. Humans (and the paper) think in nanoseconds, so
this module provides the conversions. The default frequency matches the class
of machine the paper evaluated on (a ~2.4 GHz Nehalem-era Xeon).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

DEFAULT_FREQUENCY_HZ = 2_400_000_000

#: Convenience constants, all in cycles at the *default* frequency.
NS = DEFAULT_FREQUENCY_HZ / 1e9  # cycles per nanosecond (2.4)


@dataclass(frozen=True)
class Frequency:
    """A core clock frequency, used to convert cycles to wall-clock time.

    >>> f = Frequency(2_400_000_000)
    >>> f.cycles_to_ns(2400)
    1000.0
    >>> f.ns_to_cycles(1000.0)
    2400
    """

    hz: int = DEFAULT_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise ConfigError(f"frequency must be positive, got {self.hz}")

    @property
    def ghz(self) -> float:
        return self.hz / 1e9

    def cycles_to_ns(self, cycles: int | float) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles * 1e9 / self.hz

    def cycles_to_us(self, cycles: int | float) -> float:
        return cycles * 1e6 / self.hz

    def cycles_to_ms(self, cycles: int | float) -> float:
        return cycles * 1e3 / self.hz

    def cycles_to_seconds(self, cycles: int | float) -> float:
        return cycles / self.hz

    def ns_to_cycles(self, ns: float) -> int:
        """Convert nanoseconds to cycles, rounding to the nearest cycle."""
        return round(ns * self.hz / 1e9)

    def us_to_cycles(self, us: float) -> int:
        return round(us * self.hz / 1e6)

    def ms_to_cycles(self, ms: float) -> int:
        return round(ms * self.hz / 1e3)


DEFAULT_FREQUENCY = Frequency()


def format_cycles(cycles: int | float, frequency: Frequency = DEFAULT_FREQUENCY) -> str:
    """Render a cycle count as a human-readable duration string.

    Picks the most natural unit:

    >>> format_cycles(89)
    '89 cy (37.1 ns)'
    """
    ns = frequency.cycles_to_ns(cycles)
    if ns < 1_000:
        human = f"{ns:.1f} ns"
    elif ns < 1_000_000:
        human = f"{ns / 1e3:.2f} us"
    elif ns < 1_000_000_000:
        human = f"{ns / 1e6:.2f} ms"
    else:
        human = f"{ns / 1e9:.3f} s"
    if isinstance(cycles, float):
        return f"{cycles:.0f} cy ({human})"
    return f"{cycles} cy ({human})"


def events_per_million(rate_per_cycle: float) -> int:
    """Convert an events-per-cycle rate into the integer ppm (parts-per-
    million-cycles) representation used by the event accounting engine.

    >>> events_per_million(1.5)   # IPC of 1.5
    1500000
    """
    if rate_per_cycle < 0:
        raise ConfigError(f"event rate must be non-negative, got {rate_per_cycle}")
    return round(rate_per_cycle * 1_000_000)


def per_kilo_instruction(misses_pki: float, ipc: float) -> int:
    """Convert a misses-per-kilo-instruction figure (the usual architecture
    paper unit) into events-per-million-cycles given the phase IPC.

    >>> per_kilo_instruction(10.0, ipc=1.0)   # 10 MPKI at IPC 1
    10000
    """
    if misses_pki < 0:
        raise ConfigError(f"MPKI must be non-negative, got {misses_pki}")
    if ipc <= 0:
        raise ConfigError(f"IPC must be positive, got {ipc}")
    return round(misses_pki / 1_000.0 * ipc * 1_000_000)
