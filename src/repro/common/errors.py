"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """Raised when the simulation reaches an impossible state.

    Seeing this exception indicates a bug in the simulator or a malformed
    user program (e.g. releasing a lock the thread does not hold).
    """


class CounterError(ReproError):
    """Raised on invalid PMU operations (bad index, double allocation...)."""


class SessionError(ReproError):
    """Raised on misuse of a measurement session (read before setup, ...)."""


class SchedulerError(SimulationError):
    """Raised when the scheduler invariants are violated."""


class LockProtocolError(SimulationError):
    """Raised on lock misuse: double release, releasing an unowned lock."""


class ExperimentError(ReproError):
    """Raised when an experiment is configured or assembled incorrectly."""


class FabricError(ReproError):
    """Raised by the run fabric under the fail-fast policy when a job
    fails terminally (worker crash, per-job timeout, or a job exception
    surfaced from a worker process)."""


class LintError(ReproError):
    """Raised by the static-analysis gate when a hazardous program or
    config is submitted to the run fabric (fail-closed: nothing runs)."""
