"""Plain-text table and histogram rendering for experiment output.

Experiments print their reproduced tables/figures as monospace text, in the
same rows/series layout the paper reports. No plotting dependency is used.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    align_right_from: int = 1,
) -> str:
    """Render a text table.

    ``align_right_from`` gives the first column index that is right-aligned
    (numeric columns); earlier columns are left-aligned (labels).

    >>> print(render_table(["name", "n"], [["a", 1]]))
    name | n
    -----+--
    a    | 1
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i >= align_right_from:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return " | ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_histogram(
    bins: Sequence[str],
    counts: Sequence[int | float],
    title: str | None = None,
    width: int = 50,
) -> str:
    """Render a horizontal ASCII bar chart (the text stand-in for a figure).

    >>> out = render_histogram(["<1us", "<10us"], [30, 10])
    >>> "<1us" in out and "#" in out
    True
    """
    if len(bins) != len(counts):
        raise ValueError("bins and counts must have the same length")
    peak = max((float(c) for c in counts), default=0.0)
    label_w = max((len(b) for b in bins), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    total = sum(float(c) for c in counts)
    for label, count in zip(bins, counts):
        frac = (float(count) / peak) if peak > 0 else 0.0
        bar = "#" * max(0, round(frac * width))
        pct = (100.0 * float(count) / total) if total > 0 else 0.0
        lines.append(f"{label.ljust(label_w)} | {bar} {_cell(count)} ({pct:.1f}%)")
    return "\n".join(lines)


def render_series(
    x_label: str,
    series: dict[str, Sequence[float]],
    x_values: Sequence,
    title: str | None = None,
) -> str:
    """Render multiple y-series against shared x values as a table.

    This is how "figure" experiments emit their line-chart data.
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row = [x] + [ys[i] for ys in series.values()]
        rows.append(row)
    return render_table(headers, rows, title=title)
