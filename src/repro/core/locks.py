"""Instrumented locks: the measurement vehicle of the synchronization case
studies (experiments E6/E7).

An :class:`InstrumentedLock` wraps the raw lock ops with counter reads so a
program can attribute *wait* (acquisition path) and *hold* (critical
section) costs per lock — exactly what the paper does to MySQL/Apache/
Firefox. The reader is pluggable: a LiMiT session perturbs each acquisition
by ~2 reads x ~90 cycles; a PAPI-like session perturbs it by ~2 x ~2000
cycles *inside or around the critical section*, which is the perturbation
effect E6 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Protocol

from repro.common.errors import SessionError
from repro.sim.ops import LockAcquire, LockRelease, Rdtsc
from repro.sim.program import ThreadContext


class CounterReader(Protocol):
    """Anything with a LiMiT-shaped read method (sessions, timers)."""

    def read(self, ctx: ThreadContext, i: int = 0) -> Generator[Any, Any, int]:
        ...  # pragma: no cover


class RdtscReader:
    """A wall-clock 'reader' using the timestamp counter.

    Lets instrumented locks attribute wall time (including blocked time)
    instead of per-thread CPU cycles. No setup needed.
    """

    name = "rdtsc"

    def read(self, ctx: ThreadContext, i: int = 0) -> Generator[Any, Any, int]:
        value = yield Rdtsc()
        return value


@dataclass
class LockObservation:
    """What the tool saw for one lock (per-acquisition lists, in the
    reader's unit: CPU cycles for counter readers, wall for rdtsc)."""

    waits: list[int] = field(default_factory=list)
    holds: list[int] = field(default_factory=list)

    @property
    def n_acquires(self) -> int:
        return len(self.waits)

    @property
    def total_wait(self) -> int:
        return sum(self.waits)

    @property
    def total_hold(self) -> int:
        return sum(self.holds)

    @property
    def mean_wait(self) -> float:
        return self.total_wait / len(self.waits) if self.waits else 0.0

    @property
    def mean_hold(self) -> float:
        return self.total_hold / len(self.holds) if self.holds else 0.0


class InstrumentedLock:
    """A mutex whose acquire/release paths measure themselves."""

    def __init__(
        self, name: str, reader: CounterReader, counter_index: int = 0
    ) -> None:
        self.name = name
        self.reader = reader
        self.counter_index = counter_index
        self.observation = LockObservation()

    def acquire(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Acquire the lock, recording the acquisition-path cost."""
        t0 = yield from self.reader.read(ctx, self.counter_index)
        yield LockAcquire(self.name)
        t1 = yield from self.reader.read(ctx, self.counter_index)
        self.observation.waits.append(t1 - t0)
        ctx.scratch[self._key()] = t1

    def release(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Release the lock, recording the critical-section cost.

        The closing read happens *while still holding the lock* (it must:
        the release is the boundary being measured), so slow readers
        lengthen every critical section — the perturbation E6 quantifies.
        """
        key = self._key()
        if key not in ctx.scratch:
            raise SessionError(
                f"release of instrumented lock {self.name!r} without a "
                f"matching acquire on thread {ctx.tid}"
            )
        t2 = yield from self.reader.read(ctx, self.counter_index)
        yield LockRelease(self.name)
        t1 = ctx.scratch.pop(key)
        self.observation.holds.append(t2 - t1)

    def critical_section(
        self, ctx: ThreadContext, body: Generator[Any, Any, Any]
    ) -> Generator[Any, Any, Any]:
        """acquire -> body -> release convenience wrapper."""
        yield from self.acquire(ctx)
        try:
            result = yield from body
        finally:
            yield from self.release(ctx)
        return result

    def _key(self) -> tuple:
        return ("instrumented_lock_t1", self.name)


class PlainLock:
    """Uninstrumented lock with the same generator interface, for baseline
    (unperturbed) runs of the same workload code."""

    def __init__(self, name: str) -> None:
        self.name = name

    def acquire(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        yield LockAcquire(self.name)

    def release(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        yield LockRelease(self.name)

    def critical_section(
        self, ctx: ThreadContext, body: Generator[Any, Any, Any]
    ) -> Generator[Any, Any, Any]:
        yield from self.acquire(ctx)
        try:
            result = yield from body
        finally:
            yield from self.release(ctx)
        return result
