"""LiMiT — precise, low-overhead performance-counter access (the paper's
primary contribution), implemented against the simulated machine."""

from repro.core.calibration import Calibration, calibrate
from repro.core.enhancements import (
    with_all_enhancements,
    with_hw_thread_virtualization,
    with_wide_counters,
)
from repro.core.limit import (
    DestructiveReadSession,
    LimitSession,
    ReadRecord,
    UnsafeLimitSession,
)
from repro.core.locks import (
    InstrumentedLock,
    LockObservation,
    PlainLock,
    RdtscReader,
)
from repro.core.process import ProcessCounters, ProcessTotals
from repro.core.read_protocol import destructive_read, safe_read, unsafe_read
from repro.core.regions import PreciseRegionProfiler, RegionObservation

__all__ = [
    "Calibration",
    "DestructiveReadSession",
    "InstrumentedLock",
    "LimitSession",
    "LockObservation",
    "PlainLock",
    "PreciseRegionProfiler",
    "ProcessCounters",
    "ProcessTotals",
    "RdtscReader",
    "ReadRecord",
    "RegionObservation",
    "UnsafeLimitSession",
    "calibrate",
    "destructive_read",
    "safe_read",
    "unsafe_read",
    "with_all_enhancements",
    "with_hw_thread_virtualization",
    "with_wide_counters",
]
