"""Precise per-region measurement (the Firefox short-function study, E9).

A :class:`PreciseRegionProfiler` measures every invocation of named code
regions with exact counter reads — the kind of measurement the paper argues
is *only* feasible with LiMiT-class read costs: at ~37 ns a read, wrapping a
1 us function costs ~7%; with a ~1 us PAPI-class read it costs ~200%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.core.limit import LimitSession
from repro.sim.ops import RegionBegin, RegionEnd
from repro.sim.program import ThreadContext


@dataclass
class RegionObservation:
    """Tool-side view of one region (in the session counter's event unit)."""

    name: str
    invocations: int = 0
    deltas: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(self.deltas)

    @property
    def mean(self) -> float:
        return self.total / len(self.deltas) if self.deltas else 0.0


class PreciseRegionProfiler:
    """Measures named regions with a counter session, one read pair per
    invocation. Works with any session exposing LiMiT's read interface."""

    def __init__(self, session: LimitSession, counter_index: int = 0) -> None:
        self.session = session
        self.counter_index = counter_index
        self.observations: dict[str, RegionObservation] = {}

    def measure(
        self,
        ctx: ThreadContext,
        name: str,
        body: Generator[Any, Any, Any],
    ) -> Generator[Any, Any, Any]:
        """Run ``body`` as region ``name``, recording its exact cost."""
        yield RegionBegin(name)
        t0 = yield from self.session.read(ctx, self.counter_index)
        try:
            result = yield from body
        finally:
            t1 = yield from self.session.read(ctx, self.counter_index)
            yield RegionEnd()
            obs = self.observations.get(name)
            if obs is None:
                obs = RegionObservation(name=name)
                self.observations[name] = obs
            obs.invocations += 1
            obs.deltas.append(t1 - t0)
        return result

    def observation(self, name: str) -> RegionObservation:
        return self.observations.get(name, RegionObservation(name=name))

    def total_measured(self) -> int:
        return sum(o.total for o in self.observations.values())
