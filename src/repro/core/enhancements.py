"""The paper's three proposed hardware counter enhancements (E11).

1. **Wide (64-bit) counters** — overflow virtually never happens, so the
   kernel takes no overflow PMIs: :func:`with_wide_counters`.
2. **Destructive reads** — a read-and-reset instruction shortens the read
   sequence and removes the interrupted-read window:
   :class:`repro.core.limit.DestructiveReadSession`.
3. **Hardware thread virtualization** — the PMU saves/restores counters per
   hardware thread itself, removing the kernel's per-context-switch
   save/restore work: :func:`with_hw_thread_virtualization`.

Each helper returns a modified :class:`SimConfig`; experiment E11 runs the
same workload across the on/off matrix.
"""

from __future__ import annotations

from repro.common.config import SimConfig


def with_wide_counters(config: SimConfig) -> SimConfig:
    """64-bit architectural counters (enhancement 1)."""
    return config.with_pmu(wide_counters=True)


def with_hw_thread_virtualization(config: SimConfig) -> SimConfig:
    """PMU-side per-thread counter save/restore (enhancement 3)."""
    return config.with_kernel(hw_thread_virtualization=True)


def with_all_enhancements(config: SimConfig) -> SimConfig:
    """All three hardware enhancements at once (destructive reads are a
    session choice; the config side enables the other two)."""
    return with_hw_thread_virtualization(with_wide_counters(config))
