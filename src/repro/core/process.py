"""Process-level counter aggregation.

LiMiT virtualized counters per *process*: every thread accumulated into the
same user-mapped 64-bit values, so whole-process totals came for free. Our
sessions record per-thread; this module provides the process rollup — the
final per-thread values summed per event — plus exactness auditing against
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.limit import LimitSession, ReadRecord
from repro.hw.events import Event
from repro.sim.results import RunResult


@dataclass(frozen=True)
class ProcessTotals:
    """Aggregated final counter values across a session's threads."""

    per_event: dict[Event, int]
    per_thread: dict[int, dict[Event, int]]
    n_threads: int

    def total(self, event: Event) -> int:
        return self.per_event.get(event, 0)


class ProcessCounters:
    """Rolls a session's per-thread reads up to process scope."""

    def __init__(self, session: LimitSession) -> None:
        self.session = session

    def _final_reads(self) -> dict[tuple[int, Event], ReadRecord]:
        """The last read of each (thread, event) pair."""
        finals: dict[tuple[int, Event], ReadRecord] = {}
        for record in self.session.records:
            key = (record.tid, record.event)
            existing = finals.get(key)
            if existing is None or record.time >= existing.time:
                finals[key] = record
        return finals

    def totals(self) -> ProcessTotals:
        """Process-wide totals from each thread's final reads.

        Only meaningful if every thread read all its counters once more
        just before finishing (the usual teardown pattern).
        """
        finals = self._final_reads()
        per_event: dict[Event, int] = {}
        per_thread: dict[int, dict[Event, int]] = {}
        for (tid, event), record in finals.items():
            per_event[event] = per_event.get(event, 0) + record.value
            per_thread.setdefault(tid, {})[event] = record.value
        return ProcessTotals(
            per_event=per_event,
            per_thread=per_thread,
            n_threads=len(per_thread),
        )

    def audit(self, result: RunResult) -> dict[Event, int]:
        """Signed error of the process totals against ground truth.

        Ground truth here is the *truth at each thread's final read*, which
        the engine attached to the records — so a session whose reads are
        exact audits to zero for every event.
        """
        finals = self._final_reads()
        errors: dict[Event, int] = {}
        for (tid, event), record in finals.items():
            errors[event] = errors.get(event, 0) + (record.value - record.truth)
        return errors

    def coverage(self, result: RunResult, event: Event) -> float:
        """Fraction of the threads' total ground-truth events the final
        reads captured (reads taken before a thread's last work miss the
        tail; 1.0 means the teardown pattern was followed)."""
        finals = self._final_reads()
        captured = sum(
            r.truth for (tid, e), r in finals.items() if e is event
        )
        tids = {tid for (tid, e) in finals if e is event}
        truth = 0
        spec = next(
            (s for s in self.session.specs if s.event is event), None
        )
        if spec is None:
            return 0.0
        for tid in tids:
            thread = result.threads[tid]
            total = 0
            if spec.count_user:
                total += thread.events_user.get(event, 0)
            if spec.count_kernel:
                total += thread.events_kernel.get(event, 0)
            truth += total
        return captured / truth if truth else 0.0
