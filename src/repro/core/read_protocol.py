"""The LiMiT userspace read protocols.

These generators are the exact software sequences the paper's Section on
precise counter access describes, expressed as simulator ops:

* :func:`safe_read` — the LiMiT read: load the 64-bit virtual accumulator
  from the user-mapped page, ``rdpmc`` the live hardware counter, and sum.
  If the kernel preempted the thread (or delivered a PMI) anywhere inside
  the sequence, the accumulator and hardware value belong to different
  epochs, so the kernel flags the interruption and the sequence *restarts*.
  The result is always exact.

* :func:`unsafe_read` — the same sequence without interruption detection.
  Fast path is a few cycles cheaper, but a context switch between the two
  loads silently folds the hardware count into the accumulator and zeroes
  the counter, making the sum undercount by up to a full timeslice of
  events. Experiment E4 quantifies this.

* :func:`destructive_read` — the paper's proposed read-and-reset hardware
  instruction (enhancement E11b): a single instruction returns the
  virtualized delta since the previous destructive read; no accumulator
  load, no interruption window.

On a traced run the engine brackets each safe/unsafe read with
``pmc_read_begin``/``pmc_read_end`` events on the trace bus (the end
event's arg records whether the attempt survived without a restart), so
read-protocol behaviour is visible in trace summaries and Perfetto dumps
(see :mod:`repro.obs.trace`).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.common.config import CostModel
from repro.faults.plan import BEFORE_CHECK, BETWEEN_LOADS, READ_POINTS
from repro.hw.events import LIBRARY_RATES
from repro.sim.ops import (
    MAX_RESTARTS,
    Compute,
    PmcSafeRead,
    PmcUnsafeRead,
    RdpmcDestructive,
)

# Re-exported so protocol consumers can name the vulnerable points the fault
# injector can preempt (repro.faults targets these by name): BETWEEN_LOADS is
# the window between the accumulator load and the rdpmc, BEFORE_CHECK sits
# between the read-end marker and the restart-check evaluation.
__all__ = [
    "BEFORE_CHECK",
    "BETWEEN_LOADS",
    "MAX_RESTARTS",
    "READ_POINTS",
    "safe_read",
    "unsafe_read",
    "destructive_read",
]


def safe_read(index: int, costs: CostModel) -> Generator[Any, Any, int]:
    """Precise virtualized 64-bit counter read; restarts if interrupted.

    Returns the exact event count for the thread's slot ``index`` at the
    instant the ``rdpmc`` executed. Typical cost: ``costs.limit_read_total``
    cycles (~37 ns at 2.4 GHz); each restart re-runs the four-step middle
    sequence.

    Yields the whole protocol as a single :class:`PmcSafeRead` op; the
    engine executes the micro-op sequence (and any restarts) internally
    with timing identical to the historical op-by-op form.
    """
    value = yield PmcSafeRead(index)
    return value


def unsafe_read(index: int, costs: CostModel) -> Generator[Any, Any, int]:
    """The naive read: no interruption protection.

    A preemption between the accumulator load and the rdpmc makes the
    result undercount by everything folded at the switch. Kept as the
    ablation arm of experiment E4.
    """
    value = yield PmcUnsafeRead(index)
    return value


def destructive_read(index: int, costs: CostModel) -> Generator[Any, Any, int]:
    """Read-and-reset: returns the delta since the previous destructive
    read of this slot. Requires no protection (single instruction)."""
    yield Compute(costs.pmc_call_overhead, LIBRARY_RATES)
    value = yield RdpmcDestructive(index)
    yield Compute(costs.pmc_store_result, LIBRARY_RATES)
    return value
