"""Runtime calibration of measurement overheads.

On real hardware you don't get to read the cost model out of a config
object — you measure it: spin N reads between two timestamps, subtract the
timestamp cost, divide. Tools then subtract the calibrated constants from
their deltas (as LiMiT's userspace library did).

:func:`calibrate` performs exactly that procedure on the simulated
machine, so analyses can be written against *measured* overheads and work
identically whether or not the cost model is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.baselines.papi import PapiLikeSession
from repro.baselines.perf_read import PerfReadSession
from repro.common.config import SimConfig
from repro.core.limit import DestructiveReadSession, LimitSession
from repro.core.locks import RdtscReader
from repro.hw.events import Event
from repro.sim.engine import run_program
from repro.workloads.microbench import ReadCostMicrobench


@dataclass(frozen=True)
class Calibration:
    """Measured per-read costs (cycles, averaged over a calibration loop)."""

    rdtsc_cycles: float
    limit_read_cycles: float
    destructive_read_cycles: float
    papi_read_cycles: float
    perf_read_cycles: float
    n_reads: int

    @property
    def limit_delta_overhead(self) -> float:
        """Overhead inside a two-read LiMiT delta ≈ one full read (see
        CostModel.limit_delta_overhead for the derivation)."""
        return self.limit_read_cycles

    @property
    def papi_delta_overhead(self) -> float:
        return self.papi_read_cycles

    @property
    def papi_vs_limit(self) -> float:
        return self.papi_read_cycles / self.limit_read_cycles

    @property
    def perf_vs_limit(self) -> float:
        return self.perf_read_cycles / self.limit_read_cycles


def _measure(reader_factory: Callable[[], Any], technique: str, n_reads: int,
             config: SimConfig) -> float:
    bench = ReadCostMicrobench(
        reader_factory(), n_reads=n_reads, technique=technique
    )
    result = run_program(bench.build(), config)
    result.check_conservation()
    assert bench.result is not None
    return bench.result.cycles_per_read


def calibrate(config: SimConfig | None = None, n_reads: int = 2_000) -> Calibration:
    """Measure every technique's read cost on the given machine."""
    config = config or SimConfig()
    return Calibration(
        rdtsc_cycles=_measure(RdtscReader, "rdtsc", n_reads, config),
        limit_read_cycles=_measure(
            lambda: LimitSession([Event.CYCLES]), "limit", n_reads, config
        ),
        destructive_read_cycles=_measure(
            lambda: DestructiveReadSession([Event.CYCLES]),
            "destructive",
            n_reads,
            config,
        ),
        papi_read_cycles=_measure(
            lambda: PapiLikeSession([Event.CYCLES]), "papi", n_reads, config
        ),
        perf_read_cycles=_measure(
            lambda: PerfReadSession([Event.CYCLES]), "perf_read", n_reads, config
        ),
        n_reads=n_reads,
    )
