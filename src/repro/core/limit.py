"""LiMiT sessions: the public measurement API of the reproduction.

A :class:`LimitSession` owns a set of virtualized counters (one per event)
for every thread that calls :meth:`setup`. Reads are precise, userspace-only
and cost tens of nanoseconds; every read is recorded together with the
simulator's ground truth so accuracy can be audited after the run.

Typical use inside a thread program::

    session = LimitSession([Event.CYCLES, Event.LLC_MISSES])

    def worker(ctx):
        yield from session.setup(ctx)
        start = yield from session.read(ctx, 0)
        yield Compute(100_000, rates)
        end = yield from session.read(ctx, 0)
        # end - start == exact cycles, measurement overhead included
        yield from session.teardown(ctx)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable, Sequence

from repro.common.errors import SessionError
from repro.core.read_protocol import destructive_read, safe_read, unsafe_read
from repro.hw.events import Event
from repro.kernel.vpmu import SlotSpec
from repro.sim.ops import Syscall
from repro.sim.program import ThreadContext


@dataclass(frozen=True)
class ReadRecord:
    """One counter read as observed by the tool, plus ground truth."""

    tid: int
    time: int            #: simulated time when the read completed
    slot: int            #: physical/virtual slot index
    event: Event
    value: int           #: what the tool saw
    truth: int           #: exact count at the rdpmc instant (engine ground truth)
    protocol: str        #: 'safe' | 'unsafe' | 'destructive'

    @property
    def error(self) -> int:
        return self.value - self.truth


def _as_spec(entry: Event | SlotSpec, count_kernel: bool) -> SlotSpec:
    if isinstance(entry, SlotSpec):
        return entry
    if isinstance(entry, Event):
        return SlotSpec(
            event=entry,
            count_user=True,
            count_kernel=count_kernel,
            mode="count",
            owner="limit",
            user_readable=True,
        )
    raise SessionError(f"cannot make a counter spec from {entry!r}")


class LimitSession:
    """Precise low-overhead counter access (the paper's contribution)."""

    #: protocol used by :meth:`read`; subclasses override.
    default_protocol = "safe"

    def __init__(
        self,
        events: Iterable[Event | SlotSpec],
        count_kernel: bool = False,
        name: str = "limit",
    ) -> None:
        self.name = name
        self.specs: list[SlotSpec] = [_as_spec(e, count_kernel) for e in events]
        if not self.specs:
            raise SessionError("a session needs at least one event")
        #: per-thread slot indices, filled by setup()
        self.slots: dict[int, list[int]] = {}
        self.records: list[ReadRecord] = []

    # -- lifecycle (generators; use with `yield from`) ----------------------

    def setup(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Open this session's counters for the calling thread."""
        if ctx.tid in self.slots:
            raise SessionError(
                f"session {self.name!r} already set up on thread {ctx.tid}"
            )
        indices: list[int] = []
        for spec in self.specs:
            idx = yield Syscall("pmc_open", (spec,))
            indices.append(idx)
        self.slots[ctx.tid] = indices

    def teardown(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Close the calling thread's counters."""
        for idx in self._indices(ctx):
            yield Syscall("pmc_close", (idx,))
        del self.slots[ctx.tid]

    # -- reads ----------------------------------------------------------------

    def read(self, ctx: ThreadContext, i: int = 0) -> Generator[Any, Any, int]:
        """Read counter ``i`` with the session's default protocol."""
        protocol = self.default_protocol
        if protocol == "safe":
            return (yield from self.read_safe(ctx, i))
        if protocol == "unsafe":
            return (yield from self.read_unsafe(ctx, i))
        if protocol == "destructive":
            return (yield from self.read_destructive(ctx, i))
        raise SessionError(f"unknown protocol {protocol!r}")  # pragma: no cover

    def read_safe(self, ctx: ThreadContext, i: int = 0) -> Generator[Any, Any, int]:
        """The LiMiT precise read (restart-on-interruption)."""
        idx = self._slot(ctx, i)
        value = yield from safe_read(idx, ctx.costs)
        self._record(ctx, idx, i, value, "safe")
        return value

    def read_unsafe(self, ctx: ThreadContext, i: int = 0) -> Generator[Any, Any, int]:
        """The unprotected read (ablation arm of experiment E4)."""
        idx = self._slot(ctx, i)
        value = yield from unsafe_read(idx, ctx.costs)
        self._record(ctx, idx, i, value, "unsafe")
        return value

    def read_destructive(
        self, ctx: ThreadContext, i: int = 0
    ) -> Generator[Any, Any, int]:
        """Read-and-reset (proposed hardware enhancement); returns a delta."""
        idx = self._slot(ctx, i)
        value = yield from destructive_read(idx, ctx.costs)
        self._record(ctx, idx, i, value, "destructive")
        return value

    def read_all(self, ctx: ThreadContext) -> Generator[Any, Any, list[int]]:
        """Read every counter of the session, in order."""
        values = []
        for i in range(len(self.specs)):
            values.append((yield from self.read(ctx, i)))
        return values

    def delta(
        self,
        ctx: ThreadContext,
        body: Generator[Any, Any, Any],
        i: int = 0,
    ) -> Generator[Any, Any, tuple[int, Any]]:
        """Measure the exact event count across ``body``.

        Returns ``(delta, body_result)``. Overhead of the closing read is
        *excluded* from the delta; the opening read's trailing cycles are
        included — exactly the asymmetry a real instrumented region has.
        """
        start = yield from self.read(ctx, i)
        result = yield from body
        end = yield from self.read(ctx, i)
        return end - start, result

    def measure_all(
        self,
        ctx: ThreadContext,
        body: Generator[Any, Any, Any],
    ) -> Generator[Any, Any, tuple[dict[Event, int], Any]]:
        """Measure ``body`` across every counter of the session at once.

        Returns ``({event: delta}, body_result)``. Like :meth:`delta`, each
        counter's delta includes one read's worth of in-band overhead (the
        calibrated ``limit_delta_overhead`` constant, scaled by position in
        the read batch for multi-counter sessions).
        """
        start = yield from self.read_all(ctx)
        result = yield from body
        end = yield from self.read_all(ctx)
        deltas = {
            spec.event: e - s
            for spec, s, e in zip(self.specs, start, end)
        }
        return deltas, result

    # -- post-run record access -----------------------------------------------

    def records_for(self, tid: int) -> list[ReadRecord]:
        return [r for r in self.records if r.tid == tid]

    def errors(self) -> list[int]:
        """Signed value-minus-truth error of every recorded read."""
        return [r.error for r in self.records]

    def max_abs_error(self) -> int:
        return max((abs(e) for e in self.errors()), default=0)

    # -- internals -----------------------------------------------------------

    def _indices(self, ctx: ThreadContext) -> Sequence[int]:
        try:
            return self.slots[ctx.tid]
        except KeyError:
            raise SessionError(
                f"session {self.name!r} not set up on thread {ctx.tid}; "
                "call `yield from session.setup(ctx)` first"
            ) from None

    def _slot(self, ctx: ThreadContext, i: int) -> int:
        indices = self._indices(ctx)
        if not 0 <= i < len(indices):
            raise SessionError(
                f"session {self.name!r} has {len(indices)} counters; "
                f"index {i} out of range"
            )
        return indices[i]

    def _record(
        self, ctx: ThreadContext, idx: int, i: int, value: int, protocol: str
    ) -> None:
        thread = ctx.thread()
        truth = thread.last_rdpmc_truth if thread.last_rdpmc_truth is not None else 0
        self.records.append(
            ReadRecord(
                tid=ctx.tid,
                time=ctx.now(),
                slot=idx,
                event=self.specs[i].event,
                value=value,
                truth=truth,
                protocol=protocol,
            )
        )


class UnbufferedLimitSession(LimitSession):
    """A LimitSession for production-shaped load: constant-memory audit.

    The base class appends a :class:`ReadRecord` per read — perfect for
    experiments that audit individual reads, fatal for workloads issuing
    millions of them. This subclass keeps only O(1) incremental error
    statistics (count, signed error sum, max absolute error), so read
    volume never grows session memory. :meth:`max_abs_error` still works;
    :meth:`errors`/:meth:`records_for` see an empty record list.
    """

    def __init__(
        self,
        events: Iterable[Event | SlotSpec],
        count_kernel: bool = False,
        name: str = "limit",
    ) -> None:
        super().__init__(events, count_kernel=count_kernel, name=name)
        self.n_reads = 0
        self.error_sum = 0
        self.error_max_abs = 0

    def _record(
        self, ctx: ThreadContext, idx: int, i: int, value: int, protocol: str
    ) -> None:
        thread = ctx.thread()
        truth = (
            thread.last_rdpmc_truth
            if thread.last_rdpmc_truth is not None
            else 0
        )
        error = value - truth
        self.n_reads += 1
        self.error_sum += error
        if abs(error) > self.error_max_abs:
            self.error_max_abs = abs(error)

    def max_abs_error(self) -> int:
        return self.error_max_abs

    def error_stats(self) -> dict[str, int]:
        """The constant-memory audit summary."""
        return {
            "n_reads": self.n_reads,
            "error_sum": self.error_sum,
            "max_abs_error": self.error_max_abs,
        }


class UnsafeLimitSession(LimitSession):
    """A LimitSession whose plain :meth:`read` uses the unprotected
    sequence — the what-if-LiMiT-had-no-restart-protocol arm of E4."""

    default_protocol = "unsafe"


class DestructiveReadSession(LimitSession):
    """A session using the proposed read-and-reset instruction (E11b).

    Reads return deltas; :meth:`read_total` accumulates them into a running
    total per (thread, counter) so callers can treat it like a monotonic
    counter at lower cost and with no restart protocol.
    """

    default_protocol = "destructive"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._totals: dict[tuple[int, int], int] = {}

    def read_total(self, ctx: ThreadContext, i: int = 0) -> Generator[Any, Any, int]:
        delta = yield from self.read_destructive(ctx, i)
        key = (ctx.tid, i)
        self._totals[key] = self._totals.get(key, 0) + delta
        return self._totals[key]
