"""Trace and manifest exporters: JSONL, Chrome/Perfetto, run manifests.

Two interchange formats for :class:`~repro.obs.trace.TraceEvent` streams:

* **JSONL** — one event per line, lossless round-trip (tuples included),
  the format the ``python -m repro.trace`` CLI consumes;
* **Chrome ``trace_event`` JSON** — loadable in https://ui.perfetto.dev or
  ``chrome://tracing``: per-thread "run" slices reconstructed from
  switch_in/switch_out, nestable async slices for instrumented regions,
  instants for everything else. Multiple engine runs stack as separate
  process groups in one document.

Plus the machine-readable **run manifest** the experiment runner and the
workbench CLI write (schema ``repro.obs/manifest/v1``): per-experiment id,
status, wall seconds, simulated cycles, sim events and a metrics snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.common.errors import ReproError
from repro.common.units import DEFAULT_FREQUENCY, Frequency
from repro.obs import trace as tr
from repro.obs.trace import TraceEvent
from repro.obs.windows import Window, WindowSpec

MANIFEST_SCHEMA = "repro.obs/manifest/v1"

# -- JSONL -------------------------------------------------------------------


def _arg_to_json(arg: Any) -> Any:
    if isinstance(arg, tuple):
        return [_arg_to_json(a) for a in arg]
    return arg


def _arg_from_json(arg: Any) -> Any:
    if isinstance(arg, list):
        return tuple(_arg_from_json(a) for a in arg)
    return arg


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    return {
        "t": event.time,
        "core": event.core,
        "tid": event.tid,
        "kind": str(event.kind),
        "arg": _arg_to_json(event.arg),
    }


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        time=data["t"],
        core=data["core"],
        tid=data["tid"],
        kind=data["kind"],
        arg=_arg_from_json(data.get("arg")),
    )


def events_to_jsonl(events: Iterable[tuple], path: str | Path) -> int:
    """Write events (TraceEvents or legacy 5-tuples) as JSONL; returns the
    number of lines written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fp:
        for event in tr.as_events(events):
            fp.write(json.dumps(event_to_dict(event), separators=(",", ":")))
            fp.write("\n")
            n += 1
    return n


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Parse a JSONL trace file back into TraceEvents (lossless)."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ReproError(
                    f"{path}:{lineno}: not a trace event line ({exc})"
                ) from None
    return events


# -- Chrome/Perfetto trace_event ---------------------------------------------

#: Kinds rendered as thread-track instant events (everything that isn't a
#: scheduling interval or a region boundary).
_INSTANT_KINDS = frozenset(
    {
        tr.READY,
        tr.SCHED_STEAL,
        tr.SYSCALL_ENTER,
        tr.SYSCALL_EXIT,
        tr.PMI,
        tr.TIMER_TICK,
        tr.LOCK_ACQ,
        tr.LOCK_REL,
        tr.FUTEX_WAIT,
        tr.FUTEX_WAKE,
        tr.PMC_READ_BEGIN,
        tr.PMC_READ_END,
        tr.CTR_OVERFLOW,
        tr.SAMPLE,
        tr.PHASE_BEGIN,
        tr.PHASE_END,
    }
)


def perfetto_events(
    events: Sequence[tuple],
    frequency: Frequency = DEFAULT_FREQUENCY,
    pid: int = 0,
    process_name: str = "sim",
    thread_names: dict[int, str] | None = None,
) -> list[dict[str, Any]]:
    """Convert one engine run's trace into ``trace_event`` dicts.

    Timestamps are microseconds (the format's unit), converted from cycles
    at ``frequency``. ``pid`` groups the run; several runs can share one
    document under different pids (see :func:`perfetto_document`).
    """
    evs = tr.as_events(events)
    us_per_cycle = frequency.cycles_to_ns(1) / 1000.0
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    names = dict(thread_names or {})
    for e in evs:
        if e.kind in (tr.READY, tr.SWITCH_IN, tr.SWITCH_OUT, tr.EXIT):
            if isinstance(e.arg, str):
                names.setdefault(e.tid, e.arg)
    for tid in sorted(names):
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": names[tid]},
            }
        )
    open_run: dict[int, int] = {}
    last_time = 0
    for e in sorted(evs, key=lambda e: e.time):
        ts = e.time * us_per_cycle
        last_time = max(last_time, e.time)
        if e.kind == tr.SWITCH_IN:
            open_run[e.tid] = e.time
        elif e.kind in (tr.SWITCH_OUT, tr.EXIT):
            start = open_run.pop(e.tid, None)
            if start is not None:
                out.append(
                    {
                        "ph": "X",
                        "pid": pid,
                        "tid": e.tid,
                        "ts": start * us_per_cycle,
                        "dur": max(0.0, (e.time - start) * us_per_cycle),
                        "name": "run",
                        "cat": "sched",
                    }
                )
            if e.kind == tr.EXIT:
                out.append(_instant(e, ts, pid))
        elif e.kind == tr.REGION_BEGIN:
            out.append(
                {
                    "ph": "b",
                    "cat": "region",
                    "id": str(e.tid),
                    "pid": pid,
                    "tid": e.tid,
                    "ts": ts,
                    "name": str(e.arg),
                }
            )
        elif e.kind == tr.REGION_END:
            out.append(
                {
                    "ph": "e",
                    "cat": "region",
                    "id": str(e.tid),
                    "pid": pid,
                    "tid": e.tid,
                    "ts": ts,
                    "name": str(e.arg),
                }
            )
        elif e.kind in _INSTANT_KINDS:
            out.append(_instant(e, ts, pid))
        # unknown kinds are skipped: the JSONL format is the lossless one
    # close run slices left open at the trace horizon
    for tid, start in sorted(open_run.items()):
        out.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": start * us_per_cycle,
                "dur": max(0.0, (last_time - start) * us_per_cycle),
                "name": "run",
                "cat": "sched",
            }
        )
    return out


def _instant(e: TraceEvent, ts: float, pid: int) -> dict[str, Any]:
    name = e.kind
    if isinstance(e.arg, str):
        name = f"{e.kind}:{e.arg}"
    return {
        "ph": "i",
        "s": "t",
        "pid": pid,
        "tid": e.tid,
        "ts": ts,
        "name": name,
        "cat": "event",
        "args": {"arg": _arg_to_json(e.arg), "core": e.core},
    }


def perfetto_document(
    runs: Sequence[tuple[str, Sequence[tuple], Frequency, dict[int, str] | None]],
) -> dict[str, Any]:
    """Assemble a loadable trace document from ``(label, events, frequency,
    thread_names)`` tuples, one process group per run."""
    trace_events: list[dict[str, Any]] = []
    for pid, (label, events, frequency, thread_names) in enumerate(runs):
        trace_events.extend(
            perfetto_events(
                events,
                frequency=frequency,
                pid=pid,
                process_name=label,
                thread_names=thread_names,
            )
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_perfetto(
    path: str | Path,
    runs: Sequence[tuple[str, Sequence[tuple], Frequency, dict[int, str] | None]],
) -> dict[str, Any]:
    """Write a Perfetto-loadable document; returns the document dict."""
    doc = perfetto_document(runs)
    Path(path).write_text(json.dumps(doc) + "\n")
    return doc


def result_runs(result, label: str = "run"):
    """The ``runs`` entry for :func:`write_perfetto` from one RunResult."""
    names = {tid: t.name for tid, t in result.threads.items()}
    return (label, list(result.trace), result.config.machine.frequency, names)


# -- summaries ---------------------------------------------------------------


def summarize_events(events: Sequence[tuple]) -> dict[str, Any]:
    """Counts and span of a trace: total, by kind, by tid, time bounds."""
    evs = tr.as_events(events)
    by_kind: dict[str, int] = {}
    by_tid: dict[int, int] = {}
    t_min: int | None = None
    t_max: int | None = None
    for e in evs:
        by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        by_tid[e.tid] = by_tid.get(e.tid, 0) + 1
        t_min = e.time if t_min is None else min(t_min, e.time)
        t_max = e.time if t_max is None else max(t_max, e.time)
    return {
        "n_events": len(evs),
        "t_first": t_min or 0,
        "t_last": t_max or 0,
        "by_kind": dict(sorted(by_kind.items())),
        "by_tid": dict(sorted(by_tid.items())),
    }


# -- streaming window export -------------------------------------------------

STREAM_SCHEMA = "repro.obs/stream/v1"
STREAM_MANIFEST_NAME = "stream-manifest.json"

#: Records per part file before the writer rotates to a new one.
DEFAULT_PART_RECORDS = 4096


class JsonlStreamWriter:
    """Incremental JSONL exporter for windowed observations.

    Writes one JSON record per line into ``part-NNNNN.jsonl`` files inside
    a *stream directory*, rotating to a new part every ``part_records``
    records so no single file grows unboundedly, and maintaining a
    ``stream-manifest.json`` (schema ``repro.obs/stream/v1``) listing the
    parts. Every record is flushed as written, so ``python -m repro.trace
    tail``/``watch`` can follow the directory while a run is in flight.

    Window records look like::

        {"type": "window", "run": 0, "source": "live", "window": {...}}

    ``source`` is ``"live"`` for windows evicted mid-run by the collector,
    ``"flush"`` for retained windows written at run end, and ``"spilled"``
    for a run's evicted-aggregate window (index -1) when its per-window
    detail was lost before reaching this writer (e.g. evictions inside a
    fabric worker). Merging every window record of a stream reproduces the
    run's exact batch totals — each observation appears exactly once.
    """

    def __init__(
        self,
        directory: str | Path,
        label: str | None = None,
        spec: WindowSpec | None = None,
        part_records: int = DEFAULT_PART_RECORDS,
    ) -> None:
        if part_records < 1:
            raise ReproError(
                f"part_records must be >= 1, got {part_records}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.label = label
        self.spec = spec
        self.part_records = part_records
        self.parts: list[dict[str, Any]] = []
        self.n_records = 0
        self.n_windows = 0
        self.closed = False
        self._fp: Any = None
        self._part_lines = 0
        self._open_part()
        self._write_stream_manifest()  # followers can see the stream early

    def _open_part(self) -> None:
        if self._fp is not None:
            self._fp.close()
        name = f"part-{len(self.parts):05d}.jsonl"
        self.parts.append({"name": name, "records": 0})
        self._fp = open(self.directory / name, "w", encoding="utf-8")
        self._part_lines = 0

    def write_record(self, record: dict[str, Any]) -> None:
        if self.closed:
            raise ReproError(f"stream writer {self.directory} is closed")
        if self._part_lines >= self.part_records:
            self._open_part()
            self._write_stream_manifest()
        self._fp.write(json.dumps(record, separators=(",", ":")))
        self._fp.write("\n")
        self._fp.flush()
        self._part_lines += 1
        self.parts[-1]["records"] = self._part_lines
        self.n_records += 1

    def write_window(
        self, window: Window, run: int, source: str = "flush"
    ) -> None:
        self.write_record(
            {
                "type": "window",
                "run": run,
                "source": source,
                "window": window.as_dict(self.spec),
            }
        )
        self.n_windows += 1

    def sink(self, run: int):
        """An eviction sink bound to engine run ``run`` (for
        :class:`~repro.obs.windows.WindowedStats`'s ``on_evict``)."""

        def _evict(window: Window) -> None:
            self.write_window(window, run=run, source="live")

        return _evict

    def _write_stream_manifest(
        self, summary: dict[str, Any] | None = None
    ) -> None:
        data: dict[str, Any] = {
            "schema": STREAM_SCHEMA,
            "label": self.label,
            "spec": (
                {
                    "window_cycles": self.spec.window_cycles,
                    "retention": self.spec.retention,
                    "hist_bits": self.spec.hist_bits,
                }
                if self.spec is not None
                else None
            ),
            "closed": self.closed,
            "n_records": self.n_records,
            "n_windows": self.n_windows,
            "parts": [dict(p) for p in self.parts],
        }
        if summary is not None:
            data["summary"] = summary
        path = self.directory / STREAM_MANIFEST_NAME
        path.write_text(json.dumps(data, indent=2) + "\n")

    def close(self, summary: dict[str, Any] | None = None) -> None:
        """Finalize: close the open part and write the final manifest
        (optionally embedding the owning collector's windows summary)."""
        if self.closed:
            return
        if self._fp is not None:
            self._fp.close()
            self._fp = None
        # Drop a trailing part that never received a record.
        if self.parts and self.parts[-1]["records"] == 0:
            part = self.parts.pop()
            try:
                (self.directory / part["name"]).unlink()
            except OSError:  # pragma: no cover - unlink race
                pass
        self.closed = True
        self._write_stream_manifest(summary)

    def __enter__(self) -> "JsonlStreamWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def is_stream_dir(path: str | Path) -> bool:
    """True when ``path`` looks like a streaming trace directory."""
    return (Path(path) / STREAM_MANIFEST_NAME).is_file()


def read_stream_manifest(directory: str | Path) -> dict[str, Any]:
    path = Path(directory) / STREAM_MANIFEST_NAME
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ReproError(
            f"{directory}: not a stream directory (no {STREAM_MANIFEST_NAME})"
        ) from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSON ({exc})") from None
    if data.get("schema") != STREAM_SCHEMA:
        raise ReproError(
            f"{path}: not a stream manifest (schema={data.get('schema')!r})"
        )
    return data


def stream_part_paths(directory: str | Path) -> list[Path]:
    """The stream's part files in write order."""
    return sorted(Path(directory).glob("part-*.jsonl"))


def read_stream_records(directory: str | Path) -> list[dict[str, Any]]:
    """Every record of a stream directory, in write order.

    A reader racing the writer (live tailing, or a writer killed
    mid-record by a per-job timeout) can observe a torn trailing line:
    the stream's very last line, cut mid-JSON or missing its newline.
    That one line is skipped with a warning — it will be complete on the
    next read if the writer is alive, and was never durable if it isn't.
    A malformed line anywhere *else* is real corruption and still raises.
    """
    from repro.obs import warnings as obs_warnings

    records: list[dict[str, Any]] = []
    parts = stream_part_paths(directory)
    for path in parts:
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        for lineno, line in enumerate(lines, start=1):
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                records.append(json.loads(text))
            except json.JSONDecodeError as exc:
                trailing = path == parts[-1] and lineno == len(lines)
                if trailing:
                    obs_warnings.structured(
                        "torn-stream-record",
                        "skipped torn trailing stream record "
                        "(mid-write or killed writer)",
                        part=path.name,
                        line=lineno,
                    )
                    continue
                raise ReproError(
                    f"{path}:{lineno}: not a stream record ({exc})"
                ) from None
    return records


def read_stream_windows(
    directory: str | Path,
) -> list[tuple[int, str, Window]]:
    """Every window record as ``(run, source, Window)``, in write order."""
    out: list[tuple[int, str, Window]] = []
    for record in read_stream_records(directory):
        if record.get("type") == "window":
            out.append(
                (
                    record.get("run", 0),
                    record.get("source", "flush"),
                    Window.from_dict(record["window"]),
                )
            )
    return out


def sweep_orphan_streams(
    root: str | Path, active: Sequence[str] = ()
) -> list[Path]:
    """Remove never-closed stream directories under ``root``.

    A stream writer killed before :meth:`JsonlStreamWriter.close` (a
    per-job ``--timeout``, a crashed pool worker, ^C) leaves a directory
    whose manifest still says ``closed: false``; followers would tail its
    stale parts forever and a new run reusing the path would interleave
    two generations of records. This sweeps ``root``'s immediate
    subdirectories, deletes every unclosed stream (skipping names in
    ``active`` — streams some live writer still owns), emits one
    structured ``orphan-stream`` warning per removal, and returns the
    removed paths. Unreadable/foreign directories are left untouched.
    """
    import shutil

    from repro.obs import warnings as obs_warnings

    root = Path(root)
    removed: list[Path] = []
    if not root.is_dir():
        return removed
    for child in sorted(root.iterdir()):
        if not child.is_dir() or child.name in active:
            continue
        try:
            manifest = read_stream_manifest(child)
        except ReproError:
            continue  # not a stream dir (or unreadable): not ours to touch
        if manifest.get("closed", False):
            continue
        parts = len(stream_part_paths(child))
        shutil.rmtree(child, ignore_errors=True)
        removed.append(child)
        obs_warnings.structured(
            "orphan-stream",
            "removed never-closed stream directory (writer was killed "
            "before finalizing)",
            dir=str(child),
            parts=parts,
            dedup=False,
        )
    return removed


class StreamFollower:
    """Incremental reader for live tailing of a stream directory.

    Remembers a byte offset per part file; every :meth:`poll` returns the
    records written since the previous poll (only complete, newline-
    terminated lines are consumed, so a record mid-write is picked up on
    the next poll). A part older than the newest one can never grow again
    (the writer rotates forward only), so it is marked done once drained.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._offsets: dict[str, int] = {}
        self._done: set[str] = set()

    def manifest(self) -> dict[str, Any] | None:
        """The stream manifest, or None while it's missing/partial."""
        try:
            return read_stream_manifest(self.directory)
        except ReproError:
            return None

    def poll(self) -> list[dict[str, Any]]:
        records: list[dict[str, Any]] = []
        parts = stream_part_paths(self.directory)
        for i, path in enumerate(parts):
            name = path.name
            if name in self._done:
                continue
            offset = self._offsets.get(name, 0)
            try:
                with open(path, "rb") as fp:
                    fp.seek(offset)
                    data = fp.read()
            except OSError:
                continue
            consumed = data.rfind(b"\n") + 1  # 0 when no complete line
            for line in data[:consumed].splitlines():
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                try:
                    records.append(json.loads(text))
                except json.JSONDecodeError:
                    continue  # torn write; superseded on a later poll
            self._offsets[name] = offset + consumed
            if i < len(parts) - 1 and consumed == len(data):
                self._done.add(name)  # rotated away and fully drained
        return records


# -- run manifests -----------------------------------------------------------


def write_manifest(path: str | Path, manifest: dict[str, Any]) -> None:
    """Write a run manifest, stamping the schema id."""
    data = {"schema": MANIFEST_SCHEMA}
    data.update(manifest)
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")


def read_manifest(path: str | Path) -> dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if data.get("schema") != MANIFEST_SCHEMA:
        raise ReproError(
            f"{path}: not a run manifest (schema={data.get('schema')!r})"
        )
    return data
