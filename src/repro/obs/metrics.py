"""Self-telemetry metrics: counters, gauges and wall-time timers.

These measure the *simulator as a program* — how many engine events it
processed, how fast, how much host wall time each phase took — never the
simulated machine's state. They are therefore zero-perturbation by
construction: nothing here reads or writes simulated state, so identical
seed+config runs produce identical :class:`~repro.sim.results.RunResult`
ground truth whether metrics are on or off (a property test enforces it).

The registry is cheap enough to stay on by default: the engine updates it
once per *run* (from totals it keeps anyway), not once per simulated event.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    add = inc  # alias: reads better for bulk updates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-write-wins number."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Timer:
    """Accumulated wall-clock seconds plus a call count."""

    __slots__ = ("name", "total_seconds", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.calls = 0

    def add(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.calls += 1

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(time.perf_counter() - start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timer {self.name}={self.total_seconds:.6f}s/{self.calls}>"


class _NullTimer:
    """Timer stand-in returned by a disabled registry: records nothing."""

    __slots__ = ()

    def add(self, seconds: float) -> None:
        pass

    @contextmanager
    def time(self):
        yield self


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Named counters/gauges/timers with a flat numeric snapshot.

    When ``enabled`` is False every accessor returns a shared no-op object
    and :meth:`snapshot` is empty — one branch per lookup, no allocation.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    # -- accessors (create-or-get) -----------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def timer(self, name: str) -> Timer:
        if not self.enabled:
            return _NULL_TIMER  # type: ignore[return-value]
        t = self._timers.get(name)
        if t is None:
            t = self._timers[name] = Timer(name)
        return t

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Flat ``name -> number`` view: counters and gauges under their own
        names, timers as ``<name>_seconds`` and ``<name>_calls``."""
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, t in self._timers.items():
            out[f"{name}_seconds"] = t.total_seconds
            out[f"{name}_calls"] = t.calls
        return dict(sorted(out.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"<MetricsRegistry {state}: {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._timers)} timers>"
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    add = inc


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
