"""The structured trace bus: typed events of everything the simulator does.

A :class:`TraceEvent` is a named tuple ``(time, core, tid, kind, arg)`` —
deliberately a *tuple* subclass so the pre-existing ad-hoc tuple trace
(``record[3] == "switch_in"`` style consumers, including
:mod:`repro.analysis.timeline`) keeps working unchanged, while new code
gets typed field access (``event.kind``, ``event.time``).

Emission discipline
-------------------
Every emit site in the engine and kernel subsystems is guarded by a single
boolean test; when tracing is disabled **no event object is constructed**
and nothing is appended. This is the zero-perturbation contract: tracing
on/off must never change simulated results (a property test enforces it),
and tracing off must cost exactly one branch per would-be emit.
"""

from __future__ import annotations

from typing import Any, Iterable, NamedTuple

# -- event kinds ------------------------------------------------------------
# Scheduling
READY = "ready"                  #: thread became runnable (wake/spawn/preempt)
SWITCH_IN = "switch_in"          #: thread dispatched onto a core
SWITCH_OUT = "switch_out"        #: thread descheduled from a core
EXIT = "exit"                    #: thread finished
SCHED_STEAL = "sched_steal"      #: idle core stole work (arg = victim core)
# Kernel entries
SYSCALL_ENTER = "syscall_enter"  #: syscall entry path begins (arg = name)
SYSCALL_EXIT = "syscall_exit"    #: syscall return to user (arg = name)
PMI = "pmi"                      #: performance-monitoring interrupt serviced
TIMER_TICK = "timer_tick"        #: periodic timer interrupt
# Synchronization
LOCK_ACQ = "lock_acq"            #: userspace lock acquired (arg = lock name)
LOCK_REL = "lock_rel"            #: userspace lock released (arg = lock name)
FUTEX_WAIT = "futex_wait"        #: thread went to sleep on a futex (arg = key)
FUTEX_WAKE = "futex_wake"        #: futex wake (arg = (key, n_woken))
# Counter-read protocol (the LiMiT safe read)
PMC_READ_BEGIN = "pmc_read_begin"  #: entered the protected read sequence
PMC_READ_END = "pmc_read_end"      #: left it (arg = True ok / False restart)
CTR_OVERFLOW = "ctr_overflow"      #: a hardware counter wrapped (arg = index)
SAMPLE = "sample"                  #: sampling fd recorded a sample (arg = fd)
# Fault injection (repro.faults)
FAULT_INJECT = "fault_inject"    #: injected fault fired (arg = (kind, detail))
FAULT_DETECT = "fault_detect"    #: protocol caught an injected hazard
# SLO alerting (repro.obs.alerts; synthesized host-side from windows)
SLO_ALERT = "slo_alert"          #: burn-rate alert fired (arg = (slo, fast, slow))
# Regions / phases
REGION_BEGIN = "region_begin"    #: instrumented code region entered
REGION_END = "region_end"        #: instrumented code region left
PHASE_BEGIN = "phase_begin"      #: experiment/runner phase began (arg = name)
PHASE_END = "phase_end"          #: experiment/runner phase ended (arg = name)

#: Every kind the simulator emits, with a one-line description (used by the
#: ``python -m repro.trace`` CLI and docs/observability.md).
KIND_DESCRIPTIONS: dict[str, str] = {
    READY: "thread became runnable (arg: thread name)",
    SWITCH_IN: "thread dispatched onto a core (arg: thread name)",
    SWITCH_OUT: "thread descheduled (arg: thread name)",
    EXIT: "thread finished (arg: thread name)",
    SCHED_STEAL: "idle core stole a thread (arg: victim core id)",
    SYSCALL_ENTER: "syscall entry (arg: syscall name)",
    SYSCALL_EXIT: "syscall return (arg: syscall name)",
    PMI: "performance-monitoring interrupt (arg: overflowed counter indices)",
    TIMER_TICK: "periodic timer interrupt",
    LOCK_ACQ: "userspace lock acquired (arg: lock name)",
    LOCK_REL: "userspace lock released (arg: lock name)",
    FUTEX_WAIT: "thread slept on a futex (arg: futex key)",
    FUTEX_WAKE: "futex wake (arg: (key, n_woken))",
    PMC_READ_BEGIN: "LiMiT protected read sequence entered",
    PMC_READ_END: "LiMiT protected read sequence left (arg: ok)",
    CTR_OVERFLOW: "hardware counter wrapped (arg: counter index)",
    SAMPLE: "sampling fd recorded a sample (arg: fd number)",
    FAULT_INJECT: "injected fault fired (arg: (fault kind, detail))",
    FAULT_DETECT: "protocol caught an injected hazard (arg: fault kind)",
    SLO_ALERT: "SLO burn-rate alert fired (arg: (slo name, fast, slow))",
    REGION_BEGIN: "instrumented region entered (arg: region name)",
    REGION_END: "instrumented region left (arg: region name)",
    PHASE_BEGIN: "experiment phase began (arg: phase name)",
    PHASE_END: "experiment phase ended (arg: phase name)",
}

KINDS: frozenset[str] = frozenset(KIND_DESCRIPTIONS)


class TraceEvent(NamedTuple):
    """One structured trace record.

    ``time`` is in simulated cycles for engine-emitted events; runner-level
    phase events use wall-clock microseconds (their bus says so).
    """

    time: int
    core: int
    tid: int
    kind: str
    arg: Any = None


class TraceBus:
    """An append-only, in-memory stream of :class:`TraceEvent`.

    The bus itself is trivial by design: emit appends one named tuple.
    The *callers* guard emission (``if tracing: bus.emit(...)``) so that a
    disabled bus costs one branch and constructs nothing.
    """

    __slots__ = ("enabled", "events")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def emit(self, time: int, core: int, tid: int, kind: str, arg: Any = None) -> None:
        """Append one event. Callers are expected to have checked
        :attr:`enabled`; emitting on a disabled bus still appends (the
        guard is the caller's single branch, not a hidden second one)."""
        self.events.append(TraceEvent(time, core, tid, kind, arg))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


def as_events(records: Iterable[tuple]) -> list[TraceEvent]:
    """Coerce legacy plain-tuple trace records into :class:`TraceEvent`.

    Records shorter than 5 fields get ``arg=None``; TraceEvents pass
    through untouched. Useful for feeding old traces to the exporters.
    """
    out: list[TraceEvent] = []
    for record in records:
        if isinstance(record, TraceEvent):
            out.append(record)
        elif len(record) >= 5:
            out.append(TraceEvent(*record[:5]))
        else:
            time, core, tid, kind = record[:4]
            out.append(TraceEvent(time, core, tid, kind, None))
    return out
