"""One-line operational warnings, deduplicated per process.

Library code that degrades gracefully (a corrupt cache entry, a read-only
cache directory, a worker retry) should say so exactly once instead of
either crashing or staying silent. :func:`warn` prints a single
``repro: warning:`` line to stderr and suppresses repeats of the same
message for the life of the process, so a cache with hundreds of entries
behind a broken disk emits one line, not hundreds.
"""

from __future__ import annotations

import sys

_seen: set[str] = set()


def warn(message: str, *, dedup: bool = True) -> None:
    """Print a one-line warning to stderr (suppressing exact repeats)."""
    if dedup:
        if message in _seen:
            return
        _seen.add(message)
    print(f"repro: warning: {message}", file=sys.stderr)


def structured(code: str, message: str, *, dedup: bool = True, **fields) -> None:
    """A warning with a stable code and sorted ``key=value`` detail, e.g.
    ``repro: warning: [orphan-stream] removed never-closed stream dir
    (dir=out/e20, parts=3)`` — greppable by code, stable under reordered
    callers (fields are sorted, so the dedup key is canonical too)."""
    detail = ", ".join(f"{key}={fields[key]}" for key in sorted(fields))
    suffix = f" ({detail})" if detail else ""
    warn(f"[{code}] {message}{suffix}", dedup=dedup)


def reset_seen() -> None:
    """Forget previously-emitted messages (test isolation hook)."""
    _seen.clear()
