"""Mergeable log-bucket latency histograms (HDR-style).

A :class:`LogHistogram` buckets non-negative integer values (cycles, in
this codebase) into log-linear buckets: values below ``2**bits`` get an
exact bucket each; above that, every power-of-two octave is split into
``2**(bits-1)`` linear sub-buckets, bounding the relative quantization
error of any recorded value by ``2**-(bits-1)`` (~6% at the default
5 bits; raise ``bits`` for tighter buckets at linear memory cost).

The histogram is the streaming tier's unit of aggregation, so two
properties are load-bearing:

* **Exact, order-invariant merges.** A histogram is a bag of integer
  bucket counts plus exact ``n``/``sum``/``min``/``max`` moments; merging
  adds counts. Integer addition is associative and commutative, so
  merging per-window histograms, per-run histograms and per-worker
  histograms in *any* order yields bit-identical state — this is what
  makes ``--jobs N`` and serial runs report identical percentiles.
* **Deterministic percentiles.** :meth:`percentile` depends only on the
  bucket counts (rank = ``ceil(p/100 * n)``, reported value = the highest
  value of the bucket holding that rank), never on insertion order.

Nothing here reads simulated state: histograms are host-side bookkeeping
fed by workload probes, and by the zero-perturbation contract of
:mod:`repro.obs` they cannot change simulation results.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

DEFAULT_BITS = 5

#: Percentiles every summary reports, with their stable key names.
SUMMARY_PERCENTILES: tuple[tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p95", 95.0),
    ("p99", 99.0),
    ("p99.9", 99.9),
)


def bucket_index(value: int, bits: int = DEFAULT_BITS) -> int:
    """Bucket index of ``value`` (non-negative int) at ``bits`` precision."""
    if value < (1 << bits):
        return value
    exp = value.bit_length() - bits
    return (exp << bits) + (value >> exp)


def bucket_bounds(index: int, bits: int = DEFAULT_BITS) -> tuple[int, int]:
    """Inclusive ``(lowest, highest)`` value range of bucket ``index``."""
    exp, sub = index >> bits, index & ((1 << bits) - 1)
    if exp == 0:
        return sub, sub
    return sub << exp, ((sub + 1) << exp) - 1


class LogHistogram:
    """A mergeable log-linear histogram of non-negative integers."""

    __slots__ = ("bits", "counts", "n", "total", "min_value", "max_value")

    def __init__(self, bits: int = DEFAULT_BITS) -> None:
        if not 1 <= bits <= 16:
            raise ValueError(f"histogram bits must be in [1, 16], got {bits}")
        self.bits = bits
        self.counts: dict[int, int] = {}
        self.n = 0
        self.total = 0
        self.min_value: int | None = None
        self.max_value: int | None = None

    # -- recording ----------------------------------------------------------

    def record(self, value: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value`` (clamped at 0)."""
        if count <= 0:
            return
        value = int(value)
        if value < 0:
            value = 0
        self._add(bucket_index(value, self.bits), value, count)

    def _add(self, idx: int, value: int, count: int) -> None:
        """Raw bucket update for callers that already computed ``idx``
        (the windowed observe hot path records each value into two
        histograms; the bucket index is computed once)."""
        self.counts[idx] = self.counts.get(idx, 0) + count
        self.n += count
        self.total += value * count
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def record_many(self, values: Iterable[int]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram, exactly; returns self."""
        if other.bits != self.bits:
            raise ValueError(
                f"cannot merge histograms with different precision "
                f"({self.bits} vs {other.bits} bits)"
            )
        for idx, count in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + count
        self.n += other.n
        self.total += other.total
        if other.min_value is not None:
            if self.min_value is None or other.min_value < self.min_value:
                self.min_value = other.min_value
        if other.max_value is not None:
            if self.max_value is None or other.max_value > self.max_value:
                self.max_value = other.max_value
        return self

    # -- queries ------------------------------------------------------------

    def percentile(self, p: float) -> int:
        """Deterministic percentile: the highest value of the bucket that
        contains rank ``ceil(p/100 * n)``. Exact for the extremes (p <= 0
        returns the true minimum, p >= 100 the true maximum) and for every
        value below ``2**bits``."""
        if self.n == 0:
            return 0
        if p <= 0:
            return self.min_value or 0
        if p >= 100:
            return self.max_value or 0
        rank = math.ceil(self.n * p / 100.0)
        cumulative = 0
        for idx in sorted(self.counts):
            cumulative += self.counts[idx]
            if cumulative >= rank:
                hi = bucket_bounds(idx, self.bits)[1]
                # Never report beyond the true extremes.
                if self.max_value is not None and hi > self.max_value:
                    return self.max_value
                return hi
        return self.max_value or 0  # pragma: no cover - unreachable

    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def count_over(self, threshold: int) -> int:
        """Samples recorded above ``threshold``, to bucket precision.

        Counts every bucket whose entire range lies strictly above the
        threshold; the bucket *containing* the threshold counts as under
        it. Exact for thresholds below ``2**bits``; beyond that the
        quantization error is bounded by one bucket width (threshold is
        effectively rounded up to its bucket's upper bound). Merge-safe:
        because bucket counts add under :meth:`merge`, ``count_over`` of a
        merge equals the sum of ``count_over`` of the parts in any order —
        the property SLO burn-rate alerting relies on for serial ≡ pooled
        equivalence.
        """
        if self.n == 0:
            return 0
        cut = bucket_index(max(0, int(threshold)), self.bits)
        return sum(c for idx, c in self.counts.items() if idx > cut)

    def summary(self) -> dict[str, Any]:
        """The stable summary block reports and manifests embed."""
        out: dict[str, Any] = {
            "count": self.n,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.min_value or 0,
            "max": self.max_value or 0,
        }
        for key, p in SUMMARY_PERCENTILES:
            out[key] = self.percentile(p)
        return out

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Yield ``(bucket_index, count)`` in ascending bucket order."""
        for idx in sorted(self.counts):
            yield idx, self.counts[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return (
            self.bits == other.bits
            and self.counts == other.counts
            and self.n == other.n
            and self.total == other.total
            and self.min_value == other.min_value
            and self.max_value == other.max_value
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LogHistogram n={self.n} min={self.min_value} "
            f"max={self.max_value} buckets={len(self.counts)}>"
        )

    # -- interchange --------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe, deterministically ordered dict form (lossless)."""
        return {
            "bits": self.bits,
            "n": self.n,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "counts": {str(i): c for i, c in self},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LogHistogram":
        hist = cls(bits=data["bits"])
        hist.n = data["n"]
        hist.total = data["sum"]
        hist.min_value = data["min"]
        hist.max_value = data["max"]
        hist.counts = {int(i): c for i, c in data["counts"].items()}
        return hist
