"""Time-bucketed counter windows with bounded retention.

The streaming tier's in-memory representation: observations (windowed
counters and latency histogram points) are bucketed by simulated time into
fixed-width windows. Only the newest ``retention`` windows are kept in
full detail; older ones are *evicted* — handed to an optional sink (the
streaming JSONL exporter) and folded into a single ``spilled`` aggregate
window — so memory is bounded by the retention, never by how many
observations a run produces.

Exactness contract (property-tested):

* ``totals`` is maintained independently of windowing and eviction, so
  summary percentiles and counter sums are *exact* regardless of window
  size, retention, eviction or merge order.
* ``merge(retained windows) + spilled + late == totals`` at all times
  (:meth:`WindowedStats.reconcile`) — window summaries reconcile exactly
  with the batch view of the same run. ``late`` aggregates observations
  that arrive for windows already evicted (out-of-order timestamps);
  their per-window detail is gone but their contribution is never lost.
* :meth:`WindowedStats.merge` is order-invariant: merging worker-side
  stats A then B produces bit-identical state to B then A (bucket counts
  are integers; eviction keeps the highest ``retention`` window indices
  either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.hist import DEFAULT_BITS, LogHistogram

#: Window index of the spilled (evicted) aggregate in dict forms.
SPILLED_INDEX = -1

#: Default window width in simulated cycles (~4 ms at 2.4 GHz).
DEFAULT_WINDOW_CYCLES = 10_000_000

#: Default number of detailed windows kept in memory.
DEFAULT_RETENTION = 128


@dataclass(frozen=True)
class WindowSpec:
    """Shape of a windowed collector: width, retention, hist precision."""

    window_cycles: int = DEFAULT_WINDOW_CYCLES
    retention: int = DEFAULT_RETENTION
    hist_bits: int = DEFAULT_BITS

    def __post_init__(self) -> None:
        if self.window_cycles < 1:
            raise ValueError(
                f"window_cycles must be >= 1, got {self.window_cycles}"
            )
        if self.retention < 1:
            raise ValueError(f"retention must be >= 1, got {self.retention}")


class Window:
    """One time bucket: counters plus per-stream latency histograms."""

    __slots__ = ("index", "counters", "hists")

    def __init__(self, index: int) -> None:
        self.index = index
        self.counters: dict[str, float] = {}
        self.hists: dict[str, LogHistogram] = {}

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def hist(self, stream: str, bits: int) -> LogHistogram:
        h = self.hists.get(stream)
        if h is None:
            h = self.hists[stream] = LogHistogram(bits=bits)
        return h

    def merge(self, other: "Window") -> "Window":
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for stream, hist in other.hists.items():
            mine = self.hists.get(stream)
            if mine is None:
                mine = self.hists[stream] = LogHistogram(bits=hist.bits)
            mine.merge(hist)
        return self

    def copy(self) -> "Window":
        out = Window(self.index)
        out.merge(self)
        return out

    def is_empty(self) -> bool:
        return not self.counters and not self.hists

    def as_dict(self, spec: WindowSpec | None = None) -> dict[str, Any]:
        """JSON-safe, deterministically ordered dict form (lossless)."""
        out: dict[str, Any] = {"index": self.index}
        if spec is not None and self.index >= 0:
            out["start_cycle"] = self.index * spec.window_cycles
            out["end_cycle"] = (self.index + 1) * spec.window_cycles - 1
        out["counters"] = dict(sorted(self.counters.items()))
        out["hists"] = {
            stream: self.hists[stream].as_dict()
            for stream in sorted(self.hists)
        }
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Window":
        window = cls(data["index"])
        window.counters = dict(data["counters"])
        window.hists = {
            stream: LogHistogram.from_dict(h)
            for stream, h in data["hists"].items()
        }
        return window

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Window):
            return NotImplemented
        return (
            self.index == other.index
            and self.counters == other.counters
            and self.hists == other.hists
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Window {self.index} counters={len(self.counters)} "
            f"hists={len(self.hists)}>"
        )


#: Sink signature: called with each evicted window (full detail) exactly
#: once, in ascending window-index order.
EvictSink = Callable[[Window], None]


class WindowedStats:
    """Windowed observations with bounded retention and exact totals."""

    def __init__(
        self,
        spec: WindowSpec | None = None,
        on_evict: Optional[EvictSink] = None,
    ) -> None:
        self.spec = spec or WindowSpec()
        self.on_evict = on_evict
        self.windows: dict[int, Window] = {}
        self.spilled = Window(SPILLED_INDEX)
        #: observations for windows already evicted or below the retention
        #: range — never streamed live, so kept apart from ``spilled``
        #: (whose content a sink has already seen window by window)
        self.late = Window(SPILLED_INDEX)
        self.totals = Window(SPILLED_INDEX)  # index unused; exact run totals
        #: highest window index ever evicted (late arrivals spill directly)
        self.evict_horizon = SPILLED_INDEX
        self.evicted_windows = 0
        self.late_observations = 0
        self.max_retained = 0  # high-water mark, for memory audits
        # Hot-path caches: consecutive observations overwhelmingly hit
        # the same window and stream, so the last resolved target window
        # and (window, totals) histogram pair are memoized. A cached
        # entry always refers to a still-retained window: evictions and
        # merges drop both caches. Never pickled or compared.
        self._hot_target: tuple[int, Window] | None = None
        self._hot_hists: (
            tuple[str, int, LogHistogram, LogHistogram] | None
        ) = None

    # -- feeding ------------------------------------------------------------

    def window_of(self, at: int) -> int:
        return max(0, int(at)) // self.spec.window_cycles

    def _target(self, at: int) -> Window:
        at = int(at)
        index = (at if at > 0 else 0) // self.spec.window_cycles
        hot = self._hot_target
        if hot is not None and hot[0] == index:
            return hot[1]
        if index <= self.evict_horizon:
            # The window this observation belongs to was already evicted;
            # keep totals exact by routing it into the late aggregate.
            self.late_observations += 1
            return self.late
        window = self.windows.get(index)
        if window is None:
            if (
                len(self.windows) >= self.spec.retention
                and index < min(self.windows)
            ):
                # Below the retention range: the window would be evicted
                # the instant it was created (and a sink would see it
                # empty). Treat the observation as late instead.
                self.late_observations += 1
                return self.late
            window = self.windows[index] = Window(index)
            self._enforce_retention()
            if len(self.windows) > self.max_retained:
                self.max_retained = len(self.windows)
        if window.index == index:  # retained window, safe to memoize
            self._hot_target = (index, window)
        return window

    def observe(self, stream: str, value: int, at: int) -> None:
        """Record one latency/histogram point for ``stream`` at sim time
        ``at`` (cycles); feeds both the window and the exact totals.

        This is the per-request hot path of the streaming tier: the
        (stream, window) -> histogram-pair resolution is memoized and the
        bucket update is inlined, so the common case costs one division,
        one bucket-index computation and two raw bucket adds.
        """
        at = int(at)
        index = (at if at > 0 else 0) // self.spec.window_cycles
        hot = self._hot_hists
        if hot is not None and hot[1] == index and hot[0] == stream:
            whist, thist = hot[2], hot[3]
        else:
            window = self._target(at)
            bits = self.spec.hist_bits
            whist = window.hist(stream, bits)
            thist = self.totals.hist(stream, bits)
            if window.index == index:  # retained; safe to memoize
                self._hot_hists = (stream, index, whist, thist)
            else:  # late aggregate: _target must keep counting these
                self._hot_hists = None
        value = int(value)
        if value < 0:
            value = 0
        bits = whist.bits
        if value < (1 << bits):
            idx = value
        else:
            exp = value.bit_length() - bits
            idx = (exp << bits) + (value >> exp)
        for h in (whist, thist):
            counts = h.counts
            counts[idx] = counts.get(idx, 0) + 1
            h.n += 1
            h.total += value
            if h.min_value is None or value < h.min_value:
                h.min_value = value
            if h.max_value is None or value > h.max_value:
                h.max_value = value

    def count(self, name: str, n: float = 1, *, at: int) -> None:
        """Add ``n`` to windowed counter ``name`` at sim time ``at``."""
        counters = self._target(at).counters
        counters[name] = counters.get(name, 0) + n
        totals = self.totals.counters
        totals[name] = totals.get(name, 0) + n

    def observe_batch(
        self,
        stream: str,
        samples: list[tuple[int, int]],
        *,
        counter: str | None = None,
    ) -> None:
        """Record ``(value, at)`` samples in one tight loop; optionally bump
        windowed counter ``counter`` by 1 per sample in the same window.

        Bit-identical to calling :meth:`observe` (and :meth:`count`) per
        sample in the same order — high-rate probes batch their samples
        locally and flush here so recording cost stays off their hot path
        (the same buffering idea LiMiT itself uses for cheap reads).
        """
        wc = self.spec.window_cycles
        bits = self.spec.hist_bits
        thist = self.totals.hist(stream, bits)
        tcounters = self.totals.counters
        hot_index: int | None = None
        whist = thist  # placeholder; reassigned before first use
        wcounters = tcounters
        for value, at in samples:
            at = int(at)
            index = (at if at > 0 else 0) // wc
            if index != hot_index:
                window = self._target(at)
                whist = window.hist(stream, bits)
                wcounters = window.counters
                # late/spilled targets must re-resolve every sample (the
                # late-observation counter lives in _target)
                hot_index = index if window.index == index else None
                if hot_index is None and counter is not None:
                    # per-sample calls route the histogram point and the
                    # counter bump through _target separately, counting
                    # two late observations; stay bit-identical to that
                    self.late_observations += 1
            value = int(value)
            if value < 0:
                value = 0
            if value < (1 << bits):
                idx = value
            else:
                exp = value.bit_length() - bits
                idx = (exp << bits) + (value >> exp)
            for h in (whist, thist):
                counts = h.counts
                counts[idx] = counts.get(idx, 0) + 1
                h.n += 1
                h.total += value
                if h.min_value is None or value < h.min_value:
                    h.min_value = value
                if h.max_value is None or value > h.max_value:
                    h.max_value = value
            if counter is not None:
                wcounters[counter] = wcounters.get(counter, 0) + 1
                tcounters[counter] = tcounters.get(counter, 0) + 1

    def _enforce_retention(self) -> None:
        while len(self.windows) > self.spec.retention:
            index = min(self.windows)
            self._evict(index)

    def _evict(self, index: int) -> None:
        self._hot_target = None
        self._hot_hists = None
        window = self.windows.pop(index)
        if index > self.evict_horizon:
            self.evict_horizon = index
        self.evicted_windows += 1
        if self.on_evict is not None:
            self.on_evict(window)
        self.spilled.merge(window)

    # -- merging ------------------------------------------------------------

    def merge(self, other: "WindowedStats") -> "WindowedStats":
        """Fold ``other`` (a worker's or another run's stats) in, exactly.

        Order-invariant: the retained set afterwards is the highest
        ``retention`` window indices of the union, everything else is in
        ``spilled``, and ``totals`` is the exact sum — whichever order the
        merges happened in.
        """
        if other.spec.window_cycles != self.spec.window_cycles:
            raise ValueError(
                "cannot merge windowed stats with different window sizes "
                f"({self.spec.window_cycles} vs {other.spec.window_cycles})"
            )
        self._hot_target = None
        self._hot_hists = None
        for index in sorted(other.windows):
            window = other.windows[index]
            if index <= self.evict_horizon:
                self.spilled.merge(window)
            else:
                mine = self.windows.get(index)
                if mine is None:
                    self.windows[index] = window.copy()
                else:
                    mine.merge(window)
        self.spilled.merge(other.spilled)
        self.late.merge(other.late)
        self.totals.merge(other.totals)
        if other.evict_horizon > self.evict_horizon:
            self.evict_horizon = other.evict_horizon
        self.evicted_windows += other.evicted_windows
        self.late_observations += other.late_observations
        # The horizon may have advanced past windows we retained: spill
        # them so both merge orders converge to the same state.
        for index in sorted(self.windows):
            if index <= self.evict_horizon:
                self.spilled.merge(self.windows.pop(index))
        self._enforce_retention()
        if len(self.windows) > self.max_retained:
            self.max_retained = len(self.windows)
        return self

    def drain(self) -> list[Window]:
        """Evict every retained window through the sink (ascending index),
        returning them; afterwards everything detailed is in ``spilled``.
        Called at end of run/stream so the sink sees a complete series."""
        drained: list[Window] = []
        for index in sorted(self.windows):
            window = self.windows[index]
            drained.append(window.copy())
            self._evict(index)
        return drained

    def detach_sink(self) -> None:
        """Drop the eviction sink (before pickling/attaching to records)."""
        self.on_evict = None

    # -- queries ------------------------------------------------------------

    @property
    def n_observations(self) -> int:
        return sum(h.n for h in self.totals.hists.values())

    def is_empty(self) -> bool:
        return self.totals.is_empty()

    def retained_view(self) -> Window:
        """Retained + spilled + late, merged (== totals by invariant)."""
        view = Window(SPILLED_INDEX)
        for index in sorted(self.windows):
            view.merge(self.windows[index])
        view.merge(self.spilled)
        view.merge(self.late)
        return view

    def reconcile(self) -> bool:
        """True iff retained + spilled + late reproduce the exact totals."""
        view = self.retained_view()
        return (
            view.counters == self.totals.counters
            and view.hists == self.totals.hists
        )

    def summary(self) -> dict[str, Any]:
        """Manifest block: exact per-stream percentiles + counter totals,
        plus windowing/memory facts. Keys are deterministically ordered."""
        return {
            "window_cycles": self.spec.window_cycles,
            "retention": self.spec.retention,
            "hist_bits": self.spec.hist_bits,
            "n_windows": len(self.windows) + self.evicted_windows,
            "retained_windows": len(self.windows),
            "evicted_windows": self.evicted_windows,
            "late_observations": self.late_observations,
            "max_retained": self.max_retained,
            "reconciled": self.reconcile(),
            "counters": dict(sorted(self.totals.counters.items())),
            "streams": {
                stream: self.totals.hists[stream].summary()
                for stream in sorted(self.totals.hists)
            },
        }

    def memory_audit(self) -> dict[str, int]:
        """Bounded-memory evidence: retained windows never exceed the
        retention, and live bucket cells are bounded by windows * streams *
        buckets-per-histogram — none of it grows with observation count."""
        bucket_cells = sum(
            len(h.counts)
            for w in self.windows.values()
            for h in w.hists.values()
        )
        bucket_cells += sum(len(h.counts) for h in self.spilled.hists.values())
        bucket_cells += sum(len(h.counts) for h in self.late.hists.values())
        bucket_cells += sum(len(h.counts) for h in self.totals.hists.values())
        return {
            "retained_windows": len(self.windows),
            "max_retained": self.max_retained,
            "retention": self.spec.retention,
            "bucket_cells": bucket_cells,
        }

    # -- interchange --------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return {
            "spec": {
                "window_cycles": self.spec.window_cycles,
                "retention": self.spec.retention,
                "hist_bits": self.spec.hist_bits,
            },
            "windows": [
                self.windows[i].as_dict(self.spec) for i in sorted(self.windows)
            ],
            "spilled": self.spilled.as_dict(),
            "late": self.late.as_dict(),
            "totals": self.totals.as_dict(),
            "evict_horizon": self.evict_horizon,
            "evicted_windows": self.evicted_windows,
            "late_observations": self.late_observations,
            "max_retained": self.max_retained,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WindowedStats":
        spec = WindowSpec(**data["spec"])
        stats = cls(spec)
        for wd in data["windows"]:
            window = Window.from_dict(wd)
            stats.windows[window.index] = window
        stats.spilled = Window.from_dict(data["spilled"])
        stats.late = Window.from_dict(data["late"])
        stats.totals = Window.from_dict(data["totals"])
        stats.evict_horizon = data["evict_horizon"]
        stats.evicted_windows = data["evicted_windows"]
        stats.late_observations = data["late_observations"]
        stats.max_retained = data["max_retained"]
        return stats

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowedStats):
            return NotImplemented
        return (
            self.spec == other.spec
            and self.windows == other.windows
            and self.spilled == other.spilled
            and self.late == other.late
            and self.totals == other.totals
            and self.evict_horizon == other.evict_horizon
            and self.evicted_windows == other.evicted_windows
            and self.late_observations == other.late_observations
        )

    def __getstate__(self) -> dict[str, Any]:
        # Sinks are process-local (an open stream writer) and hot-path
        # caches are derived state; neither is pickled.
        drop = ("on_evict", "_hot_target", "_hot_hists")
        return {k: v for k, v in self.__dict__.items() if k not in drop}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.on_evict = None
        self._hot_target = None
        self._hot_hists = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WindowedStats windows={len(self.windows)} "
            f"evicted={self.evicted_windows} n={self.n_observations}>"
        )
