"""Multi-window SLO burn-rate alerting over windowed histograms.

Classic SRE practice: define a service-level objective ("99% of requests
complete within T cycles"), track how fast the error budget (the allowed
1%) is being consumed, and page only when *both* a fast and a slow
trailing window burn the budget above threshold — the fast window gives
low detection latency, the slow window suppresses one-window blips.

Inputs come straight from the existing streaming-observability tier: the
per-window :class:`~repro.obs.hist.LogHistogram` of a latency stream
inside :class:`~repro.obs.windows.WindowedStats`. ``bad`` per window is
:meth:`LogHistogram.count_over` of the SLO threshold, so burn rates are
computed to bucket precision and — because bucket counts merge exactly
and order-invariantly — the alert verdicts are identical serial vs
``--jobs N`` and with streaming export on or off.

Everything here is host-side post-processing of collected windows: by
construction it cannot perturb simulation fingerprints. Evaluation covers
retained (and late) per-window detail only; windows already spilled into
the retention aggregate have lost their indices and are reported in the
``excluded`` count — size the retention to at least the slow-window span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.common.errors import ConfigError
from repro.obs.trace import SLO_ALERT, TraceEvent
from repro.obs.windows import SPILLED_INDEX, Window, WindowedStats


@dataclass(frozen=True)
class SloSpec:
    """One latency SLO plus its two-window burn-rate alert policy.

    ``objective`` is the target fraction of requests under
    ``threshold_cycles`` (0.99 = "99% under T"); the error budget is
    ``1 - objective``. Burn rate over a span of trailing windows is
    ``(bad / total) / (1 - objective)`` — 1.0 means the budget is being
    consumed exactly at the sustainable rate, higher burns it faster. The
    alert fires in a window when the trailing ``fast_windows`` burn is at
    least ``fast_burn`` *and* the trailing ``slow_windows`` burn is at
    least ``slow_burn``.
    """

    name: str
    stream: str
    threshold_cycles: int
    objective: float = 0.99
    fast_windows: int = 1
    slow_windows: int = 4
    fast_burn: float = 10.0
    slow_burn: float = 4.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("SloSpec needs a name")
        if not self.stream:
            raise ConfigError("SloSpec needs a stream name")
        if self.threshold_cycles < 1:
            raise ConfigError("SLO threshold must be >= 1 cycle")
        if not 0.0 < self.objective < 1.0:
            raise ConfigError("SLO objective must be in (0, 1)")
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ConfigError(
                "need 1 <= fast_windows <= slow_windows "
                f"(got {self.fast_windows}, {self.slow_windows})"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ConfigError("burn-rate thresholds must be > 0")

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "stream": self.stream,
            "threshold_cycles": self.threshold_cycles,
            "objective": self.objective,
            "fast_windows": self.fast_windows,
            "slow_windows": self.slow_windows,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
        }


@dataclass(frozen=True)
class AlertEvent:
    """One window in which an SLO's two-window burn alert fired."""

    spec_name: str
    window_index: int
    window_start: int  #: first cycle of the window (index * window_cycles)
    fast_burn: float
    slow_burn: float
    bad: int  #: over-threshold samples in the fast span
    total: int  #: all samples in the fast span

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "alert",
            "spec": self.spec_name,
            "window": self.window_index,
            "start": self.window_start,
            "fast_burn": round(self.fast_burn, 4),
            "slow_burn": round(self.slow_burn, 4),
            "bad": self.bad,
            "total": self.total,
        }

    def to_trace_event(self) -> TraceEvent:
        """The typed trace-bus form (kind :data:`~repro.obs.trace.SLO_ALERT`).

        Alert events are synthesized host-side after collection, so they
        carry no core/thread attribution (0/0) — the timestamp is the
        start of the firing window.
        """
        return TraceEvent(
            self.window_start,
            0,
            0,
            SLO_ALERT,
            (self.spec_name, round(self.fast_burn, 4), round(self.slow_burn, 4)),
        )


@dataclass
class AlertReport:
    """Evaluation result of one :class:`SloSpec` over a window series."""

    spec: SloSpec
    window_cycles: int
    events: list[AlertEvent]
    n_windows: int  #: distinct window indices evaluated
    total: int  #: stream samples across evaluated windows
    bad: int  #: over-threshold samples across evaluated windows
    excluded: int  #: samples unreachable per-window (spilled aggregates)

    @property
    def fired(self) -> int:
        return len(self.events)

    def firing_windows(self) -> list[int]:
        return [e.window_index for e in self.events]

    def trace_events(self) -> list[TraceEvent]:
        return [e.to_trace_event() for e in self.events]

    def summary(self) -> dict[str, Any]:
        """The manifest ``alerts`` block entry for this SLO."""
        return {
            "spec": self.spec.as_dict(),
            "window_cycles": self.window_cycles,
            "n_windows": self.n_windows,
            "total": self.total,
            "bad": self.bad,
            "excluded": self.excluded,
            "fired": self.fired,
            "events": [e.as_dict() for e in self.events],
        }


def _window_series(
    source: WindowedStats | Iterable[Window],
) -> tuple[list[Window], int, list[Window]]:
    """Normalize the input into (indexed windows sorted by index,
    window_cycles, aggregate pseudo-windows). Aggregates (spilled/late,
    index < 0) cannot be placed on the timeline, so their samples are
    excluded from burn-rate evaluation and only counted.
    """
    if isinstance(source, WindowedStats):
        window_cycles = source.spec.window_cycles
        windows = [source.windows[i] for i in sorted(source.windows)]
        aggregates = [source.spilled, source.late]
    else:
        window_cycles = 0
        windows, aggregates = [], []
        for w in source:
            if w.index == SPILLED_INDEX or w.index < 0:
                aggregates.append(w)
            else:
                windows.append(w)
        windows.sort(key=lambda w: w.index)
    return windows, window_cycles, aggregates


def evaluate(
    source: WindowedStats | Iterable[Window],
    spec: SloSpec,
    *,
    window_cycles: int | None = None,
) -> AlertReport:
    """Evaluate one SLO's burn-rate alerts over a window series.

    ``source`` is either a :class:`WindowedStats` (its retained windows
    are used and ``window_cycles`` comes from its spec) or any iterable
    of :class:`Window` (e.g. decoded from a ``repro.obs/stream/v1``
    export), in any order — evaluation sorts by index, and merge
    order-invariance of the underlying histograms makes the verdicts
    independent of how the windows were accumulated.

    Gaps in the index sequence are genuine quiet windows: they contribute
    zero samples to the trailing spans (no traffic burns no budget).
    """
    windows, wc, aggregates = _window_series(source)
    if window_cycles is not None:
        wc = window_cycles
    per_window: dict[int, tuple[int, int]] = {}
    total = bad = 0
    for w in windows:
        hist = w.hists.get(spec.stream)
        if hist is None or hist.n == 0:
            continue
        over = hist.count_over(spec.threshold_cycles)
        prev = per_window.get(w.index, (0, 0))
        per_window[w.index] = (prev[0] + hist.n, prev[1] + over)
        total += hist.n
        bad += over
    excluded = 0
    for agg in aggregates:
        h = agg.hists.get(spec.stream)
        if h is not None:
            excluded += h.n

    budget = 1.0 - spec.objective

    def span_burn(end_index: int, span: int) -> tuple[float, int, int]:
        s_total = s_bad = 0
        for i in range(end_index - span + 1, end_index + 1):
            t, b = per_window.get(i, (0, 0))
            s_total += t
            s_bad += b
        if s_total == 0:
            return 0.0, 0, 0
        return (s_bad / s_total) / budget, s_bad, s_total

    events: list[AlertEvent] = []
    for index in sorted(per_window):
        fast, fast_bad, fast_total = span_burn(index, spec.fast_windows)
        slow, _, _ = span_burn(index, spec.slow_windows)
        if fast_bad > 0 and fast >= spec.fast_burn and slow >= spec.slow_burn:
            events.append(
                AlertEvent(
                    spec_name=spec.name,
                    window_index=index,
                    window_start=index * wc,
                    fast_burn=fast,
                    slow_burn=slow,
                    bad=fast_bad,
                    total=fast_total,
                )
            )
    return AlertReport(
        spec=spec,
        window_cycles=wc,
        events=events,
        n_windows=len(per_window),
        total=total,
        bad=bad,
        excluded=excluded,
    )


def evaluate_all(
    source: WindowedStats | Iterable[Window],
    specs: Iterable[SloSpec],
    *,
    window_cycles: int | None = None,
) -> dict[str, Any] | None:
    """The manifest ``alerts`` block: every SLO's report, or ``None`` when
    no specs are registered."""
    specs = list(specs)
    if not specs:
        return None
    if not isinstance(source, WindowedStats):
        source = list(source)
    reports = [
        evaluate(source, spec, window_cycles=window_cycles) for spec in specs
    ]
    return {
        "fired": sum(r.fired for r in reports),
        "slos": [r.summary() for r in reports],
    }
