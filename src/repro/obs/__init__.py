"""repro.obs — structured observability for the simulator itself.

The paper's thesis is that precise, low-overhead observation changes what
you can see; this package holds the reproduction to the same standard:

* :mod:`repro.obs.trace` — a structured trace bus with typed events
  (scheduling, syscalls, futexes, locks, PMIs, counter-read protocol
  steps, regions/phases) emitted by the engine and kernel subsystems;
* :mod:`repro.obs.metrics` — counters/gauges/wall-time timers recording
  simulator self-telemetry (sim events processed, events/sec, context
  switches, …), cheap enough to stay on by default and strictly
  zero-perturbation of simulated results;
* :mod:`repro.obs.export` — JSONL and Chrome/Perfetto ``trace_event``
  exporters plus run-manifest helpers, so any run can be opened in
  https://ui.perfetto.dev;
* :mod:`repro.obs.runtime` — a run collector that aggregates every engine
  run inside a ``with collect():`` block (used by the experiment runner,
  the workbench CLI and the benchmark harness).

The ``python -m repro.trace`` CLI converts/summarizes/filters trace files.
"""

from repro.obs.export import (
    MANIFEST_SCHEMA,
    STREAM_SCHEMA,
    JsonlStreamWriter,
    StreamFollower,
    events_to_jsonl,
    is_stream_dir,
    perfetto_document,
    perfetto_events,
    read_jsonl,
    read_stream_manifest,
    read_stream_records,
    read_stream_windows,
    summarize_events,
    write_manifest,
    write_perfetto,
)
from repro.obs.hist import LogHistogram
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.runtime import (
    RunCollector,
    collect,
    count_window,
    current,
    observe_batch,
    observe_latency,
)
from repro.obs.trace import KINDS, TraceBus, TraceEvent
from repro.obs.warnings import warn
from repro.obs.windows import Window, WindowedStats, WindowSpec

__all__ = [
    "Counter",
    "Gauge",
    "JsonlStreamWriter",
    "KINDS",
    "LogHistogram",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "RunCollector",
    "STREAM_SCHEMA",
    "StreamFollower",
    "Timer",
    "TraceBus",
    "TraceEvent",
    "Window",
    "WindowSpec",
    "WindowedStats",
    "collect",
    "count_window",
    "current",
    "events_to_jsonl",
    "is_stream_dir",
    "observe_batch",
    "observe_latency",
    "perfetto_document",
    "perfetto_events",
    "read_jsonl",
    "read_stream_manifest",
    "read_stream_records",
    "read_stream_windows",
    "summarize_events",
    "warn",
    "write_manifest",
    "write_perfetto",
]
