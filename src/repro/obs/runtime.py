"""Run collection: aggregate every engine run inside a scope.

The experiment runner, the workbench CLI and the benchmark harness all need
the same thing: "how much simulation happened while this block ran, how
fast, and (optionally) give me the traces". A :class:`RunCollector` pushed
with :func:`collect` receives a record from every :class:`~repro.sim.engine.
Engine` run that completes inside the ``with`` block, without the caller
having to thread anything through experiment code.

When ``capture_traces`` is set, engines created inside the scope turn
tracing on even if their config didn't ask for it — safe, because tracing
is zero-perturbation by contract (see tests/properties).

**Streaming tier.** Collectors also accept *windowed observations* —
latency samples (:func:`observe_latency`) and counters
(:func:`count_window`) bucketed by simulated time — which accumulate in
bounded-memory :class:`~repro.obs.windows.WindowedStats` (window size and
retention from the collector's :class:`~repro.obs.windows.WindowSpec`;
oldest windows are evicted into an aggregate, optionally streaming through
a :class:`~repro.obs.export.JsonlStreamWriter` as they go). Observations
are host-side bookkeeping: by the zero-perturbation contract they cannot
change simulated results, so fingerprints are identical with streaming on
or off. Histogram merges are exact, so serial and ``--jobs N`` execution
produce bit-identical percentile summaries.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.units import Frequency
from repro.obs.trace import TraceEvent
from repro.obs.windows import WindowedStats, WindowSpec


@dataclass
class EngineRunRecord:
    """One engine run observed by a collector."""

    index: int
    seed: int
    config_repr: str
    frequency: Frequency
    wall_seconds: float
    sim_cycles: int
    sim_events: int
    context_switches: int
    pmis: int
    syscalls: int
    metrics: dict[str, float] = field(default_factory=dict)
    trace: list[TraceEvent] = field(default_factory=list)
    thread_names: dict[int, str] = field(default_factory=dict)
    #: ground-truth event totals of this run (event name -> count, summed
    #: over threads and domains). Host-side bookkeeping read by the
    #: top-down classifier (:mod:`repro.analysis.tree`); never feeds back
    #: into simulation, so fingerprints are identical with or without it.
    counts: dict[str, int] = field(default_factory=dict)
    #: windowed observations made during this run (None when it made none)
    windows: WindowedStats | None = None
    #: True when this record's windows already reached a stream writer —
    #: stops a downstream collector from exporting them a second time.
    windows_streamed: bool = False
    #: ``RunResult.fingerprint()`` digest, captured only when the
    #: ``REPRO_FP_RECORDS`` env var is ``1`` (equivalence smokes and
    #: property tests); hashing every run costs ~1ms each, which is real
    #: money on the bench path, so the default records no fingerprint.
    fingerprint: str = ""


class RunCollector:
    """Aggregates engine runs; see module docstring."""

    def __init__(
        self,
        capture_traces: bool = False,
        label: str | None = None,
        window_spec: WindowSpec | None = None,
        stream: Any | None = None,
    ) -> None:
        self.capture_traces = capture_traces
        self.label = label
        #: shape of windowed observations (None: default spec, on demand)
        self.window_spec = window_spec
        #: a JsonlStreamWriter receiving windows incrementally, or None
        self.stream = stream
        self.records: list[EngineRunRecord] = []
        #: aggregate windowed stats across every run this scope saw
        self.windows: WindowedStats | None = None
        #: the in-flight run's windowed stats (moved onto its record by
        #: :meth:`record_run`)
        self._pending: WindowedStats | None = None
        #: SLO specs registered by experiments/workloads for this scope
        #: (see :func:`register_alert_spec`); evaluated lazily by
        #: :meth:`alerts_summary` over the merged window aggregate.
        self.alert_specs: list[Any] = []
        #: refutation-sweep verdicts published into this scope (see
        #: :func:`register_assumption_verdicts`); surfaced in the runner's
        #: manifest ``analysis`` block.
        self.assumption_verdicts: list[dict[str, Any]] = []

    # -- windowed observations ----------------------------------------------

    def _pending_stats(self) -> WindowedStats:
        if self._pending is None:
            spec = self.window_spec or WindowSpec()
            sink = (
                self.stream.sink(len(self.records))
                if self.stream is not None
                else None
            )
            self._pending = WindowedStats(spec, on_evict=sink)
        return self._pending

    def observe(self, stream: str, value: int, at: int) -> None:
        """Record one latency/histogram sample for ``stream`` at simulated
        time ``at`` (cycles). Windows older than the retention are evicted
        as they age out — memory stays bounded no matter how many samples
        a run produces."""
        stats = self._pending
        if stats is None:
            stats = self._pending_stats()
        stats.observe(stream, value, at)

    def count_window(self, name: str, n: float = 1, *, at: int) -> None:
        """Add ``n`` to the windowed counter ``name`` at sim time ``at``."""
        stats = self._pending
        if stats is None:
            stats = self._pending_stats()
        stats.count(name, n, at=at)

    def observe_batch(
        self,
        stream: str,
        samples: list[tuple[int, int]],
        *,
        counter: str | None = None,
    ) -> None:
        """Record a batch of ``(value, at)`` latency samples (and optionally
        one count of ``counter`` per sample); see
        :meth:`repro.obs.windows.WindowedStats.observe_batch`."""
        stats = self._pending
        if stats is None:
            stats = self._pending_stats()
        stats.observe_batch(stream, samples, counter=counter)

    def _aggregate(self, like: WindowedStats | None = None) -> WindowedStats:
        if self.windows is None:
            # A collector without an explicit spec adopts the spec of the
            # first stats it aggregates, so adopting records windowed
            # elsewhere (a fabric worker, a pooled experiment) merges
            # exactly instead of tripping a spec mismatch.
            spec = self.window_spec or (like.spec if like else WindowSpec())
            self.windows = WindowedStats(spec)
        return self.windows

    def _finish_pending(self) -> WindowedStats | None:
        """Detach the in-flight run's stats: flush retained windows to the
        stream (evicted ones already streamed live via the sink), fold into
        the scope aggregate, and return them for the run record."""
        pending, self._pending = self._pending, None
        if pending is None:
            return None
        if self.stream is not None:
            run = len(self.records)
            for index in sorted(pending.windows):
                self.stream.write_window(
                    pending.windows[index], run=run, source="flush"
                )
            if not pending.late.is_empty():
                # Out-of-order observations whose windows were already
                # streamed; exported as one aggregate so stream totals
                # still reconcile exactly.
                self.stream.write_window(
                    pending.late, run=run, source="late"
                )
        pending.detach_sink()
        self._aggregate(pending).merge(pending)
        return pending

    def _adopt_windows(self, record: EngineRunRecord, index: int) -> None:
        """Fold an adopted record's windows into the aggregate, exporting
        them if this collector streams and nobody exported them before.
        Per-window detail evicted before the record reached us lives only
        in its ``spilled`` aggregate — exported as an index ``-1`` window
        so stream totals still reconcile exactly."""
        stats = getattr(record, "windows", None)
        if stats is None:
            return
        if self.stream is not None and not record.windows_streamed:
            for widx in sorted(stats.windows):
                self.stream.write_window(
                    stats.windows[widx], run=index, source="flush"
                )
            if not stats.spilled.is_empty():
                self.stream.write_window(
                    stats.spilled, run=index, source="spilled"
                )
            if not stats.late.is_empty():
                self.stream.write_window(
                    stats.late, run=index, source="late"
                )
            record.windows_streamed = True
        self._aggregate(stats).merge(stats)

    def windows_summary(self) -> dict[str, Any] | None:
        """The manifest's ``windows`` block: exact per-stream percentiles,
        windowed counter totals and memory-bound evidence across every run
        in this scope (None when no run made windowed observations)."""
        if self.windows is None or self.windows.is_empty():
            return None
        return self.windows.summary()

    def alerts_summary(self) -> dict[str, Any] | None:
        """The manifest's ``alerts`` block: every registered SLO evaluated
        over this scope's merged windows (None without specs or windows).

        Evaluation happens on merged state, so the block is identical
        serial vs pooled — burn-rate inputs are order-invariant window
        merges (see :mod:`repro.obs.alerts`).
        """
        if not self.alert_specs or self.windows is None:
            return None
        from repro.obs.alerts import evaluate_all

        return evaluate_all(self.windows, self.alert_specs)

    # -- engine-facing ------------------------------------------------------

    def record_run(self, result: Any, wall_seconds: float, sim_events: int) -> None:
        """Called by the engine when a run completes inside this scope."""
        windows = self._finish_pending()
        counts: dict[str, int] = {}
        for thread in result.threads.values():
            for domain in (thread.events_user, thread.events_kernel):
                for event, n in domain.items():
                    counts[event.value] = counts.get(event.value, 0) + n
        self.records.append(
            EngineRunRecord(
                index=len(self.records),
                seed=result.config.seed,
                config_repr=repr(result.config),
                frequency=result.config.machine.frequency,
                wall_seconds=wall_seconds,
                sim_cycles=result.wall_cycles,
                sim_events=sim_events,
                context_switches=result.kernel.n_context_switches,
                pmis=result.kernel.n_pmis,
                syscalls=result.kernel.syscall_total(),
                metrics=dict(sorted(result.metrics.items())),
                trace=list(result.trace) if self.capture_traces else [],
                thread_names={tid: t.name for tid, t in result.threads.items()},
                counts=dict(sorted(counts.items())),
                windows=windows,
                windows_streamed=self.stream is not None,
                fingerprint=(
                    result.fingerprint()
                    if os.environ.get("REPRO_FP_RECORDS") == "1"
                    else ""
                ),
            )
        )

    def merge_records(
        self, records: list[EngineRunRecord], keep_traces: bool | None = None
    ) -> None:
        """Adopt records collected elsewhere (a fabric worker, a cache hit).

        Records are re-indexed to this collector's sequence and their
        metrics keys normalized to sorted order, so the merged state is
        identical whichever collector recorded a run first; traces are
        dropped unless this collector captures them (matching what
        :meth:`record_run` would have kept for an in-process run).
        Windowed stats merge exactly into this scope's aggregate — merges
        are order-invariant, so serial and pooled execution agree.
        """
        if keep_traces is None:
            keep_traces = self.capture_traces
        for r in records:
            index = len(self.records)
            adopted = replace(
                r,
                index=index,
                metrics=dict(sorted(r.metrics.items())),
                trace=list(r.trace) if keep_traces else [],
            )
            self._adopt_windows(adopted, index)
            self.records.append(adopted)

    # -- aggregates ---------------------------------------------------------

    @property
    def n_runs(self) -> int:
        return len(self.records)

    @property
    def sim_events(self) -> int:
        return sum(r.sim_events for r in self.records)

    @property
    def sim_cycles(self) -> int:
        return sum(r.sim_cycles for r in self.records)

    @property
    def context_switches(self) -> int:
        return sum(r.context_switches for r in self.records)

    @property
    def pmis(self) -> int:
        return sum(r.pmis for r in self.records)

    @property
    def syscalls(self) -> int:
        return sum(r.syscalls for r in self.records)

    @property
    def wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self.records)

    def _metric_total(self, key: str) -> float:
        """Sum one engine self-telemetry counter across every run (runs with
        metrics disabled contribute 0)."""
        return sum(r.metrics.get(key, 0) for r in self.records)

    def metrics_snapshot(self) -> dict[str, float]:
        """The manifest's metrics block: totals across every run, in
        deterministic (sorted) key order."""
        wall = self.wall_seconds
        snap = {
            "engine_runs": self.n_runs,
            "sim_events": self.sim_events,
            "sim_cycles": self.sim_cycles,
            "context_switches": self.context_switches,
            "pmis": self.pmis,
            "syscalls": self.syscalls,
            "wall_seconds": wall,
            "sim_events_per_sec": self.sim_events / wall if wall > 0 else 0.0,
        }
        snap.update(self.macro_summary())
        snap.update(self.compiled_summary())
        return dict(sorted(snap.items()))

    def macro_summary(self) -> dict[str, float]:
        """Engine fast-path telemetry totals: macro-stepping and composite
        PMC-read counters, plus the quantum-level hit rate (fraction of
        scheduler quanta that were batched by a macro step rather than
        executed piece by piece against a serviced timer tick)."""
        macro_steps = self._metric_total("macro_steps")
        quanta = self._metric_total("quanta_batched")
        # n_timer_ticks counts every expired quantum, batched or not, so the
        # hit rate is simply the batched share of all quanta.
        ticks = self._metric_total("timer_ticks")
        return {
            "macro_steps": macro_steps,
            "quanta_batched": quanta,
            "timer_ticks": ticks,
            "fast_reads": self._metric_total("fast_reads"),
            "fastpath_bailouts": self._metric_total("fastpath_bailouts"),
            "macro_hit_rate": quanta / ticks if ticks else 0.0,
        }

    def compiled_summary(self) -> dict[str, float]:
        """Compiled-tier telemetry totals (:mod:`repro.sim.compiled`): how
        many runs lowered segment tables, how many verified segments were
        batch-executed, and the op-level hit rate. The hit-rate denominator
        counts only ops fetched by runs that actually lowered tables —
        workloads that opt out of lowering (``compiled_lower = False``)
        should not dilute the rate of the runs the tier serves."""
        segments = self._metric_total("compiled_segments")
        ops = self._metric_total("compiled_ops")
        fetched_lowered = sum(
            r.metrics.get("ops_fetched", 0)
            for r in self.records
            if r.metrics.get("compiled_tables", 0) > 0
        )
        summary = {
            "compiled_runs": sum(
                1 for r in self.records
                if r.metrics.get("compiled_tables", 0) > 0
            ),
            "compiled_segments": segments,
            "compiled_ops": ops,
            "compiled_ops_fetched": fetched_lowered,
            "compiled_divergences": self._metric_total("compiled_divergences"),
            "compiled_resyncs": self._metric_total("compiled_resyncs"),
            "compiled_forks": self._metric_total("compiled_forks"),
            "compiled_lazy_tables": self._metric_total("compiled_lazy_tables"),
            "compiled_hit_rate": ops / fetched_lowered if fetched_lowered else 0.0,
        }
        # Per-reason bailout counters as flat keys (the runner's manifest
        # aggregation sums values key by key, so nested dicts would not
        # merge): compiled_bailout_window / _overflow / _pmi / _contended /
        # _fork_miss / _read, present only for reasons that occurred.
        for r in self.records:
            for key, value in r.metrics.items():
                if key.startswith("fastpath_bailout.compiled_"):
                    flat = "compiled_bailout_" + key[len("fastpath_bailout.compiled_"):]
                    summary[flat] = summary.get(flat, 0) + value
        return summary

    def fault_summary(self) -> dict[str, Any]:
        """Fault-injection totals across every run (the manifest's ``faults``
        block): injections by kind plus the detect/miss verdict counters —
        see :mod:`repro.faults.injector` for the semantics. All zero when no
        run had a fault plan."""
        by_kind: dict[str, float] = {}
        for r in self.records:
            for key, value in r.metrics.items():
                if key.startswith("faults.injected."):
                    kind = key[len("faults.injected."):]
                    by_kind[kind] = by_kind.get(kind, 0) + value
        return {
            "injected": self._metric_total("faults.injected"),
            "detected": self._metric_total("faults.detected"),
            "missed": self._metric_total("faults.missed"),
            "by_kind": dict(sorted(by_kind.items())),
        }

    def bailouts_by_reason(self) -> dict[str, float]:
        """Fast-path bailout totals keyed by reason (manifest detail)."""
        out: dict[str, float] = {}
        for r in self.records:
            for key, value in r.metrics.items():
                if key.startswith("fastpath_bailout."):
                    reason = key[len("fastpath_bailout."):]
                    out[reason] = out.get(reason, 0) + value
        return dict(sorted(out.items()))

    def counts_total(self) -> dict[str, int] | None:
        """Ground-truth event totals across every run in this scope, or
        None when no record carries counts (records adopted from an older
        cache entry predating the field)."""
        totals: dict[str, int] = {}
        seen = False
        for r in self.records:
            counts = getattr(r, "counts", None)
            if not counts:
                continue
            seen = True
            for name, n in counts.items():
                totals[name] = totals.get(name, 0) + n
        return dict(sorted(totals.items())) if seen else None

    def config_hash(self) -> str:
        """Stable digest of every distinct (seed, config) this scope ran —
        the manifest's reproducibility fingerprint."""
        digest = hashlib.sha256()
        for key in sorted({(r.seed, r.config_repr) for r in self.records}):
            digest.update(repr(key).encode())
        return digest.hexdigest()[:16]

    def perfetto_runs(self):
        """``runs`` input for :func:`repro.obs.export.write_perfetto`."""
        return [
            (
                f"{self.label or 'run'}[{r.index}] seed={r.seed}",
                r.trace,
                r.frequency,
                r.thread_names,
            )
            for r in self.records
            if r.trace
        ]

    def all_events(self) -> list[TraceEvent]:
        """Every captured event, run order preserved (for JSONL dumps)."""
        out: list[TraceEvent] = []
        for r in self.records:
            out.extend(r.trace)
        return out


_stack: list[RunCollector] = []


def current() -> RunCollector | None:
    """The innermost active collector, or None."""
    return _stack[-1] if _stack else None


def observe_latency(stream: str, value: int, at: int) -> None:
    """Record a latency sample on the innermost collector (no-op without
    one). Workloads call this with values derived from in-sim safe PMC
    reads; it is pure host-side bookkeeping and perturbs nothing. Called
    once per simulated request, so it reaches into the collector's
    pending stats directly instead of going through two method hops."""
    if _stack:
        collector = _stack[-1]
        stats = collector._pending
        if stats is None:
            stats = collector._pending_stats()
        stats.observe(stream, value, at)


def count_window(name: str, n: float = 1, *, at: int) -> None:
    """Bump a windowed counter on the innermost collector (no-op without
    one)."""
    if _stack:
        collector = _stack[-1]
        stats = collector._pending
        if stats is None:
            stats = collector._pending_stats()
        stats.count(name, n, at=at)


def observe_batch(
    stream: str,
    samples: list[tuple[int, int]],
    *,
    counter: str | None = None,
) -> None:
    """Record batched ``(value, at)`` latency samples on the innermost
    collector (no-op without one). Bit-identical to per-sample
    :func:`observe_latency`/:func:`count_window` calls in the same order;
    high-rate probes buffer locally and flush through this."""
    if _stack and samples:
        collector = _stack[-1]
        stats = collector._pending
        if stats is None:
            stats = collector._pending_stats()
        stats.observe_batch(stream, samples, counter=counter)


def register_alert_spec(spec: Any) -> bool:
    """Register an :class:`~repro.obs.alerts.SloSpec` with the innermost
    collector so its ``alerts_summary()`` (and the runner's manifest
    ``alerts`` block) covers it. Deduplicates by value; returns whether a
    collector was in scope to receive the spec."""
    if not _stack:
        return False
    collector = _stack[-1]
    if spec not in collector.alert_specs:
        collector.alert_specs.append(spec)
    return True


def register_assumption_verdicts(verdicts: list[dict[str, Any]]) -> bool:
    """Publish refutation-sweep verdicts (:meth:`repro.analysis.refute.
    Verdict.as_dict` payloads) to the innermost collector so the runner's
    manifest ``analysis`` block carries them. Deduplicates by value;
    returns whether a collector was in scope to receive them."""
    if not _stack:
        return False
    collector = _stack[-1]
    for verdict in verdicts:
        if verdict not in collector.assumption_verdicts:
            collector.assumption_verdicts.append(verdict)
    return True


@contextmanager
def collect(
    capture_traces: bool = False,
    label: str | None = None,
    window_spec: WindowSpec | None = None,
    stream: Any | None = None,
):
    """Collect every engine run completed within the block.

    ``window_spec`` shapes windowed observations made inside the scope;
    ``stream`` (a :class:`~repro.obs.export.JsonlStreamWriter`) exports
    windows incrementally as they are evicted or flushed.
    """
    collector = RunCollector(
        capture_traces=capture_traces,
        label=label,
        window_spec=window_spec,
        stream=stream,
    )
    _stack.append(collector)
    try:
        yield collector
    finally:
        _stack.pop()
