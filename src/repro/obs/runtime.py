"""Run collection: aggregate every engine run inside a scope.

The experiment runner, the workbench CLI and the benchmark harness all need
the same thing: "how much simulation happened while this block ran, how
fast, and (optionally) give me the traces". A :class:`RunCollector` pushed
with :func:`collect` receives a record from every :class:`~repro.sim.engine.
Engine` run that completes inside the ``with`` block, without the caller
having to thread anything through experiment code.

When ``capture_traces`` is set, engines created inside the scope turn
tracing on even if their config didn't ask for it — safe, because tracing
is zero-perturbation by contract (see tests/properties).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.units import Frequency
from repro.obs.trace import TraceEvent


@dataclass
class EngineRunRecord:
    """One engine run observed by a collector."""

    index: int
    seed: int
    config_repr: str
    frequency: Frequency
    wall_seconds: float
    sim_cycles: int
    sim_events: int
    context_switches: int
    pmis: int
    syscalls: int
    metrics: dict[str, float] = field(default_factory=dict)
    trace: list[TraceEvent] = field(default_factory=list)
    thread_names: dict[int, str] = field(default_factory=dict)


class RunCollector:
    """Aggregates engine runs; see module docstring."""

    def __init__(self, capture_traces: bool = False, label: str | None = None) -> None:
        self.capture_traces = capture_traces
        self.label = label
        self.records: list[EngineRunRecord] = []

    # -- engine-facing ------------------------------------------------------

    def record_run(self, result: Any, wall_seconds: float, sim_events: int) -> None:
        """Called by the engine when a run completes inside this scope."""
        self.records.append(
            EngineRunRecord(
                index=len(self.records),
                seed=result.config.seed,
                config_repr=repr(result.config),
                frequency=result.config.machine.frequency,
                wall_seconds=wall_seconds,
                sim_cycles=result.wall_cycles,
                sim_events=sim_events,
                context_switches=result.kernel.n_context_switches,
                pmis=result.kernel.n_pmis,
                syscalls=result.kernel.syscall_total(),
                metrics=dict(result.metrics),
                trace=list(result.trace) if self.capture_traces else [],
                thread_names={tid: t.name for tid, t in result.threads.items()},
            )
        )

    def merge_records(
        self, records: list[EngineRunRecord], keep_traces: bool | None = None
    ) -> None:
        """Adopt records collected elsewhere (a fabric worker, a cache hit).

        Records are re-indexed to this collector's sequence; traces are
        dropped unless this collector captures them (matching what
        :meth:`record_run` would have kept for an in-process run).
        """
        if keep_traces is None:
            keep_traces = self.capture_traces
        for r in records:
            self.records.append(
                replace(
                    r,
                    index=len(self.records),
                    trace=list(r.trace) if keep_traces else [],
                )
            )

    # -- aggregates ---------------------------------------------------------

    @property
    def n_runs(self) -> int:
        return len(self.records)

    @property
    def sim_events(self) -> int:
        return sum(r.sim_events for r in self.records)

    @property
    def sim_cycles(self) -> int:
        return sum(r.sim_cycles for r in self.records)

    @property
    def context_switches(self) -> int:
        return sum(r.context_switches for r in self.records)

    @property
    def pmis(self) -> int:
        return sum(r.pmis for r in self.records)

    @property
    def syscalls(self) -> int:
        return sum(r.syscalls for r in self.records)

    @property
    def wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self.records)

    def _metric_total(self, key: str) -> float:
        """Sum one engine self-telemetry counter across every run (runs with
        metrics disabled contribute 0)."""
        return sum(r.metrics.get(key, 0) for r in self.records)

    def metrics_snapshot(self) -> dict[str, float]:
        """The manifest's metrics block: totals across every run."""
        wall = self.wall_seconds
        snap = {
            "engine_runs": self.n_runs,
            "sim_events": self.sim_events,
            "sim_cycles": self.sim_cycles,
            "context_switches": self.context_switches,
            "pmis": self.pmis,
            "syscalls": self.syscalls,
            "wall_seconds": wall,
            "sim_events_per_sec": self.sim_events / wall if wall > 0 else 0.0,
        }
        snap.update(self.macro_summary())
        return snap

    def macro_summary(self) -> dict[str, float]:
        """Engine fast-path telemetry totals: macro-stepping and composite
        PMC-read counters, plus the quantum-level hit rate (fraction of
        scheduler quanta that were batched by a macro step rather than
        executed piece by piece against a serviced timer tick)."""
        macro_steps = self._metric_total("macro_steps")
        quanta = self._metric_total("quanta_batched")
        # n_timer_ticks counts every expired quantum, batched or not, so the
        # hit rate is simply the batched share of all quanta.
        ticks = self._metric_total("timer_ticks")
        return {
            "macro_steps": macro_steps,
            "quanta_batched": quanta,
            "fast_reads": self._metric_total("fast_reads"),
            "fastpath_bailouts": self._metric_total("fastpath_bailouts"),
            "macro_hit_rate": quanta / ticks if ticks else 0.0,
        }

    def fault_summary(self) -> dict[str, Any]:
        """Fault-injection totals across every run (the manifest's ``faults``
        block): injections by kind plus the detect/miss verdict counters —
        see :mod:`repro.faults.injector` for the semantics. All zero when no
        run had a fault plan."""
        by_kind: dict[str, float] = {}
        for r in self.records:
            for key, value in r.metrics.items():
                if key.startswith("faults.injected."):
                    kind = key[len("faults.injected."):]
                    by_kind[kind] = by_kind.get(kind, 0) + value
        return {
            "injected": self._metric_total("faults.injected"),
            "detected": self._metric_total("faults.detected"),
            "missed": self._metric_total("faults.missed"),
            "by_kind": dict(sorted(by_kind.items())),
        }

    def bailouts_by_reason(self) -> dict[str, float]:
        """Fast-path bailout totals keyed by reason (manifest detail)."""
        out: dict[str, float] = {}
        for r in self.records:
            for key, value in r.metrics.items():
                if key.startswith("fastpath_bailout."):
                    reason = key[len("fastpath_bailout."):]
                    out[reason] = out.get(reason, 0) + value
        return dict(sorted(out.items()))

    def config_hash(self) -> str:
        """Stable digest of every distinct (seed, config) this scope ran —
        the manifest's reproducibility fingerprint."""
        digest = hashlib.sha256()
        for key in sorted({(r.seed, r.config_repr) for r in self.records}):
            digest.update(repr(key).encode())
        return digest.hexdigest()[:16]

    def perfetto_runs(self):
        """``runs`` input for :func:`repro.obs.export.write_perfetto`."""
        return [
            (
                f"{self.label or 'run'}[{r.index}] seed={r.seed}",
                r.trace,
                r.frequency,
                r.thread_names,
            )
            for r in self.records
            if r.trace
        ]

    def all_events(self) -> list[TraceEvent]:
        """Every captured event, run order preserved (for JSONL dumps)."""
        out: list[TraceEvent] = []
        for r in self.records:
            out.extend(r.trace)
        return out


_stack: list[RunCollector] = []


def current() -> RunCollector | None:
    """The innermost active collector, or None."""
    return _stack[-1] if _stack else None


@contextmanager
def collect(capture_traces: bool = False, label: str | None = None):
    """Collect every engine run completed within the block."""
    collector = RunCollector(capture_traces=capture_traces, label=label)
    _stack.append(collector)
    try:
        yield collector
    finally:
        _stack.pop()
