"""The execution engine: deterministic multicore simulation.

The engine advances a set of cores through simulated time, executing thread
programs (op generators), charging cycle costs, accruing PMU events with
exact integer arithmetic, and invoking kernel mechanisms (scheduling,
futexes, counter virtualization, PMIs) at the right instants.

Determinism & causality
-----------------------
Each step advances exactly one core — always the one with the smallest local
clock (ties broken by core id) — by one bounded piece of work whose
externally visible effects commit at the piece's end. Because the acting
core's clock is globally minimal, effects are committed in nondecreasing
global time order, so cross-core interactions (futex wakes, lock handoffs)
are causally consistent and runs are exactly reproducible.

Compute pieces are additionally split at timeslice boundaries and at the
exact cycle a PMU counter will overflow, so PMIs are delivered with the
configured skid rather than at arbitrary op boundaries.

Macro-stepping
--------------
When a thread is alone on its core inside a long preemptible compute phase,
the piece-by-piece loop degenerates to: run to the slice boundary, take a
timer tick, extend the slice, repeat. The macro-stepping fast path
(:meth:`Engine._try_macro_step`) recognises this and accrues many such
timeslices in one closed-form step — k whole quanta of user cycles plus k
batched timer ticks of kernel cycles — using the same exact integer event
arithmetic, and stopping the jump before the earliest cross-core
interaction or counter-overflow crossing so results are fingerprint
identical to the slow path. See docs/architecture.md ("Macro-stepping")
for the engage conditions and invariants.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import os
import time
from typing import Any, Callable, Generator

from repro.common.config import SimConfig
from repro.common.errors import (
    ConfigError,
    CounterError,
    SimulationError,
)
from repro.common.rng import RandomStream
from repro.faults import plan as fp
from repro.faults.injector import FaultInjector
from repro.obs import runtime as obs_runtime
from repro.obs import trace as tr
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBus
from repro.hw.events import (
    Domain,
    Event,
    EventRates,
    KERNEL_RATES,
    LIBRARY_RATES,
    N_EVENTS,
    SPIN_RATES,
    cycles_until_count,
    events_in,
)
from repro.hw.machine import Core, Machine
from repro.kernel.futex import FutexTable
from repro.kernel.locks import LockRegistry
from repro.kernel.perf import PerfFd, PerfSubsystem, SampleRecord
from repro.kernel.scheduler import Scheduler
from repro.kernel.vpmu import MuxState, SlotSpec, VirtualPmu
from repro.sim import ops
from repro.sim.compiled import (
    DEAD_AFTER,
    K_LACQ,
    K_LREL,
    K_RBEGIN,
    K_RDTSC,
    K_REND,
    K_SREAD,
    K_UREAD,
    K_WORK,
    LAZY_LOWER_CAP,
    MIN_BATCH,
    RESYNC_WINDOW,
    ProgramLowering,
    lower_program,
    lower_spawned,
    op_matches,
)
from repro.sim.program import ThreadContext, ThreadSpec
from repro.sim.results import (
    CoreResult,
    KernelCounters,
    RegionTruth,
    RunResult,
    ThreadResult,
)

#: Default cap on stored per-invocation region durations (see
#: SimConfig.region_log_budget).
REGION_LOG_BUDGET = 2_000_000


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


class _OpExec:
    """In-flight execution state of one op (a tiny phase state machine)."""

    __slots__ = (
        "op",
        "stage",
        "phase_cycles",
        "phase_consumed",
        "phase_rates",
        "phase_flat",
        "phase_domain",
        "phase_preemptible",
        "data",
        "adv",
    )

    def __init__(self, op: ops.Op) -> None:
        self.op = op
        self.stage = "start"
        # Advance handler, resolved once by _begin_op so multi-stage ops
        # skip the type->handler dispatch on every subsequent piece.
        self.adv = None
        self.phase_cycles = 0
        self.phase_consumed = 0
        self.phase_rates: EventRates = _EMPTY_RATES
        self.phase_flat = _EMPTY_FLAT
        self.phase_domain = Domain.USER
        self.phase_preemptible = True
        # Most ops never need scratch state; allocated on first use.
        self.data: dict[str, Any] | None = None

    def set_phase(
        self,
        cycles: int,
        rates: EventRates,
        domain: Domain,
        preemptible: bool,
    ) -> None:
        self.phase_cycles = cycles
        self.phase_consumed = 0
        self.phase_rates = rates
        # Flat (event, ppm, index) triples, precomputed by EventRates, so
        # per-chunk accounting never goes back through the Mapping interface.
        self.phase_flat = rates.flat
        self.phase_domain = domain
        self.phase_preemptible = preemptible

    @property
    def phase_done(self) -> bool:
        return self.phase_consumed >= self.phase_cycles


_EMPTY_RATES = EventRates()
_EMPTY_FLAT = _EMPTY_RATES.flat

#: Enum members in definition order, for folding flat tallies back to dicts.
_EVENT_MEMBERS = tuple(Event)

#: Memoized whole-window accrual recipes, shared across engines. Nearly
#: every accounted window is a whole small phase (0, cost] with a recurring
#: cost constant — every kernel path, every library-call op — so the
#: running-floor divisions for a (flat-rates, pmu-plan, window) triple are
#: computed once per process and replayed as flat (index, n) adds. Keys use
#: id(); each value pins the keyed objects so their ids cannot be recycled
#: while the entry is live. Bounded by clear-on-cap (plans are per-engine
#: objects, so long-lived processes would otherwise accumulate entries for
#: dead engines).
_RECIPE_CACHE: dict[tuple[int, int, int], tuple] = {}
_RECIPE_CACHE_CAP = 1 << 15

#: Keys observed exactly once. A recipe is only built (and its objects
#: pinned) on the second sighting of a key; one-shot windows — e.g. random
#: phase lengths drawn per request in open-loop workloads — take the generic
#: accrual path instead of thrashing the cache with entries that never get
#: replayed. Ids here are unpinned, so a recycled id can at worst promote a
#: fresh key one sighting early, which is harmless (the recipe built is for
#: the live objects).
_RECIPE_SEEN: set[tuple[int, int, int]] = set()


def _window_recipe(flat: tuple, plan: tuple, after: int) -> tuple:
    """Memoized accrual recipe for the whole window ``(0, after]``:
    ``(deltas, entries, flat, plan)`` with ``deltas`` the non-zero
    ``(Event.index, n)`` ground-truth adds for the phase rates and
    ``entries`` the non-zero ``(counter_index, counter, mask, n)`` adds for
    the PMU plan, both by the running-floor rule (``events_in(0, after)``).
    """
    key = (id(flat), id(plan), after)
    rec = _RECIPE_CACHE.get(key)
    if rec is None:
        deltas = tuple(
            (idx, (after * ppm) // 1_000_000)
            for _event, ppm, idx in flat
            if (after * ppm) // 1_000_000
        )
        entries = tuple(
            (index, ctr, mask, (after * ppm) // 1_000_000)
            for index, ctr, ppm, mask in plan
            if (after * ppm) // 1_000_000
        )
        if len(_RECIPE_CACHE) >= _RECIPE_CACHE_CAP:
            _RECIPE_CACHE.clear()
        rec = _RECIPE_CACHE[key] = (deltas, entries, flat, plan)
    return rec


def accrue_rate_events(
    flat: tuple,
    before: int,
    after: int,
    ev: list[int],
    rev: list[int] | None = None,
) -> None:
    """Shared exact-accrual helper: apply the running-floor event deltas of
    one ``(before, after]`` phase-relative window to a flat tally array
    ``ev`` (indexed by ``Event.index``; optionally also an open region's
    tally array ``rev``).

    This is the single place the ``(after*ppm)//1e6 - (before*ppm)//1e6``
    ground-truth arithmetic lives for thread/region tallies; both the
    per-chunk slow path (:meth:`Engine._account`) and the macro-stepping
    fast path call it, so they cannot drift apart.
    """
    if rev is None:
        for _event, ppm, idx in flat:
            n = (after * ppm) // 1_000_000 - (before * ppm) // 1_000_000
            if n:
                ev[idx] += n
    else:
        for _event, ppm, idx in flat:
            n = (after * ppm) // 1_000_000 - (before * ppm) // 1_000_000
            if n:
                ev[idx] += n
                rev[idx] += n


def _tally_dict(arr: list[int]) -> dict[Event, int]:
    """Fold a flat tally array back into the result-facing Event dict."""
    return {e: arr[e.index] for e in _EVENT_MEMBERS if arr[e.index]}


class SimThread:
    """Engine-side state of one simulated thread."""

    __slots__ = (
        "tid",
        "name",
        "ctx",
        "gen",
        "state",
        "core_id",
        "available_at",
        "send_value",
        "throw_exc",
        "cur",
        "vpmu",
        "slot_saved",
        "slot_truth_base",
        "slot_reset_truth",
        "mux",
        "in_pmc_read",
        "pmc_read_interrupted",
        "read_restarts",
        "last_rdpmc_truth",
        "last_kernel_read_truth",
        "region_stack",
        "region_entries",
        "regions",
        "region_ev",
        "owned_locks",
        "profiler",
        "ev_user",
        "ev_kernel",
        "user_cycles",
        "kernel_cycles",
        "n_context_switches",
        "n_preemptions",
        "n_migrations",
        "n_cross_socket_migrations",
        "n_syscalls",
        "started_at",
        "finished_at",
        "block_key",
        "ctable",
        "cpos",
        "cmisses",
        "cskip",
        "cfork",
    )

    def __init__(self, tid: int, name: str, ctx: ThreadContext,
                 gen: Generator, n_slots: int) -> None:
        self.tid = tid
        self.name = name
        self.ctx = ctx
        self.gen = gen
        self.state = ThreadState.READY
        self.core_id: int | None = None
        self.available_at = 0
        self.send_value: Any = None
        self.throw_exc: BaseException | None = None
        self.cur: _OpExec | None = None
        self.vpmu = VirtualPmu(n_slots)
        self.slot_saved: list[int | None] = [None] * n_slots
        self.slot_truth_base: list[int] = [0] * n_slots
        self.slot_reset_truth: list[int] = [0] * n_slots
        self.mux: MuxState | None = None
        self.in_pmc_read = False
        self.pmc_read_interrupted = False
        self.read_restarts = 0
        self.last_rdpmc_truth: int | None = None
        self.last_kernel_read_truth: dict[int, int] = {}
        self.region_stack: list[str] = []
        self.region_entries: list[tuple[str, int, int]] = []
        self.regions: dict[str, RegionTruth] = {}
        #: per-region flat event tallies (folded into RegionTruth.events at
        #: collection time; arrays keep the accrual loops dict-free).
        self.region_ev: dict[str, list[int]] = {}
        self.owned_locks: set[str] = set()
        self.profiler = None
        self.ev_user: list[int] = [0] * N_EVENTS
        self.ev_kernel: list[int] = [0] * N_EVENTS
        self.user_cycles = 0
        self.kernel_cycles = 0
        self.n_context_switches = 0
        self.n_preemptions = 0
        self.n_migrations = 0
        self.n_cross_socket_migrations = 0
        self.n_syscalls = 0
        self.started_at = 0
        self.finished_at = 0
        self.block_key: tuple | None = None
        # -- compiled tier (repro.sim.compiled) -------------------------
        #: lowered segment table (None = interpret everything)
        self.ctable: Any = None
        self.cpos = 0          #: cursor into ctable's predicted op stream
        self.cmisses = 0       #: consecutive unmatched fetches
        self.cskip: Any = -1   #: slice end whose window already bailed
        #: pending (main, alt, alt_table) fork: the op just consumed was a
        #: two-valued fork point; resolved against send_value at next fetch
        self.cfork: Any = None

    @property
    def cpu_cycles(self) -> int:
        return self.user_cycles + self.kernel_cycles

    def slot_truth(self, spec: SlotSpec) -> int:
        """Ground-truth event count matching a slot's domain filter."""
        idx = spec.event.index
        total = 0
        if spec.count_user:
            total += self.ev_user[idx]
        if spec.count_kernel:
            total += self.ev_kernel[idx]
        return total

    def slot_truth_since_open(self, idx: int, spec: SlotSpec) -> int:
        """Ground truth relative to when the slot was programmed — what a
        counter that started at zero at open time should read now."""
        return self.slot_truth(spec) - self.slot_truth_base[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.tid} {self.name!r} {self.state.value}>"


#: A deferred syscall body, run at syscall-exit commit time with the
#: acting core and thread; returns ``(value, blocker)`` where a
#: non-None blocker parks the thread instead of completing the call.
_SysAction = Callable[[Core, SimThread], "tuple[Any, Any]"]


class Engine:
    """Runs one simulation to completion."""

    def __init__(self, config: SimConfig | None = None) -> None:
        self.config = config or SimConfig()
        self.machine = Machine(self.config.machine)
        self.scheduler = Scheduler(
            self.config.machine.n_cores,
            [c.socket_id for c in self.machine.cores],
        )
        self.futex = FutexTable()
        self.locks = LockRegistry()
        self.perf = PerfSubsystem()
        self.kernel_counters = KernelCounters()
        self.threads: dict[int, SimThread] = {}
        self.live_count = 0
        # Observability: an active collector may force tracing on (tracing
        # is zero-perturbation by contract, so results are unchanged).
        self._collector = obs_runtime.current()
        if (
            self._collector is not None
            and self._collector.capture_traces
            and not self.config.trace
        ):
            self.config = dataclasses.replace(self.config, trace=True)
        self._tracing = self.config.trace
        self.obs = TraceBus(enabled=self._tracing)
        self.trace = self.obs.events  # same list; legacy alias
        self.metrics = MetricsRegistry(enabled=self.config.metrics)
        self._n_steps = 0
        self._n_fused = 0  #: pieces chained inside _step (still sim events)
        self._acting_core: Core | None = None
        if self._tracing:
            self._wire_subsystem_tracers()
        self._next_tid = 1
        self._seq = 0
        self._sleep_heap: list[tuple[int, int, int]] = []
        self._join_waiters: dict[int, list[int]] = {}
        self._key_credits: dict[str, int] = {}
        self._region_log_budget = self.config.region_log_budget
        self._costs = self.config.machine.costs
        self._finished = False
        # -- fault injection (repro.faults) -----------------------------
        # None when no plan is configured, so every hook below reduces to a
        # single is-None branch on unfaulted runs.
        fault_plan = self.config.fault_plan
        self._faults = FaultInjector(fault_plan) if fault_plan else None
        # -- macro-stepping fast path state -----------------------------
        # config switch first, then the environment kill switch used by the
        # bench harness / property tests for A/B runs across process modes.
        self._macro = (
            self.config.macro_stepping
            and os.environ.get("REPRO_MACRO_STEPPING", "1") != "0"
        )
        self._macro_steps = 0
        self._quanta_batched = 0
        self._fast_reads = 0
        self._spin_batches = 0
        self._spin_rounds_batched = 0
        #: per-(spin plan, library plan) one-round accrual recipes for the
        #: contended-lock spin loop; values pin the plans (id-keyed).
        self._spin_recipes: dict[tuple[int, int], tuple] = {}
        self._bailouts: dict[str, int] = {}
        # -- compiled execution tier (repro.sim.compiled) ----------------
        # Same switch pattern as macro-stepping, plus hard disables: the
        # tier batches op commits, which is incompatible with per-op trace
        # emission order and with fault plans that match interior phases.
        self._compiled_on = (
            self.config.compiled_tier
            and os.environ.get("REPRO_COMPILED_TIER", "1") != "0"
            and not self._tracing
            and self._faults is None
        )
        self._lowering: ProgramLowering | None = None
        self._lower_wall = 0.0
        self._lower_wall_by_thread: dict[str, float] = {}
        self._compiled_segments = 0
        self._compiled_ops = 0
        self._compiled_divergences = 0
        self._compiled_resyncs = 0
        self._compiled_forks = 0
        self._compiled_lazy = 0
        self._ops_fetched = 0
        tick = self._costs.timer_tick
        # One timer tick's kernel ground-truth events: each tick is its own
        # phase starting at cycle 0, so k batched ticks accrue exactly
        # k * events_in(0, tick, ppm) per event (NOT events_in(0, k*tick)).
        self._tick_pairs = tuple(
            (event.index, events_in(0, tick, ppm))
            for event, ppm in KERNEL_RATES.items()
            if events_in(0, tick, ppm)
        )
        self._kernel_flat = KERNEL_RATES.flat
        # -- composite PMC-read fast path -------------------------------
        # Sub-phase cycle costs of the safe/unsafe read sequences, split at
        # the rdpmc: the accumulator/hardware values and slot-truth
        # bookkeeping must be taken with exactly the pre-rdpmc cycles
        # accrued, so the one-piece fast path applies part A, reads, then
        # applies part B. Each sub-phase accrues from its own cycle 0.
        c = self._costs
        self._safe_read_phases = (
            (c.pmc_call_overhead, c.pmc_read_begin, c.pmc_load_accum, c.rdpmc),
            (c.pmc_read_end, c.pmc_store_result),
        )
        self._unsafe_read_phases = (
            (c.pmc_call_overhead, c.pmc_load_accum, c.rdpmc),
            (c.pmc_store_result,),
        )
        #: combined whole-read accrual recipes keyed (id(plan), phases);
        #: each value pins its plan so the id cannot be recycled.
        self._read_recipes: dict[tuple, tuple] = {}
        # -- main-loop actor selection ----------------------------------
        # Multi-core runs keep a lazily-invalidated heap of (now, core_id);
        # single-core runs bypass it entirely.
        self._use_core_heap = self.config.machine.n_cores > 1
        self._core_heap: list[tuple[int, int]] = []
        #: earliest time any *other* actor (core or sleeper) can commit an
        #: effect; valid while the current core chain runs.
        self._horizon: int | None = None
        #: set by any event that may create an actor below the horizon
        #: (core unpark, sleep-heap push) to end the current chain.
        self._chain_break = False
        if self.config.kernel.limit_patch:
            self.machine.enable_user_rdpmc()
        self._syscalls: dict[str, Callable] = {
            "work": self._sys_work,
            "getpid": self._sys_getpid,
            "pmc_open": self._sys_pmc_open,
            "pmc_close": self._sys_pmc_close,
            "perf_open": self._sys_perf_open,
            "perf_read": self._sys_perf_read,
            "perf_close": self._sys_perf_close,
            "papi_read": self._sys_papi_read,
            "wait_key": self._sys_wait_key,
            "wake_key": self._sys_wake_key,
            "mux_open": self._sys_mux_open,
            "mux_read": self._sys_mux_read,
            "mux_close": self._sys_mux_close,
        }

    # ------------------------------------------------------------------
    # observability wiring
    # ------------------------------------------------------------------

    def _wire_subsystem_tracers(self) -> None:
        """Hook the kernel/hw subsystems into the trace bus. Only installed
        when tracing is on, so disabled runs pay nothing here."""
        emit = self.obs.emit
        cores = self.machine.cores

        def on_steal(thief: int, victim: int, tid: int) -> None:
            emit(cores[thief].now, thief, tid, tr.SCHED_STEAL, victim)

        def on_wait(key: str, tid: int) -> None:
            core = self._acting_core
            emit(core.now, core.core_id, tid, tr.FUTEX_WAIT, key)

        def on_wake(key: str, woken: list[int]) -> None:
            core = self._acting_core
            waker = core.current_tid if core.current_tid is not None else 0
            emit(core.now, core.core_id, waker, tr.FUTEX_WAKE, (key, len(woken)))

        def on_sample(fd: PerfFd, record: SampleRecord) -> None:
            core_id = self.threads[record.tid].core_id
            emit(record.time, core_id if core_id is not None else 0,
                 record.tid, tr.SAMPLE, fd.fd)

        self.scheduler.on_steal = on_steal
        self.futex.on_wait = on_wait
        self.futex.on_wake = on_wake
        self.perf.on_sample = on_sample
        for core in cores:
            def on_overflow(index: int, core: Core = core) -> None:
                tid = core.current_tid if core.current_tid is not None else 0
                emit(core.now, core.core_id, tid, tr.CTR_OVERFLOW, index)

            core.pmu.on_overflow = on_overflow

    def _record_metrics(self, run_wall: float, collect_wall: float,
                        result: RunResult) -> None:
        """Fill the self-telemetry registry from totals the run kept anyway
        (one pass per run, nothing per simulated event)."""
        reg = self.metrics
        k = self.kernel_counters
        reg.counter("sim_events").add(self._n_steps)
        reg.counter("context_switches").add(k.n_context_switches)
        reg.counter("preemptions").add(
            sum(t.n_preemptions for t in self.threads.values())
        )
        reg.counter("pmis").add(k.n_pmis)
        reg.counter("counter_overflows").add(k.n_counter_overflows)
        reg.counter("timer_ticks").add(k.n_timer_ticks)
        reg.counter("syscalls").add(k.syscall_total())
        reg.counter("futex_waits").add(k.n_futex_waits)
        reg.counter("futex_wakes").add(k.n_futex_wakes)
        reg.counter("samples").add(k.n_samples)
        reg.counter("steals").add(k.n_steals)
        reg.counter("read_restarts").add(
            sum(t.read_restarts for t in self.threads.values())
        )
        reg.counter("threads").add(len(self.threads))
        reg.counter("trace_events").add(len(self.obs.events))
        reg.counter("macro_steps").add(self._macro_steps)
        reg.counter("quanta_batched").add(self._quanta_batched)
        reg.counter("fast_reads").add(self._fast_reads)
        reg.counter("spin_batches").add(self._spin_batches)
        reg.counter("spin_rounds_batched").add(self._spin_rounds_batched)
        reg.counter("fastpath_bailouts").add(sum(self._bailouts.values()))
        for reason in sorted(self._bailouts):
            reg.counter("fastpath_bailout." + reason).add(
                self._bailouts[reason]
            )
        reg.counter("ops_fetched").add(self._ops_fetched)
        if self._lowering is not None:
            reg.counter("compiled_tables").add(
                len(self._lowering.tables) + self._compiled_lazy
            )
            reg.counter("compiled_segments").add(self._compiled_segments)
            reg.counter("compiled_ops").add(self._compiled_ops)
            reg.counter("compiled_divergences").add(self._compiled_divergences)
            reg.counter("compiled_resyncs").add(self._compiled_resyncs)
            reg.counter("compiled_forks").add(self._compiled_forks)
            reg.counter("compiled_lazy_tables").add(self._compiled_lazy)
            reg.timer("wall.lowering").add(self._lower_wall)
            # Per-thread lowering walls: eager table builds attributed by
            # the lowering pass, plus any lazy clone-time lowers this run
            # paid mid-flight (the cost the compiled_lazy_tables counter
            # would otherwise hide inside wall.lowering's total).
            for tname in sorted(self._lower_wall_by_thread):
                reg.timer("wall.lowering." + tname).add(
                    self._lower_wall_by_thread[tname]
                )
        if self._faults is not None:
            f = self._faults
            # Service faults the workload never resolved become misses now,
            # before the ledger counters freeze into the run's metrics.
            f.flush_service_pending()
            reg.counter("faults.injected").add(f.total_injected)
            for kind in sorted(f.injected):
                reg.counter("faults.injected." + kind).add(f.injected[kind])
            reg.counter("faults.detected").add(f.detected)
            reg.counter("faults.missed").add(f.missed)
        reg.gauge("sim_cycles").set(result.wall_cycles)
        if run_wall > 0:
            reg.gauge("sim_events_per_sec").set(self._n_steps / run_wall)
            reg.gauge("sim_cycles_per_sec").set(result.wall_cycles / run_wall)
        reg.timer("wall.engine_run").add(run_wall)
        reg.timer("wall.collect").add(collect_wall)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        specs: list[ThreadSpec],
        lower: Callable[[], Any] | None = None,
    ) -> RunResult:
        """Execute the given threads to completion and return the results.

        ``lower`` optionally enables the compiled execution tier
        (:mod:`repro.sim.compiled`): a zero-argument callable returning a
        **fresh, equivalent** build of the same program (a spec list or an
        object with ``.build()``). It is invoked once to statically lower
        the program into segment tables; the run itself still executes
        ``specs``. It must construct new session/lock/queue objects —
        never return the live ``specs`` — because lowering drives the
        generators against stub contexts. Results are bit-identical with
        or without it (a wrong or stale build only lowers the batch hit
        rate, never correctness).
        """
        if self._finished:
            raise SimulationError("Engine instances are single-use")
        if not specs:
            raise ConfigError("need at least one thread spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate thread names: {names}")
        if lower is not None and self._compiled_on:
            t_low = time.perf_counter()
            self._lowering = lower_program(lower, self.config)
            self._lower_wall = time.perf_counter() - t_low
            walls = self._lowering.stats.get("wall_by_thread")
            if walls:
                self._lower_wall_by_thread.update(walls)
        for spec in specs:
            thread = self._create_thread(spec.factory, spec.name, at=0)
            self._make_ready(thread, at=0)
        t0 = time.perf_counter()
        self._main_loop()
        run_wall = time.perf_counter() - t0
        self._finished = True
        t1 = time.perf_counter()
        result = self._collect()
        collect_wall = time.perf_counter() - t1
        if self.metrics.enabled:
            self._record_metrics(run_wall, collect_wall, result)
            result.metrics = self.metrics.snapshot()
        if self._collector is not None:
            self._collector.record_run(
                result,
                wall_seconds=run_wall + collect_wall,
                sim_events=self._n_steps,
            )
        return result

    def thread(self, tid: int) -> SimThread:
        try:
            return self.threads[tid]
        except KeyError:
            raise SimulationError(f"no thread with tid {tid}") from None

    def thread_now(self, tid: int) -> int:
        """Best-known current time for a thread (ground-truth peek)."""
        thread = self.thread(tid)
        if thread.core_id is not None:
            return self.machine.cores[thread.core_id].now
        return thread.available_at

    def service_fault(self, tid: int, kind: str, tier: str):
        """Workload-level fault hook: does a service fault of ``kind``
        targeting ``tier`` fire for thread ``tid`` here?

        Service-chain workloads (repro.workloads.service) call this at
        their hook points — request service, downstream call, worker loop
        top — mirroring how the engine's own hook points consult the
        injector. The decision is deterministic (plan + simulated state
        only) and the firing opens a ledger entry the workload must close
        via :meth:`service_fault_resolved`. Returns the firing spec or
        ``None``.
        """
        faults = self._faults
        if faults is None:
            return None
        thread = self.thread(tid)
        if thread.core_id is None:
            return None
        core = self.machine.cores[thread.core_id]
        spec = faults.fire(kind, core, thread, point=tier)
        if spec is not None:
            self._fault_event(core, thread, kind, (tier, spec.arg))
        return spec

    def service_fault_resolved(
        self, tid: int, kind: str, absorbed: bool = True
    ) -> None:
        """Close one open service-fault ledger entry (detect vs miss)."""
        faults = self._faults
        if faults is None:
            return
        faults.resolve_service_fault(kind, absorbed)
        if absorbed and self._tracing:
            thread = self.thread(tid)
            if thread.core_id is not None:
                core = self.machine.cores[thread.core_id]
                self.obs.emit(
                    core.now, core.core_id, tid, tr.FAULT_DETECT, kind
                )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _main_loop(self) -> None:
        cores = self.machine.cores
        threads = self.threads
        sleep_heap = self._sleep_heap
        core_heap = self._core_heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        max_cycles = self.config.max_cycles
        step = self._step
        single = cores[0] if len(cores) == 1 else None
        n_steps = 0
        while self.live_count > 0:
            # -- pick the acting core: smallest (now, core_id) ------------
            # Due sleepers (wake time <= the would-be actor's clock) are
            # made ready first, exactly as the seed engine's rescan did.
            if single is not None:
                core = None if single.parked else single
                while sleep_heap and (
                    core is None or sleep_heap[0][0] <= core.now
                ):
                    wake_at, _, tid = heappop(sleep_heap)
                    self._make_ready(threads[tid], at=wake_at)
                    core = None if single.parked else single
                horizon = sleep_heap[0][0] if sleep_heap else None
            else:
                # The heap is lazily invalidated: an entry is stale when its
                # core has parked or moved on (clocks only advance, so a
                # stale entry never under-reports a core's time).
                core = None
                while True:
                    while core_heap:
                        t, cid = core_heap[0]
                        c = cores[cid]
                        if c.parked or c.now != t:
                            heappop(core_heap)
                        else:
                            break
                    if sleep_heap and (
                        not core_heap or sleep_heap[0][0] <= core_heap[0][0]
                    ):
                        wake_at, _, tid = heappop(sleep_heap)
                        self._make_ready(threads[tid], at=wake_at)
                        continue
                    if core_heap:
                        _, cid = heappop(core_heap)
                        core = cores[cid]
                    break
                horizon = None
                while core_heap:
                    t, cid = core_heap[0]
                    c = cores[cid]
                    if c.parked or c.now != t:
                        heappop(core_heap)
                    else:
                        horizon = t
                        break
                if sleep_heap and (
                    horizon is None or sleep_heap[0][0] < horizon
                ):
                    horizon = sleep_heap[0][0]
            if core is None:
                blocked = [
                    f"{t.name}({t.block_key})"
                    for t in threads.values()
                    if t.state is ThreadState.BLOCKED
                ]
                raise SimulationError(
                    f"deadlock: no runnable threads; blocked: {blocked}"
                )
            # -- run the chosen core until another actor could act --------
            # While core.now stays below every other actor's time the core
            # remains the global minimum, so re-running selection would pick
            # it again; chaining skips that. Any event that could create an
            # earlier actor (unpark, sleep-heap push) sets _chain_break.
            self._horizon = horizon
            self._chain_break = False
            while True:
                if core.now > max_cycles:
                    raise SimulationError(
                        f"simulation exceeded max_cycles={max_cycles}"
                    )
                n_steps += 1
                step(core)
                if core.parked or self._chain_break or self.live_count == 0:
                    break
                if horizon is not None and core.now >= horizon:
                    break
            if single is None and not core.parked:
                heappush(core_heap, (core.now, core.core_id))
        # Chained pieces replace what were separate _step calls one-for-one,
        # so this total is bit-identical to the pre-fusion step count.
        self._n_steps = n_steps + self._n_fused

    def _step(self, core: Core) -> None:
        """Run one engine step of ``core``: service a due PMI or timer tick,
        or execute one piece of the current thread's op — fetch-and-begin,
        one phase chunk, or the op's advance. The piece execution is fused
        into this function (rather than delegated through per-piece helper
        calls) because it runs once per simulated micro-op and per-call
        overhead here dominates whole-sweep wall time.
        """
        if self._tracing:
            self._acting_core = core
        tid = core.current_tid
        if tid is None:
            self._dispatch(core)
            return
        thread = self.threads[tid]
        now = core.now
        if core.pmi_due_at is not None and now >= core.pmi_due_at:
            self._service_pmi(core, thread)
            return
        if core.slice_ends_at is not None and now >= core.slice_ends_at:
            self._timer_tick(core, thread)
            return
        ex = thread.cur
        while True:
            if ex is None:
                if thread.ctable is not None:
                    if not self._compiled_fetch(core, thread):
                        return
                    ex = thread.cur
                    if ex is None:
                        return  # a batch committed; next piece next step
                else:
                    if not self._fetch_next_op(core, thread):
                        return
                    ex = thread.cur
            consumed = ex.phase_consumed
            cycles = ex.phase_cycles
            if consumed < cycles:
                remaining = cycles - consumed
                pmu = core.pmu
                plan = (
                    pmu.accrual_plan(ex.phase_rates, ex.phase_domain)
                    if pmu.n_enabled
                    else ()
                )
                if ex.phase_preemptible:
                    # Macro-step candidate: a preemptible phase that outlives
                    # the current timeslice (i.e. the slow path would hit at
                    # least one timer tick before the phase ends).
                    if (
                        self._macro
                        and remaining > core.slice_ends_at - now
                        and self._try_macro_step(core, thread, ex)
                    ):
                        return
                    # limit only ever shrinks from `remaining`, so the final
                    # chunk is max(1, limit) — identical to
                    # max(1, min(remaining, limit)).
                    limit = remaining
                    bound = core.slice_ends_at
                    if bound is not None and bound - now < limit:
                        limit = bound - now
                    bound = core.pmi_due_at
                    if bound is not None and bound - now < limit:
                        limit = bound - now
                    # split at the first counter-overflow crossing (the inline
                    # form of Pmu.cycles_to_next_overflow on the resolved plan)
                    for _index, ctr, ppm, mask in plan:
                        d = cycles_until_count(consumed, ppm, mask + 1 - ctr.value)
                        if d is not None and d < limit:
                            limit = d
                    chunk = limit if limit > 0 else 1
                else:
                    chunk = remaining
                after = consumed + chunk
                self._account(
                    core, thread, ex.phase_domain, ex.phase_flat, plan,
                    consumed, after,
                )
                ex.phase_consumed = after
                if after < cycles:
                    return
            self._advance(core, thread, ex)
            # Chain straight into the thread's next piece — the following
            # stage of a multi-phase op, or the fetch of its next op — when
            # the main loop would deterministically re-pick this core
            # anyway: the checks below mirror its chain conditions and this
            # function's own preamble exactly, so the fetch/_account/
            # _advance sequence is identical to stepping one piece per call
            # and only the per-step dispatch overhead is elided. Each fused
            # piece is tallied so sim_events stays the dispatch-independent
            # piece count it was before fusion existed.
            if (
                self._tracing
                or core.current_tid != tid
                or core.parked
                or self._chain_break
                or self.live_count == 0
                or core.now > self.config.max_cycles
            ):
                return
            h = self._horizon
            now = core.now
            if h is not None and now >= h:
                return
            if core.pmi_due_at is not None and now >= core.pmi_due_at:
                return
            if core.slice_ends_at is not None and now >= core.slice_ends_at:
                return
            self._n_fused += 1
            ex = thread.cur

    # ------------------------------------------------------------------
    # thread lifecycle
    # ------------------------------------------------------------------

    def _create_thread(
        self,
        factory: Callable[[ThreadContext], Any],
        name: str,
        at: int,
    ) -> SimThread:
        tid = self._next_tid
        self._next_tid += 1
        rng = RandomStream(self.config.seed, "thread", name, tid)
        ctx = ThreadContext(name, tid, rng, self)
        gen = factory(ctx)
        if not hasattr(gen, "send"):
            raise ConfigError(
                f"program factory for thread {name!r} must return a "
                f"generator, got {type(gen).__name__}"
            )
        thread = SimThread(tid, name, ctx, gen, self.config.machine.pmu.n_counters)
        thread.started_at = at
        thread.available_at = at
        lowering = self._lowering
        if lowering is not None:
            # Attach by (name, tid): the walk assigned tids in its own
            # creation order, so a mid-run spawn whose tid disagrees gets a
            # *lazily lowered* table with the real tid instead — the eager
            # one would mispredict every seeded RandomStream draw (never a
            # wrong table either way: replay verifies each op).
            tbl = lowering.tables.get(name)
            if tbl is not None and tbl.tid == tid:
                thread.ctable = tbl
            elif (
                name in lowering.spawn_factories
                and self._compiled_lazy < LAZY_LOWER_CAP
            ):
                t_low = time.perf_counter()
                tbl = lower_spawned(lowering, name, tid, self.config)
                dt = time.perf_counter() - t_low
                self._lower_wall += dt
                self._lower_wall_by_thread[name] = (
                    self._lower_wall_by_thread.get(name, 0.0) + dt
                )
                if tbl is not None:
                    thread.ctable = tbl
                    self._compiled_lazy += 1
        self.threads[tid] = thread
        self.live_count += 1
        return thread

    def _make_ready(self, thread: SimThread, at: int) -> None:
        thread.state = ThreadState.READY
        thread.available_at = at
        thread.block_key = None
        idle = [
            c.core_id
            for c in self.machine.cores
            if (c.parked or c.current_tid is None)
            and self.scheduler.queue_length(c.core_id) == 0
        ]
        core_id = self.scheduler.place(thread.core_id, idle)
        self.scheduler.enqueue(thread.tid, core_id)
        core = self.machine.cores[core_id]
        if core.parked:
            core.parked = False
            if at > core.now:
                core.now = at
            if self._use_core_heap:
                heapq.heappush(self._core_heap, (core.now, core_id))
            # a new actor may now exist below the current chain's horizon
            self._chain_break = True
        if self._tracing:
            self.obs.emit(at, core_id, thread.tid, tr.READY, thread.name)

    def _finish_thread(self, core: Core, thread: SimThread) -> None:
        if thread.owned_locks:
            raise SimulationError(
                f"thread {thread.name!r} exited holding locks "
                f"{sorted(thread.owned_locks)}"
            )
        if thread.region_stack:
            raise SimulationError(
                f"thread {thread.name!r} exited with open regions "
                f"{thread.region_stack}"
            )
        self._switch_out(core, thread, requeue=False)
        thread.state = ThreadState.FINISHED
        thread.finished_at = core.now
        self.live_count -= 1
        for waiter in self._join_waiters.pop(thread.tid, []):
            self._make_ready(self.threads[waiter], at=core.now)
        if self._tracing:
            self.obs.emit(core.now, core.core_id, thread.tid, tr.EXIT, thread.name)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _dispatch(self, core: Core) -> None:
        tid = self.scheduler.pick_next(core.core_id)
        if tid is None:
            core.parked = True
            return
        self._switch_in(core, self.threads[tid])

    def _switch_in(self, core: Core, thread: SimThread) -> None:
        core.parked = False
        if thread.available_at > core.now:
            core.now = thread.available_at
        crossed_socket = False
        if thread.core_id is not None and thread.core_id != core.core_id:
            thread.n_migrations += 1
            old_socket = self.machine.cores[thread.core_id].socket_id
            crossed_socket = old_socket != core.socket_id
            if crossed_socket:
                thread.n_cross_socket_migrations += 1
        thread.core_id = core.core_id
        thread.state = ThreadState.RUNNING
        core.current_tid = thread.tid
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.SWITCH_IN, thread.name
            )
        # Restore the thread's counters FIRST, then charge the switch
        # path: the incoming thread's OS-domain counters must observe the
        # switch-in work, or virtualized kernel-cycle counts would drift
        # from truth by one switch path per reschedule.
        self._program_counters(core, thread)
        cost = self._costs.context_switch
        if crossed_socket:
            cost += self._costs.cross_socket_migration
        n_active = thread.vpmu.n_active()
        if n_active and not self.config.kernel.hw_thread_virtualization:
            cost += self._costs.ctx_restore_per_counter * n_active
        self._account_kernel(core, thread, cost)
        core.slice_ends_at = core.now + self.config.kernel.timeslice_cycles

    def _switch_out(
        self, core: Core, thread: SimThread, requeue: bool,
        preempted: bool = False, front: bool = False,
    ) -> None:
        faults = self._faults
        if faults is not None:
            spec = faults.fire(fp.DELAY_SWAP, core, thread)
            if spec is not None:
                # The save path stalls while the outgoing thread's counters
                # are still live: the extra kernel cycles land in both the
                # counters and the ground truth, so exactness must survive.
                delay = spec.arg if spec.arg else 600
                self._account_kernel(core, thread, delay)
                self._fault_event(core, thread, fp.DELAY_SWAP, delay)
        n_active = thread.vpmu.n_active()
        if n_active and not self.config.kernel.hw_thread_virtualization:
            self._account_kernel(
                core, thread, self._costs.ctx_save_per_counter * n_active
            )
        self._fold_counters(core, thread)
        if faults is not None:
            spec = faults.fire(fp.DUP_SWAP, core, thread)
            if spec is not None:
                # The whole save path runs a second time: duplicate the
                # per-counter cost and re-fold. Count-mode folds of the now
                # deprogrammed (zero-valued, no-latch) counters are no-ops —
                # the idempotence the virtualization design relies on.
                if n_active and not self.config.kernel.hw_thread_virtualization:
                    self._account_kernel(
                        core, thread,
                        self._costs.ctx_save_per_counter * n_active,
                    )
                self._fold_counters(core, thread)
                self._fault_event(core, thread, fp.DUP_SWAP, n_active)
        if thread.in_pmc_read:
            thread.pmc_read_interrupted = True
        thread.n_context_switches += 1
        if preempted:
            thread.n_preemptions += 1
        self.kernel_counters.n_context_switches += 1
        core.current_tid = None
        core.slice_ends_at = None
        core.pmi_due_at = None
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.SWITCH_OUT, thread.name
            )
        if requeue:
            thread.state = ThreadState.READY
            thread.available_at = core.now
            if front:
                self.scheduler.requeue_front(thread.tid, core.core_id)
            else:
                self.scheduler.enqueue(thread.tid, core.core_id)
            if self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid, tr.READY, thread.name
                )

    def _timer_tick(self, core: Core, thread: SimThread) -> None:
        if self._tracing:
            self.obs.emit(core.now, core.core_id, thread.tid, tr.TIMER_TICK)
        self.kernel_counters.n_timer_ticks += 1
        self._account_kernel(core, thread, self._costs.timer_tick)
        if self._faults is not None:
            spec = self._faults.fire(fp.SHRINK_COUNTER, core, thread)
            if spec is not None:
                self._shrink_counters(core, thread, spec.arg)
        if thread.mux is not None and len(thread.mux.specs) > 1:
            self._account_kernel(core, thread, 2 * self._costs.wrmsr)
            self._mux_rotate(core, thread)
        if self.scheduler.queue_length(core.core_id) > 0:
            self._switch_out(core, thread, requeue=True, preempted=True)
        else:
            core.slice_ends_at = core.now + self.config.kernel.timeslice_cycles

    def _block(self, core: Core, thread: SimThread, key: tuple) -> None:
        thread.state = ThreadState.BLOCKED
        thread.block_key = key
        self._switch_out(core, thread, requeue=False)

    # ------------------------------------------------------------------
    # counter virtualization (the LiMiT kernel patch)
    # ------------------------------------------------------------------

    def _program_counters(self, core: Core, thread: SimThread) -> None:
        pmu = core.pmu
        for idx in thread.vpmu.active_indices():
            spec = thread.vpmu.slots[idx]
            ctr = pmu.counter(idx)
            ctr.program(spec.event, spec.count_user, spec.count_kernel)
            if spec.mode == "count":
                ctr.write(0)
            else:
                saved = thread.slot_saved[idx]
                if saved is None:
                    saved = max(0, ctr.threshold - spec.period)
                ctr.write(saved)

    def _fold_counters(self, core: Core, thread: SimThread) -> None:
        pmu = core.pmu
        for idx in thread.vpmu.active_indices():
            ctr = pmu.counter(idx)
            if ctr.overflow_pending:
                self._apply_overflow(core, thread, idx)
            spec = thread.vpmu.slots[idx]
            if spec.mode == "count":
                thread.vpmu.fold(idx, ctr.read())
            else:
                thread.slot_saved[idx] = ctr.read()
            ctr.deprogram()

    def _apply_overflow(self, core: Core, thread: SimThread, idx: int) -> None:
        ctr = core.pmu.counter(idx)
        wraps = ctr.clear_overflow()
        if not wraps:
            return
        self.kernel_counters.n_counter_overflows += wraps
        if self._faults is not None:
            # Applying a latched overflow recovers any dropped PMIs on this
            # core: the wrap reached the accumulator after all (detected).
            n = self._faults.note_overflow_recovered(core.core_id)
            if n and self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid,
                    tr.FAULT_DETECT, fp.DROP_PMI,
                )
        spec = thread.vpmu.slots[idx]
        if spec is None:  # orphaned counter; nothing to attribute
            return
        if spec.mode == "count":
            thread.vpmu.vaccum[idx] += wraps * ctr.threshold
        else:
            fd = self.perf.fd_for_slot(thread.tid, idx)
            region = thread.region_stack[-1] if thread.region_stack else None
            if fd is not None and fd.enabled:
                record = SampleRecord(
                    time=core.now,
                    tid=thread.tid,
                    region=region,
                    event=spec.event,
                    fd=fd.fd,
                )
                self.perf.record_sample(fd, record)
                self.kernel_counters.n_samples += 1
            thread.vpmu.sample_counts[idx] += 1
            ctr.write(max(0, ctr.threshold - spec.period))

    def _service_pmi(self, core: Core, thread: SimThread) -> None:
        core.pmi_due_at = None
        pending = core.pmu.pending_overflow_indices()
        if not pending:
            return
        faults = self._faults
        if faults is not None:
            spec = faults.fire(fp.DROP_PMI, core, thread)
            if spec is not None:
                # The interrupt is lost before the handler runs: no cost, no
                # overflow application, no interruption flag. The hardware
                # latch survives, so the overflow is recovered at redelivery
                # (arg cycles) or at the next virtualization fold — and the
                # safe read's pending-overflow check still catches it.
                if spec.arg > 0:
                    core.pmi_due_at = core.now + spec.arg
                faults.note_dropped_pmi(core.core_id)
                self._fault_event(core, thread, fp.DROP_PMI, spec.arg)
                return
        n_samples = sum(
            1
            for idx in pending
            if thread.vpmu.slots[idx] is not None
            and thread.vpmu.slots[idx].mode == "sample"
        )
        cost = self._costs.pmi_handler + self._costs.pmi_sample_record * n_samples
        self.kernel_counters.n_pmis += 1
        self._account_kernel(core, thread, cost)
        # The handler itself may have pushed more counters over the edge
        # (kernel-domain counting); service everything pending now.
        for idx in core.pmu.pending_overflow_indices():
            self._apply_overflow(core, thread, idx)
        if thread.in_pmc_read:
            thread.pmc_read_interrupted = True
        if self._tracing:
            self.obs.emit(core.now, core.core_id, thread.tid, tr.PMI, tuple(pending))
        if faults is not None:
            spec = faults.fire(fp.REPEAT_PMI, core, thread)
            if spec is not None:
                # A spurious second interrupt right behind the real one: the
                # handler runs again (full dispatch cost, nothing pending to
                # apply) and mid-read it spuriously flags an interruption,
                # forcing a harmless restart.
                self.kernel_counters.n_pmis += 1
                self._account_kernel(core, thread, self._costs.pmi_handler)
                if thread.in_pmc_read:
                    thread.pmc_read_interrupted = True
                self._fault_event(core, thread, fp.REPEAT_PMI, tuple(pending))

    # ------------------------------------------------------------------
    # fault injection hooks (repro.faults)
    # ------------------------------------------------------------------

    def _fault_event(self, core: Core, thread: SimThread | None,
                     kind: str, detail: Any = None) -> None:
        """Trace one fired injection. Only the *recording* is gated on
        tracing — the decision already happened, so traced and untraced runs
        inject identically (the zero-perturbation contract)."""
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id,
                thread.tid if thread is not None else 0,
                tr.FAULT_INJECT, (kind, detail),
            )

    def _shrink_counters(self, core: Core, thread: SimThread, width: int) -> None:
        """Narrow every hardware counter on every core to ``width`` bits.

        The truncated high bits of each live value latch as overflow wraps,
        so counting slots recover them through the normal overflow path
        (``vaccum += wraps * new_threshold`` with the *new* threshold equals
        exactly the bits shifted out) and nothing is lost. Cached accrual
        plans embed the old mask, so every PMU's plan caches are flushed;
        sampling preloads saved under the old width are clamped.
        """
        mask = (1 << width) - 1
        # Per-engine read/spin recipes bake the old masks into their
        # entries (and are keyed by plan ids the flush is about to free).
        self._read_recipes.clear()
        self._spin_recipes.clear()
        for c in self.machine.cores:
            changed = False
            for ctr in c.pmu.counters:
                if ctr.width <= width:
                    continue
                ctr.width = width
                excess = ctr.value >> width
                if excess:
                    ctr.value &= mask
                    ctr.overflow_pending += excess
                    ctr.overflow_total += excess
                changed = True
            if not changed:
                continue
            c.pmu.flush_plans()
            if (
                c.current_tid is not None
                and c.pmu.pending_overflow_indices()
            ):
                running = self.threads[c.current_tid]
                self._arm_pmi(c, running)
        for t in self.threads.values():
            t.slot_saved = [
                (s & mask if s is not None else None) for s in t.slot_saved
            ]
        self._fault_event(core, thread, fp.SHRINK_COUNTER, width)

    def _arm_pmi(self, core: Core, thread: SimThread) -> None:
        """Schedule the PMI for a just-latched overflow after the configured
        skid; fault injection may amplify the skid or align the delivery to
        the end of the current timeslice."""
        skid = self._costs.pmi_skid
        faults = self._faults
        if faults is not None:
            spec = faults.fire(fp.AMPLIFY_SKID, core, thread)
            if spec is not None:
                if spec.arg == fp.ALIGN_SLICE:
                    if (
                        core.slice_ends_at is not None
                        and core.slice_ends_at > core.now
                    ):
                        skid = core.slice_ends_at - core.now
                else:
                    skid *= spec.arg
                self._fault_event(core, thread, fp.AMPLIFY_SKID, skid)
        due = core.now + skid
        if core.pmi_due_at is None or due < core.pmi_due_at:
            core.pmi_due_at = due

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _account(
        self,
        core: Core,
        thread: SimThread,
        domain: Domain,
        flat: tuple,
        plan: tuple,
        before: int,
        after: int,
    ) -> None:
        """Charge ``after - before`` cycles of a phase to the machine,
        thread, ground truth, active region and PMU counters.

        ``flat`` is the phase's (event, ppm, index) triples (``rates.flat``,
        resolved once per phase by :meth:`_OpExec.set_phase`); ``plan`` is
        the PMU accrual plan for (rates, domain), resolved by the caller —
        ``()`` when no counter is programmed.
        """
        chunk = after - before
        core.now += chunk
        core.busy_cycles += chunk
        user = domain is Domain.USER
        if user:
            core.user_cycles += chunk
            thread.user_cycles += chunk
            ev = thread.ev_user
        else:
            core.kernel_cycles += chunk
            thread.kernel_cycles += chunk
            ev = thread.ev_kernel
        ev[0] += chunk  # Event.CYCLES.index == 0
        region_stack = thread.region_stack
        rev = None
        if region_stack:
            name = region_stack[-1]
            if user:
                rev = thread.region_ev[name]
                rev[0] += chunk
            else:
                thread.regions[name].kernel_cycles += chunk
        if before == 0 and after <= 65536:
            key = (id(flat), id(plan), after)
            rec = _RECIPE_CACHE.get(key)
            if rec is None and key in _RECIPE_SEEN:
                rec = _window_recipe(flat, plan, after)
            if rec is not None:
                deltas = rec[0]
                if rev is None:
                    for idx, n in deltas:
                        ev[idx] += n
                else:
                    for idx, n in deltas:
                        ev[idx] += n
                        rev[idx] += n
                entries = rec[1]
                if entries:
                    overflowed = False
                    on_overflow = core.pmu.on_overflow
                    for index, ctr, mask, n in entries:
                        v = ctr.value + n
                        if v <= mask:
                            ctr.value = v
                        elif ctr.accrue(n):
                            overflowed = True
                            if on_overflow is not None:
                                on_overflow(index)
                    if overflowed:
                        self._arm_pmi(core, thread)
                return
            # First sighting: remember the key and take the generic path
            # below (identical arithmetic); the recipe is built only if the
            # same window recurs.
            if len(_RECIPE_SEEN) >= _RECIPE_CACHE_CAP:
                _RECIPE_SEEN.clear()
            _RECIPE_SEEN.add(key)
        if flat:
            accrue_rate_events(flat, before, after, ev, rev)
        if plan:
            overflowed = False
            on_overflow = core.pmu.on_overflow
            for index, ctr, ppm, mask in plan:
                n = (after * ppm) // 1_000_000 - (before * ppm) // 1_000_000
                if n:
                    v = ctr.value + n
                    if v <= mask:
                        ctr.value = v
                    elif ctr.accrue(n):
                        overflowed = True
                        if on_overflow is not None:
                            on_overflow(index)
            if overflowed:
                self._arm_pmi(core, thread)

    def _account_kernel(self, core: Core, thread: SimThread, cycles: int) -> None:
        """One-shot non-preemptible kernel phase."""
        if cycles:
            pmu = core.pmu
            plan = (
                pmu.accrual_plan(KERNEL_RATES, Domain.KERNEL)
                if pmu.n_enabled
                else ()
            )
            self._account(
                core, thread, Domain.KERNEL, self._kernel_flat, plan, 0, cycles,
            )

    # ------------------------------------------------------------------
    # op execution
    # ------------------------------------------------------------------

    def _fetch_next_op(self, core: Core, thread: SimThread) -> bool:
        try:
            if thread.throw_exc is not None:
                exc = thread.throw_exc
                thread.throw_exc = None
                op = thread.gen.throw(exc)
            else:
                op = thread.gen.send(thread.send_value)
        except StopIteration:
            self._finish_thread(core, thread)
            return False
        self._ops_fetched += 1
        thread.send_value = None
        thread.cur = self._begin_op(core, thread, op)
        return True

    def _bail(self, reason: str) -> bool:
        """Count a fast-path bailout; always False (for `return` chaining)."""
        self._bailouts[reason] = self._bailouts.get(reason, 0) + 1
        return False

    # ------------------------------------------------------------------
    # compiled execution tier (repro.sim.compiled)
    # ------------------------------------------------------------------

    def _compiled_fetch(self, core: Core, thread: SimThread) -> bool:
        """Fetch the thread's next op with its segment table consulted.

        Mirrors :meth:`_fetch_next_op`'s contract (False = the thread
        finished). When the fetched op matches its prediction at the head
        of a batchable segment and nothing can interleave, a whole span of
        ops is committed in bulk (``thread.cur`` stays None and the caller
        returns); otherwise the op is interpreted normally with the table
        cursor tracking — and, on divergence, resynchronising against —
        the real stream.
        """
        tbl = thread.ctable
        if thread.throw_exc is not None:
            # A thrown-in exception rewinds the generator through except/
            # finally blocks; predictions after this point are worthless.
            thread.ctable = None
            thread.cfork = None
            return self._fetch_next_op(core, thread)
        fk = thread.cfork
        if fk is not None:
            # The op just consumed was a two-valued fork point: resolve the
            # prediction stream against the value actually being sent back
            # in, BEFORE the end-of-table check (a fork at the last index
            # whose alternate fired must switch tables, not drop).
            thread.cfork = None
            sv = thread.send_value
            if sv == fk[0]:
                pass  # main continuation: the current table already has it
            elif sv == fk[1]:
                thread.ctable = tbl = fk[2]
                thread.cpos = 0
                thread.cmisses = 0
                self._compiled_forks += 1
            else:
                self._bail("compiled_fork_miss")
                thread.ctable = None
                return self._fetch_next_op(core, thread)
        i = thread.cpos
        if i >= tbl.n:
            thread.ctable = None
            return self._fetch_next_op(core, thread)
        try:
            op = thread.gen.send(thread.send_value)
        except StopIteration:
            self._finish_thread(core, thread)
            return False
        e = tbl.bhead[i]
        if e == 0:
            # Not a batch head: prediction accuracy is irrelevant here (a
            # batch re-verifies every op it replays), so skip the compare
            # and track position blindly; a head-position mismatch later
            # resynchronises against any accumulated drift.
            thread.cpos = i + 1
            if tbl.forks is not None and i in tbl.forks:
                thread.cfork = tbl.forks[i]
            self._ops_fetched += 1
            thread.send_value = None
            thread.cur = self._begin_op(core, thread, op)
            return True
        if op_matches(op, tbl.ops[i], tbl.kinds[i]):
            thread.cmisses = 0
            if thread.profiler is None and thread.cskip != core.slice_ends_at:
                # (cskip: once a window bail happens, every later head in
                # the same timeslice faces a strictly smaller window, so
                # retrying before the next tick only repeats the failure.)
                if core.pmi_due_at is not None:
                    self._bail("compiled_pmi")
                else:
                    done = self._compiled_batch(core, thread, tbl, i, e, op)
                    if done is not None:
                        return done
            thread.cpos = i + 1
        else:
            self._compiled_divergences += 1
            j = i + 1
            limit = j + RESYNC_WINDOW
            if limit > tbl.n:
                limit = tbl.n
            resync = -1
            while j < limit:
                if op_matches(op, tbl.ops[j], tbl.kinds[j]):
                    resync = j
                    break
                j += 1
            if resync >= 0:
                # The real stream skipped predicted ops: jump past them.
                self._compiled_resyncs += 1
                thread.cpos = resync + 1
                thread.cmisses = 0
                if tbl.forks is not None and resync in tbl.forks:
                    thread.cfork = tbl.forks[resync]
            else:
                # Unknown op (likely an insertion): hold position and let
                # the next fetch retry this prediction.
                thread.cmisses += 1
                if thread.cmisses >= DEAD_AFTER:
                    thread.ctable = None
        self._ops_fetched += 1
        thread.send_value = None
        thread.cur = self._begin_op(core, thread, op)
        return True

    def _compiled_batch(
        self, core: Core, thread: SimThread, tbl: Any, i: int, e: int,
        op0: ops.Op,
    ) -> bool | None:
        """Try to batch-execute predicted ops ``[i, e)`` (op ``i`` already
        fetched — ``op0`` — and verified). Returns True/False with
        :meth:`_fetch_next_op` semantics on success, or None when the
        exactness caps leave fewer than MIN_BATCH ops — the caller then
        interprets the already-fetched op.

        Exactness caps: every batched op must end strictly inside the
        current timeslice (so no timer tick, preemption or wakeup-driven
        reschedule could interleave anywhere inside the span), and no
        hardware counter may reach its overflow threshold (wraps arm PMIs,
        which need interpreted phase splitting). Batchable ops are
        thread-local, so the span may cross the main loop's actor horizon
        — other actors at earlier simulated times cannot observe or affect
        it — with two exceptions: a RegionEnd at or past the horizon would
        consume the *shared* region-log budget ahead of other threads'
        earlier region exits, and a lock acquire/release at or past it
        would mutate *shared* lock state another actor at an earlier
        simulated time could still contend for — the span stops before
        the first such op. PMC reads need no horizon cap (per-core PMU
        state; no cross-actor visibility).

        Lock pairs replay only while provably uncontended (lock free on
        acquire, owned with no sleepers on release); a contended lock
        hands the fetched op to the interpreter mid-batch
        (``compiled_contended``), whose spin/futex stage machine then runs
        verbatim. Whole PMC reads replay through the same
        :meth:`_try_fast_read` commit the interpreter's composite fast
        path uses — the batch caps above guarantee its slice/wrap/PMI
        prechecks cannot fire, so only live prechecks (rdpmc disabled,
        slot reconfigured, latched overflow) can bail
        (``compiled_read``).
        """
        now0 = core.now
        cyc = tbl.cyc
        base_c = cyc[i]
        limit = self.config.max_cycles + 1 - now0
        bound = core.slice_ends_at
        if bound is not None and bound - now0 < limit:
            limit = bound - now0
        budget = limit - 1
        if budget <= 0:
            thread.cskip = core.slice_ends_at
            self._bail("compiled_window")
            return None
        if cyc[e] - base_c > budget:
            lo, hi = i, e
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if cyc[mid] - base_c <= budget:
                    lo = mid
                else:
                    hi = mid
            e = lo
            if e - i < MIN_BATCH:
                thread.cskip = core.slice_ends_at
                self._bail("compiled_window")
                return None
        horizon = self._horizon
        if horizon is not None and now0 + (cyc[e] - base_c) >= horizon:
            hb = horizon - now0
            kinds_tab = tbl.kinds
            for j in range(i, e):
                k = kinds_tab[j]
                if k == K_REND:
                    if cyc[j] - base_c >= hb:
                        e = j
                        break
                elif k == K_LACQ or k == K_LREL:
                    # Lock state mutates at the POST-cas time.
                    if cyc[j + 1] - base_c >= hb:
                        e = j
                        break
            if e - i < MIN_BATCH:
                self._bail("compiled_window")
                return None
        pmu = core.pmu
        if pmu.n_enabled:
            cu = tbl.cu
            ck = tbl.ck
            eu = tbl.eu
            ek = tbl.ek
            for ctr in pmu.counters:
                if not ctr.enabled or ctr.event is None:
                    continue
                idx = ctr.event.index
                au = (cu if idx == 0 else eu.get(idx)) if ctr.count_user else None
                ak = (ck if idx == 0 else ek.get(idx)) if ctr.count_kernel else None
                if au is None and ak is None:
                    continue
                headroom = ctr.mask - ctr.value
                d = 0
                if au is not None:
                    d += au[e] - au[i]
                if ak is not None:
                    d += ak[e] - ak[i]
                if d > headroom:
                    lo, hi = i, e
                    while hi - lo > 1:
                        mid = (lo + hi) // 2
                        d = 0
                        if au is not None:
                            d += au[mid] - au[i]
                        if ak is not None:
                            d += ak[mid] - ak[i]
                        if d <= headroom:
                            lo = mid
                        else:
                            hi = mid
                    e = lo
            if e - i < MIN_BATCH:
                self._bail("compiled_overflow")
                return None
        # -- verified replay ------------------------------------------------
        # Per op: core.now is kept exact (generator code may call
        # ctx.now() between yields), send values are the interpreted ones
        # (None, or post-op time for Rdtsc), and region/syscall bookkeeping
        # side effects replay verbatim. All cycle/event/counter accrual is
        # committed in bulk from the prefix tables at the end.
        kinds = tbl.kinds
        ops_tab = tbl.ops
        cu = tbl.cu
        ck = tbl.ck
        send = thread.gen.send
        ktable = self.kernel_counters.n_syscalls
        u0 = thread.user_cycles
        k0 = thread.kernel_cycles
        flush = i
        i0 = i  # original batch start: segment/op counters span rebases
        j = i
        op = op0
        val: Any = None
        while True:
            kind = kinds[j]
            if kind == K_WORK:
                thread.n_syscalls += 1
                ktable["work"] = ktable.get("work", 0) + 1
                val = None
            elif kind == K_RDTSC:
                val = now0 + (cyc[j + 1] - base_c)
            elif kind == K_LACQ:
                lock = self.locks.get(op.lock)
                if lock.held:
                    return self._batch_interrupt(
                        core, thread, tbl, i0, i, j, flush, now0, u0, k0,
                        op, "compiled_contended",
                    )
                lock.take(
                    thread.tid,
                    now0 + (cyc[j + 1] - base_c),
                    waited=cyc[j + 1] - cyc[j],
                    contended=False,
                    slept=False,
                )
                thread.owned_locks.add(op.lock)
                val = None
            elif kind == K_LREL:
                lock = self.locks.get(op.lock)
                if lock.owner != thread.tid or lock.n_sleepers > 0:
                    # Owner mismatch: the interpreter raises the same
                    # LockProtocolError the batch would have to. Sleepers:
                    # the release must run futex-wake phases.
                    return self._batch_interrupt(
                        core, thread, tbl, i0, i, j, flush, now0, u0, k0,
                        op, "compiled_contended",
                    )
                lock.release(thread.tid, now0 + (cyc[j + 1] - base_c))
                thread.owned_locks.discard(op.lock)
                val = None
            elif kind == K_SREAD or kind == K_UREAD:
                # Commit [i, j) first so _try_fast_read sees exact state,
                # then replay the whole read through the interpreter's own
                # one-piece commit and rebase the span after it.
                self._commit_batch(core, thread, tbl, i, j, flush, now0, u0, k0)
                ex = _OpExec(op)
                phases = (
                    self._safe_read_phases
                    if kind == K_SREAD
                    else self._unsafe_read_phases
                )
                if not self._try_fast_read(core, thread, ex, phases):
                    return self._batch_interrupt(
                        core, thread, tbl, i0, j, j, j,
                        core.now, thread.user_cycles, thread.kernel_cycles,
                        op, "compiled_read",
                    )
                val = ex.data["value"]
                i = j + 1
                base_c = cyc[i]
                now0 = core.now
                u0 = thread.user_cycles
                k0 = thread.kernel_cycles
                flush = i
            elif kind == K_RBEGIN:
                self._batch_region_flush(thread, tbl, flush, j)
                flush = j
                name = ops_tab[j].name
                if name not in thread.regions:
                    thread.regions[name] = RegionTruth(name=name)
                    thread.region_ev[name] = [0] * N_EVENTS
                thread.region_stack.append(name)
                thread.region_entries.append(
                    (name, thread.user_cycles + thread.kernel_cycles, core.now)
                )
                val = None
            elif kind == K_REND:
                self._batch_region_flush(thread, tbl, flush, j)
                flush = j
                if not thread.region_stack:
                    raise SimulationError(
                        f"thread {thread.name!r}: RegionEnd with no open region"
                    )
                name = thread.region_stack.pop()
                _entry_name, cpu_snap, t0 = thread.region_entries.pop()
                rt = thread.regions[name]
                rt.invocations += 1
                if self._region_log_budget > 0:
                    rt.exec_cycles.append(
                        thread.user_cycles + thread.kernel_cycles - cpu_snap
                    )
                    rt.wall_cycles.append(core.now - t0)
                    self._region_log_budget -= 1
                val = None
            else:  # K_COMPUTE
                val = None
            j += 1
            if j == e:
                break
            # Resume point: the generator may observe core/thread clocks
            # between yields, so keep them as exact as per-chunk accounting
            # would (everything else commits in bulk at the end).
            core.now = now0 + (cyc[j] - base_c)
            thread.user_cycles = u0 + (cu[j] - cu[i])
            thread.kernel_cycles = k0 + (ck[j] - ck[i])
            try:
                op = send(val)
            except StopIteration:
                self._commit_batch(core, thread, tbl, i, j, flush, now0, u0, k0)
                self._compiled_segments += 1
                self._compiled_ops += j - i0
                self._ops_fetched += j - i0
                thread.cpos = j
                thread.ctable = None
                self._finish_thread(core, thread)
                return False
            if not op_matches(op, ops_tab[j], kinds[j]):
                # Mid-batch divergence: commit what ran, interpret the
                # fetched op from the committed state.
                self._commit_batch(core, thread, tbl, i, j, flush, now0, u0, k0)
                self._compiled_segments += 1
                self._compiled_ops += j - i0
                self._ops_fetched += j - i0 + 1
                self._compiled_divergences += 1
                thread.cmisses += 1
                if thread.cmisses >= DEAD_AFTER:
                    thread.ctable = None
                thread.cpos = j
                thread.send_value = None
                thread.cur = self._begin_op(core, thread, op)
                return True
        self._commit_batch(core, thread, tbl, i, e, flush, now0, u0, k0)
        self._compiled_segments += 1
        self._compiled_ops += e - i0
        self._ops_fetched += e - i0
        thread.cpos = e
        thread.send_value = val   # pending result for the next fetch
        thread.cur = None
        return True

    def _batch_interrupt(
        self, core: Core, thread: SimThread, tbl: Any, i0: int, i: int,
        j: int, flush: int, now0: int, u0: int, k0: int, op: ops.Op,
        reason: str,
    ) -> bool:
        """Commit batched ops ``[i, j)``, then hand the already-fetched op
        ``j`` — which matches its prediction but cannot be replayed
        in-batch (a contended lock, a read failing its live prechecks) —
        to the interpreter, counting ``reason``. The cursor advances past
        op ``j`` (it matched; only its execution is interpreted), unlike
        the divergence path which holds at ``j``."""
        self._commit_batch(core, thread, tbl, i, j, flush, now0, u0, k0)
        if j > i0:
            self._compiled_segments += 1
            self._compiled_ops += j - i0
        self._ops_fetched += j - i0 + 1
        self._bail(reason)
        thread.cpos = j + 1
        thread.send_value = None
        thread.cur = self._begin_op(core, thread, op)
        return True

    def _batch_region_flush(
        self, thread: SimThread, tbl: Any, a: int, b: int
    ) -> None:
        """Flush batched ops ``[a, b)``'s accrual into the open region, the
        way per-chunk accounting would have: user event deltas (and user
        cycles) into the top region's tally, kernel cycles into its
        kernel_cycles — kernel *events* never enter region tallies."""
        if a == b:
            return
        stack = thread.region_stack
        if not stack:
            return
        top = stack[-1]
        du = tbl.cu[b] - tbl.cu[a]
        rev = thread.region_ev[top]
        if du:
            rev[0] += du
        for idx, arr in tbl.eu.items():
            d = arr[b] - arr[a]
            if d:
                rev[idx] += d
        dk = tbl.ck[b] - tbl.ck[a]
        if dk:
            thread.regions[top].kernel_cycles += dk

    def _commit_batch(
        self,
        core: Core,
        thread: SimThread,
        tbl: Any,
        i: int,
        e: int,
        flush: int,
        now0: int,
        u0: int,
        k0: int,
    ) -> None:
        """Bulk-commit the accrual of batched ops ``[i, e)`` from the
        prefix tables: core clocks, thread/ground-truth tallies, the open
        region, and programmed PMU counters (pre-capped: no wraps)."""
        self._batch_region_flush(thread, tbl, flush, e)
        cyc = tbl.cyc
        total = cyc[e] - cyc[i]
        core.now = now0 + total
        core.busy_cycles += total
        cu = tbl.cu
        ck = tbl.ck
        du = cu[e] - cu[i]
        dk = ck[e] - ck[i]
        if du:
            core.user_cycles += du
            thread.ev_user[0] += du
        if dk:
            core.kernel_cycles += dk
            thread.ev_kernel[0] += dk
        thread.user_cycles = u0 + du
        thread.kernel_cycles = k0 + dk
        ev_user = thread.ev_user
        for idx, arr in tbl.eu.items():
            d = arr[e] - arr[i]
            if d:
                ev_user[idx] += d
        ev_kernel = thread.ev_kernel
        for idx, arr in tbl.ek.items():
            d = arr[e] - arr[i]
            if d:
                ev_kernel[idx] += d
        pmu = core.pmu
        if pmu.n_enabled:
            eu = tbl.eu
            ek = tbl.ek
            for ctr in pmu.counters:
                if not ctr.enabled or ctr.event is None:
                    continue
                idx = ctr.event.index
                d = 0
                if ctr.count_user:
                    arr = cu if idx == 0 else eu.get(idx)
                    if arr is not None:
                        d += arr[e] - arr[i]
                if ctr.count_kernel:
                    arr = ck if idx == 0 else ek.get(idx)
                    if arr is not None:
                        d += arr[e] - arr[i]
                if d:
                    ctr.value += d

    def _try_macro_step(
        self, core: Core, thread: SimThread, ex: _OpExec
    ) -> bool:
        """Fast-forward k whole timeslices of a solo compute phase in one
        closed-form step: k quanta of user cycles plus k batched timer
        ticks of kernel cycles, with all event/counter accrual done by the
        same exact integer arithmetic the slow path uses.

        Engages only when nothing can interleave: no runnable sibling on
        this core, no pending PMI, no rotating multiplex group, and the
        whole jump (a) starts every sub-step strictly before any other
        actor's time and (b) wraps no hardware counter (so no PMI can
        become due mid-window). Returns False (and counts the reason) when
        any condition fails, leaving the slow path to run unchanged.
        """
        faults = self._faults
        if faults is not None:
            if faults.tick_armed:
                # macro steps batch timer ticks without running _timer_tick,
                # where tick-triggered faults (shrink_counter) fire
                return self._bail("fault_tick_armed")
            if faults.fire(fp.FORCE_BAILOUT, core, thread, point="macro"):
                self._fault_event(core, thread, fp.FORCE_BAILOUT, "macro")
                return self._bail("fault_forced")
        if core.pmi_due_at is not None:
            return self._bail("pmi_due")
        if self.scheduler.queue_length(core.core_id) > 0:
            return self._bail("runqueue")
        mux = thread.mux
        if mux is not None and len(mux.specs) > 1:
            return self._bail("mux")
        if ex.phase_domain is not Domain.USER:  # pragma: no cover - defensive
            return self._bail("domain")
        now = core.now
        quantum = self.config.kernel.timeslice_cycles
        tick = self._costs.timer_tick
        stride = quantum + tick
        head = core.slice_ends_at - now
        consumed = ex.phase_consumed
        remaining = ex.phase_cycles - consumed
        # Largest k from the phase itself: the k-th quantum must still be
        # cut short by its tick, i.e. head + (k-1)*quantum < remaining
        # (at the boundary the slow path finishes the phase instead).
        k = (remaining - head - 1) // quantum + 1
        # Every batched sub-step must *start* strictly before the earliest
        # other actor (the k-th tick starts at t_end - tick); at a tie the
        # outer loop must arbitrate by core id / process wakeups first.
        horizon = self._horizon
        if horizon is not None:
            if now + head >= horizon:
                return self._bail("horizon")
            k_h = (horizon - now - head - 1) // stride + 1
            if k_h < k:
                k = k_h
        if k < 1:
            return self._bail("horizon")
        # Shrink k until no counter can wrap inside the window. Counter
        # fill is monotonic in k, so binary-search the largest safe k; if
        # even one slice would wrap, the slow path delivers that PMI.
        pmu = core.pmu
        if pmu.n_enabled:
            user_plan = pmu.accrual_plan(ex.phase_rates, Domain.USER)
            kernel_plan = pmu.accrual_plan(KERNEL_RATES, Domain.KERNEL)
        else:
            user_plan = kernel_plan = ()
        if user_plan or kernel_plan:
            caps: dict[int, list] = {}
            for index, ctr, ppm, _mask in user_plan:
                caps[index] = [ctr, ppm, 0]
            for index, ctr, ppm, _mask in kernel_plan:
                per_tick = events_in(0, tick, ppm)
                entry = caps.get(index)
                if entry is None:
                    caps[index] = [ctr, 0, per_tick]
                else:
                    entry[2] = per_tick
            base = {
                index: (consumed * entry[1]) // 1_000_000
                for index, entry in caps.items()
            }

            def fits(kk: int) -> bool:
                u_end = consumed + head + (kk - 1) * quantum
                for index, (ctr, ppm_u, per_tick) in caps.items():
                    n = kk * per_tick
                    if ppm_u:
                        n += (u_end * ppm_u) // 1_000_000 - base[index]
                    if ctr.value + n > ctr.mask:
                        return False
                return True

            if not fits(1):
                return self._bail("overflow")
            lo, hi = 1, k
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if fits(mid):
                    lo = mid
                else:
                    hi = mid - 1
            k = lo
        # ---- commit: the jump is safe; apply k slices in closed form ----
        user_cycles = head + (k - 1) * quantum
        kernel_cycles = k * tick
        t_end = now + user_cycles + kernel_cycles
        if self._tracing:
            # the slow path emits TIMER_TICK at each slice boundary, before
            # charging the tick; reproduce the identical event stream
            emit = self.obs.emit
            cid = core.core_id
            tid = thread.tid
            t = now + head
            for _ in range(k):
                emit(t, cid, tid, tr.TIMER_TICK)
                t += stride
        core.now = t_end
        core.busy_cycles += user_cycles + kernel_cycles
        core.user_cycles += user_cycles
        core.kernel_cycles += kernel_cycles
        thread.user_cycles += user_cycles
        thread.kernel_cycles += kernel_cycles
        ev_user = thread.ev_user
        ev_user[0] += user_cycles  # Event.CYCLES.index == 0
        ev_kernel = thread.ev_kernel
        ev_kernel[0] += kernel_cycles
        rev = None
        if thread.region_stack:
            name = thread.region_stack[-1]
            rev = thread.region_ev[name]
            rev[0] += user_cycles
            thread.regions[name].kernel_cycles += kernel_cycles
        u_end = consumed + user_cycles
        accrue_rate_events(ex.phase_flat, consumed, u_end, ev_user, rev)
        for idx, per_tick in self._tick_pairs:
            ev_kernel[idx] += k * per_tick
        # PMU counters: no wrap is possible by construction, so plain adds
        for _index, ctr, ppm, _mask in user_plan:
            n = (u_end * ppm) // 1_000_000 - (consumed * ppm) // 1_000_000
            if n:
                ctr.accrue(n)
        for _index, ctr, ppm, _mask in kernel_plan:
            n = k * events_in(0, tick, ppm)
            if n:
                ctr.accrue(n)
        ex.phase_consumed = u_end
        self.kernel_counters.n_timer_ticks += k
        core.slice_ends_at = t_end + quantum
        self._macro_steps += 1
        self._quanta_batched += k
        return True

    def _complete(self, thread: SimThread, value: Any) -> None:
        thread.send_value = value
        thread.cur = None

    def _throw(self, thread: SimThread, exc: BaseException) -> None:
        thread.throw_exc = exc
        thread.cur = None

    # -- op begin ----------------------------------------------------------
    # Op handling dispatches on type(op) through class-level tables built
    # after the class body (subclasses resolve through the MRO on first
    # sight and are memoized), replacing the seed's isinstance chains.

    def _begin_op(self, core: Core, thread: SimThread, op: ops.Op) -> _OpExec:
        fn = _BEGIN_DISPATCH.get(type(op))
        if fn is None:
            fn = _dispatch_resolve(
                _BEGIN_DISPATCH, op,
                f"thread {thread.name!r} yielded non-op {op!r}",
            )
        ex = _OpExec(op)
        ex.adv = _ADVANCE_DISPATCH.get(type(op))
        fn(self, core, thread, ex)
        return ex

    def _begin_compute(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op = ex.op
        ex.stage = "run"
        ex.set_phase(op.cycles, op.rates, Domain.USER, True)

    def _begin_rdtsc(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "run"
        ex.set_phase(self._costs.rdtsc, LIBRARY_RATES, Domain.USER, True)

    def _begin_rdpmc(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "run"
        ex.set_phase(self._costs.rdpmc, LIBRARY_RATES, Domain.USER, True)

    def _begin_rdpmc_destructive(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "run"
        ex.set_phase(
            self._costs.rdpmc_destructive, LIBRARY_RATES, Domain.USER, True
        )

    def _begin_pmc_read_begin(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "run"
        ex.set_phase(self._costs.pmc_read_begin, LIBRARY_RATES, Domain.USER, True)

    def _begin_pmc_read_end(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "run"
        ex.set_phase(self._costs.pmc_read_end, LIBRARY_RATES, Domain.USER, True)

    def _begin_load_vaccum(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "run"
        ex.set_phase(self._costs.pmc_load_accum, LIBRARY_RATES, Domain.USER, True)

    def _begin_pmc_safe_read(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        if self._try_fast_read(core, thread, ex, self._safe_read_phases):
            return
        ex.stage = "call"
        ex.set_phase(self._costs.pmc_call_overhead, LIBRARY_RATES, Domain.USER, True)

    def _begin_pmc_unsafe_read(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        if self._try_fast_read(core, thread, ex, self._unsafe_read_phases):
            return
        ex.stage = "call"
        ex.set_phase(self._costs.pmc_call_overhead, LIBRARY_RATES, Domain.USER, True)

    def _begin_region(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "run"
        hook = self._costs.instrument_hook if thread.profiler is not None else 0
        ex.set_phase(hook, LIBRARY_RATES, Domain.USER, True)

    def _begin_lock_acquire(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "cas"
        ex.data = {
            "t0": core.now,
            "spin_used": 0,
            "contended": False,
            "slept": False,
        }
        ex.set_phase(self._costs.cas, LIBRARY_RATES, Domain.USER, True)

    def _begin_lock_release(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "cas"
        ex.set_phase(self._costs.cas, LIBRARY_RATES, Domain.USER, True)

    def _begin_syscall_op(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op = ex.op
        handler = self._syscalls.get(op.name)
        if handler is None:
            raise SimulationError(f"unknown syscall {op.name!r}")
        ex.stage = "entry"
        ex.data = {"handler": handler}
        thread.n_syscalls += 1
        table = self.kernel_counters.n_syscalls
        table[op.name] = table.get(op.name, 0) + 1
        self._begin_syscall(core, thread, ex, op.name)

    def _begin_spawn(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "entry"
        thread.n_syscalls += 1
        table = self.kernel_counters.n_syscalls
        table["clone"] = table.get("clone", 0) + 1
        self._begin_syscall(core, thread, ex, "clone")

    def _begin_join(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "entry"
        thread.n_syscalls += 1
        self._begin_syscall(core, thread, ex, "join")

    def _begin_sleep(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "entry"
        thread.n_syscalls += 1
        self._begin_syscall(core, thread, ex, "sleep")

    def _begin_yield(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ex.stage = "entry"
        thread.n_syscalls += 1
        self._begin_syscall(core, thread, ex, "yield")

    def _begin_syscall(
        self, core: Core, thread: SimThread, ex: _OpExec, name: str
    ) -> None:
        """Common entry path of every syscall-class op: trace + entry phase."""
        data = ex.data
        if data is None:
            data = ex.data = {}
        data["sys_name"] = name
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.SYSCALL_ENTER, name
            )
        ex.set_phase(
            self._costs.syscall_entry, KERNEL_RATES, Domain.KERNEL, False
        )

    def _end_syscall(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        """Trace the kernel->user return of a syscall-class op."""
        if self._tracing:
            self.obs.emit(
                core.now,
                core.core_id,
                thread.tid,
                tr.SYSCALL_EXIT,
                ex.data.get("sys_name"),
            )

    # -- op advance ----------------------------------------------------------

    def _advance(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        fn = ex.adv
        if fn is None:  # pragma: no cover - _begin_op already rejects these
            fn = ex.adv = _dispatch_resolve(
                _ADVANCE_DISPATCH, ex.op, f"cannot advance op {ex.op!r}"
            )
        fn(self, core, thread, ex)

    def _adv_compute(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        self._complete(thread, None)

    def _adv_rdtsc(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        self._complete(thread, core.now)

    def _adv_pmc_read_begin(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        thread.in_pmc_read = True
        thread.pmc_read_interrupted = False
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.PMC_READ_BEGIN
            )
        self._complete(thread, None)

    def _adv_pmc_read_end(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        ok = (
            not thread.pmc_read_interrupted
            and not core.pmu.pending_overflow_indices()
        )
        thread.in_pmc_read = False
        thread.pmc_read_interrupted = False
        if not ok:
            thread.read_restarts += 1
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.PMC_READ_END, ok
            )
        self._complete(thread, ok)

    def _adv_load_vaccum(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        try:
            value = thread.vpmu.read_accumulator(ex.op.index)
        except CounterError as exc:
            self._throw(thread, exc)
        else:
            self._complete(thread, value)

    def _adv_rdpmc(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op = ex.op
        try:
            value = core.pmu.rdpmc(op.index, from_user=True)
        except CounterError as exc:
            self._throw(thread, exc)
            return
        if 0 <= op.index < len(thread.vpmu.slots):
            spec = thread.vpmu.slots[op.index]
            if spec is not None:
                thread.last_rdpmc_truth = thread.slot_truth_since_open(
                    op.index, spec
                )
        self._complete(thread, value)

    # -- composite PMC reads ------------------------------------------------
    # PmcSafeRead / PmcUnsafeRead run the whole LiMiT read protocol as one
    # op. Two execution paths, chosen per attempt by _try_fast_read:
    #
    # * fast path — when nothing can interrupt the window (no slice
    #   boundary, no due PMI, no counter wrap, not tracing), the entire
    #   sequence commits in one piece with precomputed accrual sums;
    # * stage machine — otherwise, the op steps through phases with exactly
    #   the piece boundaries of the historical op-by-op form (Compute /
    #   PmcReadBegin / LoadVAccum / Rdpmc / PmcReadEnd / Compute), so
    #   interrupted reads restart, fault and undercount identically.

    def _read_recipe(self, plan: tuple, phases: tuple) -> tuple:
        """Combined accrual recipe for a whole PMC read executed as one
        piece: per-part summed running-floor deltas (each sub-phase accrues
        from its own cycle 0, so part sums are sums of ``events_in(0, c)``)
        plus per-counter whole-read totals for the no-wrap precheck."""
        flat = LIBRARY_RATES.flat

        def combine(costs: tuple) -> tuple[tuple, dict[int, list]]:
            ev: dict[int, int] = {}
            ctr: dict[int, list] = {}
            for cyc in costs:
                for _event, ppm, idx in flat:
                    n = (cyc * ppm) // 1_000_000
                    if n:
                        ev[idx] = ev.get(idx, 0) + n
                for index, counter, ppm, _mask in plan:
                    n = (cyc * ppm) // 1_000_000
                    if n:
                        entry = ctr.get(index)
                        if entry is None:
                            ctr[index] = [counter, _mask, n]
                        else:
                            entry[2] += n
            return tuple(ev.items()), ctr

        d_a, ctr_a = combine(phases[0])
        d_b, ctr_b = combine(phases[1])
        e_a = tuple((c, m, n) for c, m, n in ctr_a.values())
        e_b = tuple((c, m, n) for c, m, n in ctr_b.values())
        for index, entry in ctr_b.items():
            got = ctr_a.get(index)
            if got is None:
                ctr_a[index] = entry
            else:
                got[2] += entry[2]
        totals = tuple((c, m, n) for c, m, n in ctr_a.values())
        rec = (
            d_a, e_a, sum(phases[0]),
            d_b, e_b, sum(phases[1]),
            totals, plan,
        )
        self._read_recipes[(id(plan), phases)] = rec
        return rec

    def _try_fast_read(
        self, core: Core, thread: SimThread, ex: _OpExec, phases: tuple
    ) -> bool:
        """Commit a whole PMC read in one piece if provably uninterruptible.

        All prechecks are side-effect free; any possible interleaving
        (slice boundary or due PMI inside the window, userspace-read fault,
        bad slot, latched or imminent counter overflow, tracing) bails to
        the stage machine, which reproduces the historical behaviour
        exactly. On success the committed state — tallies, counters,
        slot-truth bookkeeping, core clocks — is identical to running the
        uninterrupted stage sequence piece by piece.
        """
        # Fault hooks come BEFORE the tracing bail: whenever read-targeting
        # faults are armed, traced and untraced runs must take the same
        # stage-machine path, or injection decisions would diverge.
        faults = self._faults
        if faults is not None and faults.reads_armed:
            if faults.fire(fp.FORCE_BAILOUT, core, thread, point="fast_read"):
                self._fault_event(core, thread, fp.FORCE_BAILOUT, "fast_read")
            return self._bail("read_fault_armed")
        if self._tracing:
            return self._bail("read_tracing")
        if core.pmi_due_at is not None:
            return self._bail("read_pmi_due")
        pmu = core.pmu
        if not pmu.user_rdpmc_enabled:
            return self._bail("read_fault")
        index = ex.op.index
        vpmu = thread.vpmu
        slots = vpmu.slots
        counters = pmu.counters
        if not 0 <= index < len(slots) or index >= len(counters):
            return self._bail("read_bad_slot")
        spec = slots[index]
        if spec is None or not spec.user_readable:
            return self._bail("read_bad_slot")
        plan = (
            pmu.accrual_plan(LIBRARY_RATES, Domain.USER)
            if pmu.n_enabled
            else ()
        )
        rec = self._read_recipes.get((id(plan), phases))
        if rec is None:
            rec = self._read_recipe(plan, phases)
        d_a, e_a, cycles_a, d_b, e_b, cycles_b, totals, _plan = rec
        total = cycles_a + cycles_b
        bound = core.slice_ends_at
        if bound is not None and bound - core.now < total:
            return self._bail("read_slice")
        for counter in counters:
            if counter.overflow_pending:
                return self._bail("read_overflow_pending")
        for counter, mask, n in totals:
            if counter.value + n > mask:
                return self._bail("read_wrap")
        # Commit. Part A (call + [begin +] load + rdpmc phases) accrues
        # before the values and ground truth are captured, part B ([end +]
        # store) after — exactly where the stage boundaries fall.
        ev = thread.ev_user
        rev = None
        region_stack = thread.region_stack
        if region_stack:
            rev = thread.region_ev[region_stack[-1]]
            rev[0] += total
        ev[0] += cycles_a
        if rev is None:
            for idx, n in d_a:
                ev[idx] += n
        else:
            for idx, n in d_a:
                ev[idx] += n
                rev[idx] += n
        for counter, _mask, n in e_a:
            counter.value += n
        acc = vpmu.vaccum[index]
        hw = counters[index].value
        thread.last_rdpmc_truth = thread.slot_truth_since_open(index, spec)
        ev[0] += cycles_b
        if rev is None:
            for idx, n in d_b:
                ev[idx] += n
        else:
            for idx, n in d_b:
                ev[idx] += n
                rev[idx] += n
        for counter, _mask, n in e_b:
            counter.value += n
        core.now += total
        core.busy_cycles += total
        core.user_cycles += total
        thread.user_cycles += total
        ex.data = {"value": acc + hw}
        ex.stage = "done"
        self._fast_reads += 1
        return True

    def _adv_pmc_safe_read(
        self, core: Core, thread: SimThread, ex: _OpExec
    ) -> None:
        # ``stage`` names the phase that just finished; each transition
        # keeps the piece boundaries of the op-by-op protocol.
        stage = ex.stage
        costs = self._costs
        if stage == "rd":
            op = ex.op
            try:
                value = core.pmu.rdpmc(op.index, from_user=True)
            except CounterError as exc:
                self._throw(thread, exc)
                return
            if 0 <= op.index < len(thread.vpmu.slots):
                spec = thread.vpmu.slots[op.index]
                if spec is not None:
                    thread.last_rdpmc_truth = thread.slot_truth_since_open(
                        op.index, spec
                    )
            ex.data["hw"] = value
            ex.stage = "re"
            ex.set_phase(costs.pmc_read_end, LIBRARY_RATES, Domain.USER, True)
        elif stage == "re":
            faults = self._faults
            if faults is not None and not ex.data.get("fpc"):
                spec = faults.fire(
                    fp.PREEMPT_IN_READ, core, thread,
                    protocol="safe", point=fp.BEFORE_CHECK,
                )
                if spec is not None:
                    # Preempt exactly between the two halves of the restart
                    # check: the read-end cycles have been charged but the
                    # interruption flag has not been evaluated yet. The
                    # at-most-once guard ("fpc") keeps the re-entered
                    # advance below from re-firing after the resume.
                    ex.data["fpc"] = True
                    faults.note_read_hazard(thread.tid, "safe")
                    self._fault_event(
                        core, thread, fp.PREEMPT_IN_READ, fp.BEFORE_CHECK
                    )
                    self._switch_out(
                        core, thread, requeue=True, preempted=True, front=True
                    )
                    return
            ok = (
                not thread.pmc_read_interrupted
                and not core.pmu.pending_overflow_indices()
            )
            if faults is not None:
                faults.resolve_safe_check(thread.tid, ok)
            thread.in_pmc_read = False
            thread.pmc_read_interrupted = False
            if not ok:
                thread.read_restarts += 1
            if self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid, tr.PMC_READ_END, ok
                )
            if ok:
                ex.stage = "st"
                ex.set_phase(
                    costs.pmc_store_result, LIBRARY_RATES, Domain.USER, True
                )
                return
            restarts = ex.data["restarts"] + 1
            ex.data["restarts"] = restarts
            if restarts > ops.MAX_RESTARTS:
                self._throw(
                    thread,
                    RuntimeError(
                        f"LiMiT read of slot {ex.op.index} restarted "
                        f">{ops.MAX_RESTARTS} times"
                    ),
                )
                return
            ex.stage = "rb"
            ex.set_phase(costs.pmc_read_begin, LIBRARY_RATES, Domain.USER, True)
        elif stage == "rb":
            thread.in_pmc_read = True
            thread.pmc_read_interrupted = False
            if self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid, tr.PMC_READ_BEGIN
                )
            ex.stage = "va"
            ex.set_phase(costs.pmc_load_accum, LIBRARY_RATES, Domain.USER, True)
        elif stage == "va":
            try:
                acc = thread.vpmu.read_accumulator(ex.op.index)
            except CounterError as exc:
                self._throw(thread, exc)
                return
            ex.data["acc"] = acc
            ex.stage = "rd"
            ex.set_phase(costs.rdpmc, LIBRARY_RATES, Domain.USER, True)
            faults = self._faults
            if faults is not None:
                spec = faults.fire(
                    fp.PREEMPT_IN_READ, core, thread,
                    protocol="safe", point=fp.BETWEEN_LOADS,
                )
                if spec is not None:
                    # The classic hazard: accumulator loaded, rdpmc not yet
                    # executed. The forced switch folds the counter, so the
                    # two loads span epochs; the restart check must fire.
                    faults.note_read_hazard(thread.tid, "safe")
                    self._fault_event(
                        core, thread, fp.PREEMPT_IN_READ, fp.BETWEEN_LOADS
                    )
                    self._switch_out(
                        core, thread, requeue=True, preempted=True, front=True
                    )
        elif stage == "call":
            ex.data = {"restarts": 0}
            ex.stage = "rb"
            ex.set_phase(costs.pmc_read_begin, LIBRARY_RATES, Domain.USER, True)
        elif stage == "st":
            self._complete(thread, ex.data["acc"] + ex.data["hw"])
        elif stage == "done":
            self._complete(thread, ex.data["value"])
        else:  # pragma: no cover - stage machine is closed
            raise SimulationError(f"bad PmcSafeRead stage {stage!r}")

    def _adv_pmc_unsafe_read(
        self, core: Core, thread: SimThread, ex: _OpExec
    ) -> None:
        stage = ex.stage
        costs = self._costs
        if stage == "rd":
            op = ex.op
            try:
                value = core.pmu.rdpmc(op.index, from_user=True)
            except CounterError as exc:
                self._throw(thread, exc)
                return
            if 0 <= op.index < len(thread.vpmu.slots):
                spec = thread.vpmu.slots[op.index]
                if spec is not None:
                    thread.last_rdpmc_truth = thread.slot_truth_since_open(
                        op.index, spec
                    )
            ex.data["hw"] = value
            ex.stage = "st"
            ex.set_phase(
                costs.pmc_store_result, LIBRARY_RATES, Domain.USER, True
            )
        elif stage == "call":
            ex.stage = "va"
            ex.set_phase(costs.pmc_load_accum, LIBRARY_RATES, Domain.USER, True)
        elif stage == "va":
            try:
                acc = thread.vpmu.read_accumulator(ex.op.index)
            except CounterError as exc:
                self._throw(thread, exc)
                return
            ex.data = {"acc": acc}
            ex.stage = "rd"
            ex.set_phase(costs.rdpmc, LIBRARY_RATES, Domain.USER, True)
            faults = self._faults
            if faults is not None:
                spec = faults.fire(
                    fp.PREEMPT_IN_READ, core, thread,
                    protocol="unsafe", point=fp.BETWEEN_LOADS,
                )
                if spec is not None:
                    # No protection here: the switch folds the hardware value
                    # into the accumulator *after* this read captured it, so
                    # the sum silently undercounts — a miss by construction.
                    faults.note_read_hazard(thread.tid, "unsafe")
                    self._fault_event(
                        core, thread, fp.PREEMPT_IN_READ, fp.BETWEEN_LOADS
                    )
                    self._switch_out(
                        core, thread, requeue=True, preempted=True, front=True
                    )
        elif stage == "st":
            self._complete(thread, ex.data["acc"] + ex.data["hw"])
        elif stage == "done":
            self._complete(thread, ex.data["value"])
        else:  # pragma: no cover - stage machine is closed
            raise SimulationError(f"bad PmcUnsafeRead stage {stage!r}")

    def _adv_rdpmc_destructive(
        self, core: Core, thread: SimThread, ex: _OpExec
    ) -> None:
        op = ex.op
        pmu = core.pmu
        try:
            hw = pmu.rdpmc(op.index, from_user=True)
        except CounterError as exc:
            self._throw(thread, exc)
            return
        try:
            spec = thread.vpmu.spec(op.index)
        except CounterError as exc:
            self._throw(thread, exc)
            return
        ctr = pmu.counter(op.index)
        if ctr.overflow_pending:
            # the instruction folds pending overflow state atomically
            self._apply_overflow(core, thread, op.index)
            hw = ctr.read()
        value = thread.vpmu.vaccum[op.index] + hw
        thread.vpmu.vaccum[op.index] = 0
        ctr.write(0)
        truth = thread.slot_truth(spec)
        thread.last_rdpmc_truth = truth - thread.slot_reset_truth[op.index]
        thread.slot_reset_truth[op.index] = truth
        self._complete(thread, value)

    def _adv_region_begin(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op = ex.op
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.REGION_BEGIN, op.name
            )
        thread.region_stack.append(op.name)
        if op.name not in thread.regions:
            thread.regions[op.name] = RegionTruth(name=op.name)
            thread.region_ev[op.name] = [0] * N_EVENTS
        thread.region_entries.append((op.name, thread.cpu_cycles, core.now))
        if thread.profiler is not None:
            thread.profiler.on_enter(thread.tid, op.name, core.now)
        self._complete(thread, None)

    def _adv_region_end(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        if not thread.region_stack:
            raise SimulationError(
                f"thread {thread.name!r}: RegionEnd with no open region"
            )
        name = thread.region_stack.pop()
        entry_name, cpu_snap, t0 = thread.region_entries.pop()
        if entry_name != name:  # pragma: no cover - structurally impossible
            raise SimulationError("region stack corrupted")
        rt = thread.regions[name]
        rt.invocations += 1
        if self._region_log_budget > 0:
            rt.exec_cycles.append(thread.cpu_cycles - cpu_snap)
            rt.wall_cycles.append(core.now - t0)
            self._region_log_budget -= 1
        if thread.profiler is not None:
            thread.profiler.on_exit(thread.tid, name, core.now)
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.REGION_END, name
            )
        self._complete(thread, None)

    # -- locks ---------------------------------------------------------------

    def _spin_recipe(self, spin_plan: tuple, lib_plan: tuple) -> tuple:
        """Accrual recipe for one contended-lock spin round: a spin phase
        (``spin_quantum`` cycles of SPIN_RATES) followed by a CAS retry
        (``cas`` cycles of LIBRARY_RATES), both user phases accruing from
        their own cycle 0 — so a round's deltas are plain sums of
        ``events_in(0, c)`` and k rounds accrue exactly k times them."""
        costs = self._costs
        ev: dict[int, int] = {}
        ctr: dict[int, list] = {}
        for cyc, flat, plan in (
            (costs.spin_quantum, SPIN_RATES.flat, spin_plan),
            (costs.cas, LIBRARY_RATES.flat, lib_plan),
        ):
            for _event, ppm, idx in flat:
                n = (cyc * ppm) // 1_000_000
                if n:
                    ev[idx] = ev.get(idx, 0) + n
            for index, counter, ppm, _mask in plan:
                n = (cyc * ppm) // 1_000_000
                if n:
                    entry = ctr.get(index)
                    if entry is None:
                        ctr[index] = [counter, _mask, n]
                    else:
                        entry[2] += n
        rec = (
            tuple(ev.items()),
            tuple((counter, m, n) for counter, m, n in ctr.values()),
        )
        self._spin_recipes[(id(spin_plan), id(lib_plan))] = rec
        return rec

    def _try_spin_batch(self, core: Core, thread: SimThread, ex: _OpExec) -> bool:
        """Fast-forward k whole spin+CAS rounds of a contended lock acquire
        in one closed-form step.

        Called from the ``cas`` stage after the CAS has failed with spin
        budget remaining, i.e. the slow path is about to run round after
        round of 2-piece spin/CAS phases. The CAS outcome can only change
        when another actor releases the lock — impossible before
        ``self._horizon`` — or when this core reschedules, which (absent a
        due PMI) only happens at a timer tick, bounded by
        ``slice_ends_at``. Every round that both *runs* and *decides*
        strictly before those bounds is therefore a guaranteed failed CAS,
        and k of them accrue exactly k times one round's deltas (each phase
        restarts at phase-relative cycle 0). k is additionally capped so no
        hardware counter can wrap inside the window; the round that would
        wrap is left to the slow path, which raises the PMI mid-phase
        exactly as before. No trace events occur inside the loop, so the
        batch is valid under tracing too.
        """
        faults = self._faults
        if faults is not None and faults.fire(
            fp.FORCE_BAILOUT, core, thread, point="spin"
        ):
            self._fault_event(core, thread, fp.FORCE_BAILOUT, "spin")
            return self._bail("fault_forced")
        costs = self._costs
        spin_q = costs.spin_quantum
        round_cycles = spin_q + costs.cas
        if round_cycles <= 0:  # pragma: no cover - degenerate cost model
            return self._bail("spin_degenerate")
        spin_used = ex.data["spin_used"]
        budget = self.config.locks.spin_limit_cycles - spin_used
        k = -(-budget // spin_q)  # rounds until the budget is exhausted
        if core.pmi_due_at is not None:
            return self._bail("spin_pmi_due")
        now = core.now
        bound = core.slice_ends_at
        if bound is not None:
            k_s = (bound - now) // round_cycles
            if k_s < k:
                k = k_s
            if k < 1:
                return self._bail("spin_slice")
        horizon = self._horizon
        if horizon is not None:
            k_h = (horizon - now - 1) // round_cycles
            if k_h < k:
                k = k_h
            if k < 1:
                return self._bail("spin_horizon")
        pmu = core.pmu
        if pmu.n_enabled:
            spin_plan = pmu.accrual_plan(SPIN_RATES, Domain.USER)
            lib_plan = pmu.accrual_plan(LIBRARY_RATES, Domain.USER)
        else:
            spin_plan = lib_plan = ()
        rec = self._spin_recipes.get((id(spin_plan), id(lib_plan)))
        if rec is None:
            rec = self._spin_recipe(spin_plan, lib_plan)
        deltas, entries = rec
        for counter, mask, n in entries:
            k_w = (mask - counter.value) // n
            if k_w < k:
                k = k_w
        if k < 1:
            return self._bail("spin_wrap")
        # ---- commit: k failed rounds, then re-decide with the same checks
        # the slow path's k-th CAS advance would have made at this state ----
        window = k * round_cycles
        ex.data["spin_used"] = spin_used + k * spin_q
        ev = thread.ev_user
        ev[0] += window  # Event.CYCLES.index == 0
        rev = None
        if thread.region_stack:
            rev = thread.region_ev[thread.region_stack[-1]]
            rev[0] += window
        if rev is None:
            for idx, n in deltas:
                ev[idx] += k * n
        else:
            for idx, n in deltas:
                kn = k * n
                ev[idx] += kn
                rev[idx] += kn
        for counter, _mask, n in entries:
            counter.value += k * n  # no wrap by construction
        core.now += window
        core.busy_cycles += window
        core.user_cycles += window
        thread.user_cycles += window
        self._spin_batches += 1
        self._spin_rounds_batched += k
        if ex.data["spin_used"] < self.config.locks.spin_limit_cycles:
            ex.stage = "spin"
            ex.data["spin_used"] += spin_q
            ex.set_phase(spin_q, SPIN_RATES, Domain.USER, True)
        else:
            ex.stage = "fbody"
            self.kernel_counters.n_futex_waits += 1
            ex.set_phase(
                costs.syscall_entry + costs.futex_wait_kernel,
                KERNEL_RATES,
                Domain.KERNEL,
                False,
            )
        return True

    def _adv_lock_acquire(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.LockAcquire = ex.op
        costs = self._costs
        lock = self.locks.get(op.lock)
        stage = ex.stage
        if stage == "cas":
            if not lock.held:
                waited = core.now - ex.data["t0"]
                lock.take(
                    thread.tid,
                    core.now,
                    waited=waited,
                    contended=ex.data["contended"],
                    slept=ex.data["slept"],
                )
                thread.owned_locks.add(op.lock)
                if self._tracing:
                    self.obs.emit(
                        core.now, core.core_id, thread.tid, tr.LOCK_ACQ, op.lock
                    )
                self._complete(thread, None)
                return
            ex.data["contended"] = True
            if ex.data["spin_used"] < self.config.locks.spin_limit_cycles:
                if self._macro and self._try_spin_batch(core, thread, ex):
                    return
                ex.stage = "spin"
                ex.data["spin_used"] += costs.spin_quantum
                ex.set_phase(costs.spin_quantum, SPIN_RATES, Domain.USER, True)
                return
            ex.stage = "fbody"
            self.kernel_counters.n_futex_waits += 1
            ex.set_phase(
                costs.syscall_entry + costs.futex_wait_kernel,
                KERNEL_RATES,
                Domain.KERNEL,
                False,
            )
            return
        if stage == "spin":
            ex.stage = "cas"
            ex.set_phase(costs.cas, LIBRARY_RATES, Domain.USER, True)
            return
        if stage == "fbody":
            ex.stage = "fexit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            if lock.held:
                # genuinely sleep; retry CAS when woken
                self.futex.wait(op.lock, thread.tid)
                lock.n_sleepers += 1
                ex.data["slept"] = True
                self._block(core, thread, ("futex", op.lock))
            # else: lost the race with a release; fall through to fexit
            return
        if stage == "fexit":
            ex.stage = "cas"
            ex.data["spin_used"] = 0
            ex.set_phase(costs.cas, LIBRARY_RATES, Domain.USER, True)
            return
        raise SimulationError(f"bad LockAcquire stage {stage!r}")

    def _adv_lock_release(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.LockRelease = ex.op
        costs = self._costs
        stage = ex.stage
        if stage == "cas":
            lock = self.locks.get(op.lock)
            lock.release(thread.tid, core.now)
            thread.owned_locks.discard(op.lock)
            if self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid, tr.LOCK_REL, op.lock
                )
            if lock.n_sleepers > 0:
                ex.stage = "wbody"
                self.kernel_counters.n_futex_wakes += 1
                ex.set_phase(
                    costs.syscall_entry + costs.futex_wake_kernel,
                    KERNEL_RATES,
                    Domain.KERNEL,
                    False,
                )
                return
            self._complete(thread, None)
            return
        if stage == "wbody":
            lock = self.locks.get(op.lock)
            woken = self.futex.wake(op.lock, 1)
            lock.n_sleepers -= len(woken)
            for tid in woken:
                self._make_ready(self.threads[tid], at=core.now)
            ex.stage = "wexit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            return
        if stage == "wexit":
            self._complete(thread, None)
            return
        raise SimulationError(f"bad LockRelease stage {stage!r}")

    # -- syscalls ----------------------------------------------------------

    def _adv_syscall(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.Syscall = ex.op
        costs = self._costs
        if ex.stage == "entry":
            handler = ex.data["handler"]
            try:
                body_cycles, action = handler(core, thread, op.args)
            except Exception as exc:  # deliver as the syscall's "errno"
                ex.data["action"] = None
                ex.data["exc"] = exc
                ex.stage = "exit"
                ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
                return
            ex.data["action"] = action
            ex.stage = "body"
            ex.set_phase(body_cycles, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            action = ex.data.get("action")
            result: Any = None
            block: tuple | None = None
            if action is not None:
                try:
                    result, block = action(core, thread)
                except Exception as exc:
                    ex.data["exc"] = exc
                    block = None
            ex.data["result"] = result
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            if block is not None:
                kind, arg = block
                if kind == "sleep":
                    self._seq += 1
                    heapq.heappush(
                        self._sleep_heap, (core.now + arg, self._seq, thread.tid)
                    )
                    self._chain_break = True
                    self._block(core, thread, ("sleep", arg))
                elif kind == "join":
                    self._join_waiters.setdefault(arg, []).append(thread.tid)
                    self._block(core, thread, ("join", arg))
                elif kind == "key":
                    self.futex.wait("key:" + arg, thread.tid)
                    self._block(core, thread, ("key", arg))
                else:  # pragma: no cover
                    raise SimulationError(f"bad block kind {kind!r}")
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            exc = ex.data.get("exc")
            if exc is not None:
                self._throw(thread, exc)
            else:
                self._complete(thread, ex.data.get("result"))
            return
        raise SimulationError(f"bad Syscall stage {ex.stage!r}")

    def _adv_spawn(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.SpawnThread = ex.op
        costs = self._costs
        if ex.stage == "entry":
            ex.stage = "body"
            ex.set_phase(2600, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            child = self._create_thread(op.factory, op.name, at=core.now)
            self._make_ready(child, at=core.now)
            ex.data["result"] = child.tid
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            self._complete(thread, ex.data["result"])
            return
        raise SimulationError(f"bad SpawnThread stage {ex.stage!r}")

    def _adv_join(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.JoinThread = ex.op
        costs = self._costs
        if ex.stage == "entry":
            ex.stage = "body"
            ex.set_phase(600, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            target = self.threads.get(op.tid)
            if target is None:
                ex.data["exc"] = SimulationError(f"join: no thread {op.tid}")
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            if target is not None and target.state is not ThreadState.FINISHED:
                self._join_waiters.setdefault(op.tid, []).append(thread.tid)
                self._block(core, thread, ("join", op.tid))
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            exc = ex.data.get("exc")
            if exc is not None:
                self._throw(thread, exc)
            else:
                self._complete(thread, None)
            return
        raise SimulationError(f"bad JoinThread stage {ex.stage!r}")

    def _adv_sleep(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.Sleep = ex.op
        costs = self._costs
        if ex.stage == "entry":
            ex.stage = "body"
            ex.set_phase(900, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            self._seq += 1
            heapq.heappush(
                self._sleep_heap, (core.now + op.cycles, self._seq, thread.tid)
            )
            self._chain_break = True
            self._block(core, thread, ("sleep", op.cycles))
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            self._complete(thread, None)
            return
        raise SimulationError(f"bad Sleep stage {ex.stage!r}")

    def _adv_yield(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        costs = self._costs
        if ex.stage == "entry":
            ex.stage = "body"
            ex.set_phase(400, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            self._complete(thread, None)
            if self.scheduler.queue_length(core.core_id) > 0:
                self._switch_out(core, thread, requeue=True)
            return
        raise SimulationError(f"bad YieldCpu stage {ex.stage!r}")

    # -- syscall handlers: (core, thread, args) -> (body_cycles, action) ------

    def _sys_work(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        (cycles,) = args
        if cycles < 0:
            raise ConfigError("work syscall needs non-negative cycles")
        return cycles, None

    def _sys_getpid(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            return thread.tid, None

        return 150, action

    def _sys_pmc_open(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        (spec,) = args
        if not isinstance(spec, SlotSpec):
            raise ConfigError("pmc_open takes a SlotSpec")
        if spec.mode != "count":
            raise ConfigError("pmc_open supports counting slots only")
        cost = 800 + 2 * self._costs.wrmsr

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            idx = thread.vpmu.allocate(spec)
            ctr = core.pmu.counter(idx)
            ctr.program(spec.event, spec.count_user, spec.count_kernel)
            ctr.write(0)
            base = thread.slot_truth(spec)
            thread.slot_truth_base[idx] = base
            thread.slot_reset_truth[idx] = base
            return idx, None

        return cost, action

    def _sys_pmc_close(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        (idx,) = args

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            thread.vpmu.spec(idx)  # validates
            core.pmu.counter(idx).deprogram()
            thread.vpmu.free(idx)
            thread.slot_saved[idx] = None
            return None, None

        return 400, action

    def _sys_perf_open(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        event, mode, period, count_user, count_kernel = args
        spec = SlotSpec(
            event=event,
            count_user=count_user,
            count_kernel=count_kernel,
            mode=mode,
            period=period,
            owner="perf",
            user_readable=False,
        )
        if mode == "sample" and period >= core.pmu.config.overflow_threshold:
            raise ConfigError(
                f"sampling period {period} exceeds counter range "
                f"{core.pmu.config.overflow_threshold}"
            )

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            idx = thread.vpmu.allocate(spec)
            ctr = core.pmu.counter(idx)
            ctr.program(spec.event, spec.count_user, spec.count_kernel)
            if mode == "count":
                ctr.write(0)
            else:
                ctr.write(max(0, ctr.threshold - period))
            base = thread.slot_truth(spec)
            thread.slot_truth_base[idx] = base
            thread.slot_reset_truth[idx] = base
            fd = self.perf.open(thread.tid, idx, event, mode, period)
            return fd.fd, None

        return 3500, action

    def _sys_perf_read(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        (fd_no,) = args
        cost = self._costs.perf_read_kernel_work + self._costs.perf_copyout

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            fd = self.perf.get(fd_no)
            if fd.tid != thread.tid:
                raise ConfigError("cross-thread perf reads are not modelled")
            spec = thread.vpmu.spec(fd.slot)
            value = thread.vpmu.vaccum[fd.slot] + core.pmu.counter(fd.slot).read()
            thread.last_kernel_read_truth[fd.slot] = thread.slot_truth_since_open(
                fd.slot, spec
            )
            return value, None

        return cost, action

    def _sys_perf_close(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        (fd_no,) = args

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            fd = self.perf.close(fd_no)
            core.pmu.counter(fd.slot).deprogram()
            thread.vpmu.free(fd.slot)
            thread.slot_saved[fd.slot] = None
            return fd, None

        return 1500, action

    def _sys_papi_read(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        (indices,) = args
        indices = tuple(indices)
        cost = (
            self._costs.papi_kernel_read_work
            + self._costs.papi_copyout
            + 150 * max(0, len(indices) - 1)
        )

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            values = []
            for idx in indices:
                spec = thread.vpmu.spec(idx)
                value = thread.vpmu.vaccum[idx] + core.pmu.counter(idx).read()
                thread.last_kernel_read_truth[idx] = (
                    thread.slot_truth_since_open(idx, spec)
                )
                values.append(value)
            return values, None

        return cost, action

    def _sys_wait_key(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        """Keyed-event wait: consume a pending credit if one exists,
        otherwise block until a wake_key posts one. The credit semantics
        (a wake with no waiter is remembered) make the primitive race-free
        for building semaphores/condvars in userspace."""
        (key,) = args
        if not isinstance(key, str) or not key:
            raise ConfigError("wait_key needs a non-empty string key")

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            credits = self._key_credits.get(key, 0)
            if credits > 0:
                self._key_credits[key] = credits - 1
                return True, None  # consumed a credit; no blocking
            return False, ("key", key)

        return 900, action

    def _sys_wake_key(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        """Keyed-event wake: release up to ``n`` waiters; excess wakes are
        stored as credits. ``n = -1`` wakes every current waiter and clears
        any stored credits (broadcast)."""
        key, n = args
        if not isinstance(key, str) or not key:
            raise ConfigError("wake_key needs a non-empty string key")

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            fkey = "key:" + key
            if n == -1:
                woken = self.futex.wake(fkey, 1 << 30)
                self._key_credits.pop(key, None)
            else:
                if n < 0:
                    raise ConfigError("wake_key count must be >= 0 or -1")
                woken = self.futex.wake(fkey, n)
                excess = n - len(woken)
                if excess > 0:
                    self._key_credits[key] = (
                        self._key_credits.get(key, 0) + excess
                    )
            for tid in woken:
                self._make_ready(self.threads[tid], at=core.now)
            return len(woken), None

        return 1_100, action

    # -- perf-style event multiplexing ----------------------------------

    def _mux_fold(self, core: Core, thread: SimThread) -> None:
        """Fold the live event's accumulated count into its group entry."""
        state = thread.mux
        ctr = core.pmu.counter(state.slot)
        state.counts[state.active] += (
            thread.vpmu.vaccum[state.slot] + ctr.read()
        )
        thread.vpmu.vaccum[state.slot] = 0
        if ctr.enabled:
            ctr.write(0)
        state.enabled_cpu[state.active] += (
            thread.cpu_cycles - state.active_since_cpu
        )
        state.active_since_cpu = thread.cpu_cycles

    def _mux_rotate(self, core: Core, thread: SimThread) -> None:
        """Rotate the multiplexed group to its next event (timer driven)."""
        state = thread.mux
        self._mux_fold(core, thread)
        state.active = (state.active + 1) % len(state.specs)
        state.rotations += 1
        spec = state.specs[state.active]
        ctr = core.pmu.counter(state.slot)
        if ctr.enabled or core.current_tid == thread.tid:
            ctr.program(spec.event, spec.count_user, spec.count_kernel)
            ctr.write(0)
        # keep the slot's bookkeeping spec in sync with the live event
        thread.vpmu.slots[state.slot] = spec

    def _sys_mux_open(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        events, count_user, count_kernel = args
        events = tuple(events)
        if not events:
            raise ConfigError("mux_open needs at least one event")
        if thread.mux is not None:
            raise ConfigError("thread already has a multiplexed group")
        specs = [
            SlotSpec(
                event=e,
                count_user=count_user,
                count_kernel=count_kernel,
                mode="count",
                owner="perf-mux",
                user_readable=False,
            )
            for e in events
        ]
        cost = 3500 + 2 * self._costs.wrmsr

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            idx = thread.vpmu.allocate(specs[0])
            ctr = core.pmu.counter(idx)
            ctr.program(specs[0].event, count_user, count_kernel)
            ctr.write(0)
            thread.mux = MuxState(
                slot=idx,
                specs=specs,
                truth_base=[thread.slot_truth(s) for s in specs],
                active_since_cpu=thread.cpu_cycles,
                total_cpu_base=thread.cpu_cycles,
            )
            thread.slot_truth_base[idx] = thread.slot_truth(specs[0])
            return idx, None

        return cost, action

    def _sys_mux_read(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        cost = self._costs.perf_read_kernel_work + self._costs.perf_copyout

        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            state = thread.mux
            if state is None:
                raise ConfigError("mux_read without a multiplexed group")
            self._mux_fold(core, thread)
            total_cpu = thread.cpu_cycles - state.total_cpu_base
            triples = [
                (state.counts[i], state.enabled_cpu[i], total_cpu)
                for i in range(len(state.specs))
            ]
            thread.last_kernel_read_truth[state.slot] = 0  # unused for mux
            thread.ctx.scratch["_mux_truth"] = [
                thread.slot_truth(spec) - base
                for spec, base in zip(state.specs, state.truth_base)
            ]
            return triples, None

        return cost, action

    def _sys_mux_close(
        self, core: Core, thread: SimThread, args: tuple
    ) -> tuple[int, _SysAction | None]:
        def action(core: Core, thread: SimThread) -> tuple[Any, Any]:
            state = thread.mux
            if state is None:
                raise ConfigError("mux_close without a multiplexed group")
            core.pmu.counter(state.slot).deprogram()
            thread.vpmu.free(state.slot)
            thread.slot_saved[state.slot] = None
            thread.mux = None
            return state.rotations, None

        return 1500, action

    # ------------------------------------------------------------------
    # result collection
    # ------------------------------------------------------------------

    def _collect(self) -> RunResult:
        threads = {}
        for tid, t in self.threads.items():
            for name, arr in t.region_ev.items():
                events = t.regions[name].events
                for event in _EVENT_MEMBERS:
                    n = arr[event.index]
                    if n:
                        events[event] = n
            threads[tid] = ThreadResult(
                tid=tid,
                name=t.name,
                started_at=t.started_at,
                finished_at=t.finished_at,
                user_cycles=t.user_cycles,
                kernel_cycles=t.kernel_cycles,
                n_context_switches=t.n_context_switches,
                n_preemptions=t.n_preemptions,
                n_migrations=t.n_migrations,
                n_cross_socket_migrations=t.n_cross_socket_migrations,
                n_syscalls=t.n_syscalls,
                read_restarts=t.read_restarts,
                events_user=_tally_dict(t.ev_user),
                events_kernel=_tally_dict(t.ev_kernel),
                regions=t.regions,
            )
        cores = [
            CoreResult(
                core_id=c.core_id,
                final_time=c.now,
                busy_cycles=c.busy_cycles,
                user_cycles=c.user_cycles,
                kernel_cycles=c.kernel_cycles,
            )
            for c in self.machine.cores
        ]
        self.kernel_counters.n_steals = self.scheduler.n_steals
        return RunResult(
            config=self.config,
            wall_cycles=self.machine.max_time(),
            threads=threads,
            cores=cores,
            kernel=self.kernel_counters,
            locks=self.locks.stats(),
            samples=self.perf.all_samples(),
            trace=self.trace,
        )


def _dispatch_resolve(
    table: dict, op: Any, message: str
) -> Callable[..., Any]:
    """Slow-path dispatch: find a handler up the op's MRO (so op subclasses
    work), memoize it under the concrete type, or fail like the seed did."""
    for cls in type(op).__mro__:
        fn = table.get(cls)
        if fn is not None:
            table[type(op)] = fn
            return fn
    raise SimulationError(message)


_BEGIN_DISPATCH = {
    ops.Compute: Engine._begin_compute,
    ops.Rdtsc: Engine._begin_rdtsc,
    ops.Rdpmc: Engine._begin_rdpmc,
    ops.RdpmcDestructive: Engine._begin_rdpmc_destructive,
    ops.PmcReadBegin: Engine._begin_pmc_read_begin,
    ops.PmcReadEnd: Engine._begin_pmc_read_end,
    ops.LoadVAccum: Engine._begin_load_vaccum,
    ops.PmcSafeRead: Engine._begin_pmc_safe_read,
    ops.PmcUnsafeRead: Engine._begin_pmc_unsafe_read,
    ops.RegionBegin: Engine._begin_region,
    ops.RegionEnd: Engine._begin_region,
    ops.LockAcquire: Engine._begin_lock_acquire,
    ops.LockRelease: Engine._begin_lock_release,
    ops.Syscall: Engine._begin_syscall_op,
    ops.SpawnThread: Engine._begin_spawn,
    ops.JoinThread: Engine._begin_join,
    ops.Sleep: Engine._begin_sleep,
    ops.YieldCpu: Engine._begin_yield,
}

_ADVANCE_DISPATCH = {
    ops.Compute: Engine._adv_compute,
    ops.Rdtsc: Engine._adv_rdtsc,
    ops.Rdpmc: Engine._adv_rdpmc,
    ops.RdpmcDestructive: Engine._adv_rdpmc_destructive,
    ops.PmcReadBegin: Engine._adv_pmc_read_begin,
    ops.PmcReadEnd: Engine._adv_pmc_read_end,
    ops.LoadVAccum: Engine._adv_load_vaccum,
    ops.PmcSafeRead: Engine._adv_pmc_safe_read,
    ops.PmcUnsafeRead: Engine._adv_pmc_unsafe_read,
    ops.RegionBegin: Engine._adv_region_begin,
    ops.RegionEnd: Engine._adv_region_end,
    ops.LockAcquire: Engine._adv_lock_acquire,
    ops.LockRelease: Engine._adv_lock_release,
    ops.Syscall: Engine._adv_syscall,
    ops.SpawnThread: Engine._adv_spawn,
    ops.JoinThread: Engine._adv_join,
    ops.Sleep: Engine._adv_sleep,
    ops.YieldCpu: Engine._adv_yield,
}


def run_program(
    specs: list[ThreadSpec],
    config: SimConfig | None = None,
    lower: Callable[[], Any] | None = None,
) -> RunResult:
    """Convenience: build an engine, run the threads, return the results.

    ``lower`` opts into the compiled execution tier: a zero-argument
    callable returning a *fresh* equivalent build of the program (a spec
    list, or an object with ``.build()``). It must never return the live
    ``specs`` objects — see :meth:`Engine.run`. Results are bit-identical
    with and without it.
    """
    return Engine(config).run(specs, lower=lower)
