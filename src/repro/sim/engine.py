"""The execution engine: deterministic multicore simulation.

The engine advances a set of cores through simulated time, executing thread
programs (op generators), charging cycle costs, accruing PMU events with
exact integer arithmetic, and invoking kernel mechanisms (scheduling,
futexes, counter virtualization, PMIs) at the right instants.

Determinism & causality
-----------------------
Each step advances exactly one core — always the one with the smallest local
clock (ties broken by core id) — by one bounded piece of work whose
externally visible effects commit at the piece's end. Because the acting
core's clock is globally minimal, effects are committed in nondecreasing
global time order, so cross-core interactions (futex wakes, lock handoffs)
are causally consistent and runs are exactly reproducible.

Compute pieces are additionally split at timeslice boundaries and at the
exact cycle a PMU counter will overflow, so PMIs are delivered with the
configured skid rather than at arbitrary op boundaries.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import time
from typing import Any, Callable, Generator

from repro.common.config import SimConfig
from repro.common.errors import (
    ConfigError,
    CounterError,
    SimulationError,
)
from repro.common.rng import RandomStream
from repro.obs import runtime as obs_runtime
from repro.obs import trace as tr
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBus
from repro.hw.events import (
    Domain,
    Event,
    EventRates,
    KERNEL_RATES,
    LIBRARY_RATES,
    SPIN_RATES,
)
from repro.hw.machine import Core, Machine
from repro.kernel.futex import FutexTable
from repro.kernel.locks import LockRegistry
from repro.kernel.perf import PerfSubsystem, SampleRecord
from repro.kernel.scheduler import Scheduler
from repro.kernel.vpmu import MuxState, SlotSpec, VirtualPmu
from repro.sim import ops
from repro.sim.program import ThreadContext, ThreadSpec
from repro.sim.results import (
    CoreResult,
    KernelCounters,
    RegionTruth,
    RunResult,
    ThreadResult,
)

#: Default cap on stored per-invocation region durations (see
#: SimConfig.region_log_budget).
REGION_LOG_BUDGET = 2_000_000


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


class _OpExec:
    """In-flight execution state of one op (a tiny phase state machine)."""

    __slots__ = (
        "op",
        "stage",
        "phase_cycles",
        "phase_consumed",
        "phase_rates",
        "phase_domain",
        "phase_preemptible",
        "data",
    )

    def __init__(self, op: ops.Op) -> None:
        self.op = op
        self.stage = "start"
        self.phase_cycles = 0
        self.phase_consumed = 0
        self.phase_rates: EventRates = _EMPTY_RATES
        self.phase_domain = Domain.USER
        self.phase_preemptible = True
        self.data: dict[str, Any] = {}

    def set_phase(
        self,
        cycles: int,
        rates: EventRates,
        domain: Domain,
        preemptible: bool,
    ) -> None:
        self.phase_cycles = cycles
        self.phase_consumed = 0
        self.phase_rates = rates
        self.phase_domain = domain
        self.phase_preemptible = preemptible

    @property
    def phase_done(self) -> bool:
        return self.phase_consumed >= self.phase_cycles


_EMPTY_RATES = EventRates()


class SimThread:
    """Engine-side state of one simulated thread."""

    __slots__ = (
        "tid",
        "name",
        "ctx",
        "gen",
        "state",
        "core_id",
        "available_at",
        "send_value",
        "throw_exc",
        "cur",
        "vpmu",
        "slot_saved",
        "slot_truth_base",
        "slot_reset_truth",
        "mux",
        "in_pmc_read",
        "pmc_read_interrupted",
        "read_restarts",
        "last_rdpmc_truth",
        "last_kernel_read_truth",
        "region_stack",
        "region_entries",
        "regions",
        "owned_locks",
        "profiler",
        "ev_user",
        "ev_kernel",
        "user_cycles",
        "kernel_cycles",
        "n_context_switches",
        "n_preemptions",
        "n_migrations",
        "n_cross_socket_migrations",
        "n_syscalls",
        "started_at",
        "finished_at",
        "block_key",
    )

    def __init__(self, tid: int, name: str, ctx: ThreadContext,
                 gen: Generator, n_slots: int) -> None:
        self.tid = tid
        self.name = name
        self.ctx = ctx
        self.gen = gen
        self.state = ThreadState.READY
        self.core_id: int | None = None
        self.available_at = 0
        self.send_value: Any = None
        self.throw_exc: BaseException | None = None
        self.cur: _OpExec | None = None
        self.vpmu = VirtualPmu(n_slots)
        self.slot_saved: list[int | None] = [None] * n_slots
        self.slot_truth_base: list[int] = [0] * n_slots
        self.slot_reset_truth: list[int] = [0] * n_slots
        self.mux: MuxState | None = None
        self.in_pmc_read = False
        self.pmc_read_interrupted = False
        self.read_restarts = 0
        self.last_rdpmc_truth: int | None = None
        self.last_kernel_read_truth: dict[int, int] = {}
        self.region_stack: list[str] = []
        self.region_entries: list[tuple[str, int, int]] = []
        self.regions: dict[str, RegionTruth] = {}
        self.owned_locks: set[str] = set()
        self.profiler = None
        self.ev_user: dict[Event, int] = {}
        self.ev_kernel: dict[Event, int] = {}
        self.user_cycles = 0
        self.kernel_cycles = 0
        self.n_context_switches = 0
        self.n_preemptions = 0
        self.n_migrations = 0
        self.n_cross_socket_migrations = 0
        self.n_syscalls = 0
        self.started_at = 0
        self.finished_at = 0
        self.block_key: tuple | None = None

    @property
    def cpu_cycles(self) -> int:
        return self.user_cycles + self.kernel_cycles

    def slot_truth(self, spec: SlotSpec) -> int:
        """Ground-truth event count matching a slot's domain filter."""
        total = 0
        if spec.count_user:
            total += self.ev_user.get(spec.event, 0)
        if spec.count_kernel:
            total += self.ev_kernel.get(spec.event, 0)
        return total

    def slot_truth_since_open(self, idx: int, spec: SlotSpec) -> int:
        """Ground truth relative to when the slot was programmed — what a
        counter that started at zero at open time should read now."""
        return self.slot_truth(spec) - self.slot_truth_base[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.tid} {self.name!r} {self.state.value}>"


class Engine:
    """Runs one simulation to completion."""

    def __init__(self, config: SimConfig | None = None) -> None:
        self.config = config or SimConfig()
        self.machine = Machine(self.config.machine)
        self.scheduler = Scheduler(
            self.config.machine.n_cores,
            [c.socket_id for c in self.machine.cores],
        )
        self.futex = FutexTable()
        self.locks = LockRegistry()
        self.perf = PerfSubsystem()
        self.kernel_counters = KernelCounters()
        self.threads: dict[int, SimThread] = {}
        self.live_count = 0
        # Observability: an active collector may force tracing on (tracing
        # is zero-perturbation by contract, so results are unchanged).
        self._collector = obs_runtime.current()
        if (
            self._collector is not None
            and self._collector.capture_traces
            and not self.config.trace
        ):
            self.config = dataclasses.replace(self.config, trace=True)
        self._tracing = self.config.trace
        self.obs = TraceBus(enabled=self._tracing)
        self.trace = self.obs.events  # same list; legacy alias
        self.metrics = MetricsRegistry(enabled=self.config.metrics)
        self._n_steps = 0
        self._acting_core: Core | None = None
        if self._tracing:
            self._wire_subsystem_tracers()
        self._next_tid = 1
        self._seq = 0
        self._sleep_heap: list[tuple[int, int, int]] = []
        self._join_waiters: dict[int, list[int]] = {}
        self._key_credits: dict[str, int] = {}
        self._region_log_budget = self.config.region_log_budget
        self._costs = self.config.machine.costs
        self._finished = False
        if self.config.kernel.limit_patch:
            self.machine.enable_user_rdpmc()
        self._syscalls: dict[str, Callable] = {
            "work": self._sys_work,
            "getpid": self._sys_getpid,
            "pmc_open": self._sys_pmc_open,
            "pmc_close": self._sys_pmc_close,
            "perf_open": self._sys_perf_open,
            "perf_read": self._sys_perf_read,
            "perf_close": self._sys_perf_close,
            "papi_read": self._sys_papi_read,
            "wait_key": self._sys_wait_key,
            "wake_key": self._sys_wake_key,
            "mux_open": self._sys_mux_open,
            "mux_read": self._sys_mux_read,
            "mux_close": self._sys_mux_close,
        }

    # ------------------------------------------------------------------
    # observability wiring
    # ------------------------------------------------------------------

    def _wire_subsystem_tracers(self) -> None:
        """Hook the kernel/hw subsystems into the trace bus. Only installed
        when tracing is on, so disabled runs pay nothing here."""
        emit = self.obs.emit
        cores = self.machine.cores

        def on_steal(thief: int, victim: int, tid: int) -> None:
            emit(cores[thief].now, thief, tid, tr.SCHED_STEAL, victim)

        def on_wait(key: str, tid: int) -> None:
            core = self._acting_core
            emit(core.now, core.core_id, tid, tr.FUTEX_WAIT, key)

        def on_wake(key: str, woken: list[int]) -> None:
            core = self._acting_core
            waker = core.current_tid if core.current_tid is not None else 0
            emit(core.now, core.core_id, waker, tr.FUTEX_WAKE, (key, len(woken)))

        def on_sample(fd, record) -> None:
            core_id = self.threads[record.tid].core_id
            emit(record.time, core_id if core_id is not None else 0,
                 record.tid, tr.SAMPLE, fd.fd)

        self.scheduler.on_steal = on_steal
        self.futex.on_wait = on_wait
        self.futex.on_wake = on_wake
        self.perf.on_sample = on_sample
        for core in cores:
            def on_overflow(index: int, core: Core = core) -> None:
                tid = core.current_tid if core.current_tid is not None else 0
                emit(core.now, core.core_id, tid, tr.CTR_OVERFLOW, index)

            core.pmu.on_overflow = on_overflow

    def _record_metrics(self, run_wall: float, collect_wall: float,
                        result: RunResult) -> None:
        """Fill the self-telemetry registry from totals the run kept anyway
        (one pass per run, nothing per simulated event)."""
        reg = self.metrics
        k = self.kernel_counters
        reg.counter("sim_events").add(self._n_steps)
        reg.counter("context_switches").add(k.n_context_switches)
        reg.counter("preemptions").add(
            sum(t.n_preemptions for t in self.threads.values())
        )
        reg.counter("pmis").add(k.n_pmis)
        reg.counter("counter_overflows").add(k.n_counter_overflows)
        reg.counter("timer_ticks").add(k.n_timer_ticks)
        reg.counter("syscalls").add(k.syscall_total())
        reg.counter("futex_waits").add(k.n_futex_waits)
        reg.counter("futex_wakes").add(k.n_futex_wakes)
        reg.counter("samples").add(k.n_samples)
        reg.counter("steals").add(k.n_steals)
        reg.counter("read_restarts").add(
            sum(t.read_restarts for t in self.threads.values())
        )
        reg.counter("threads").add(len(self.threads))
        reg.counter("trace_events").add(len(self.obs.events))
        reg.gauge("sim_cycles").set(result.wall_cycles)
        if run_wall > 0:
            reg.gauge("sim_events_per_sec").set(self._n_steps / run_wall)
            reg.gauge("sim_cycles_per_sec").set(result.wall_cycles / run_wall)
        reg.timer("wall.engine_run").add(run_wall)
        reg.timer("wall.collect").add(collect_wall)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, specs: list[ThreadSpec]) -> RunResult:
        """Execute the given threads to completion and return the results."""
        if self._finished:
            raise SimulationError("Engine instances are single-use")
        if not specs:
            raise ConfigError("need at least one thread spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate thread names: {names}")
        for spec in specs:
            thread = self._create_thread(spec.factory, spec.name, at=0)
            self._make_ready(thread, at=0)
        t0 = time.perf_counter()
        self._main_loop()
        run_wall = time.perf_counter() - t0
        self._finished = True
        t1 = time.perf_counter()
        result = self._collect()
        collect_wall = time.perf_counter() - t1
        if self.metrics.enabled:
            self._record_metrics(run_wall, collect_wall, result)
            result.metrics = self.metrics.snapshot()
        if self._collector is not None:
            self._collector.record_run(
                result,
                wall_seconds=run_wall + collect_wall,
                sim_events=self._n_steps,
            )
        return result

    def thread(self, tid: int) -> SimThread:
        try:
            return self.threads[tid]
        except KeyError:
            raise SimulationError(f"no thread with tid {tid}") from None

    def thread_now(self, tid: int) -> int:
        """Best-known current time for a thread (ground-truth peek)."""
        thread = self.thread(tid)
        if thread.core_id is not None:
            return self.machine.cores[thread.core_id].now
        return thread.available_at

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _main_loop(self) -> None:
        cores = self.machine.cores
        threads = self.threads
        sleep_heap = self._sleep_heap
        heappop = heapq.heappop
        max_cycles = self.config.max_cycles
        n_steps = 0
        while self.live_count > 0:
            n_steps += 1
            # Acting core: smallest clock among unparked cores, ties by core
            # id. A strict `<` scan in core order matches min((now, id)).
            core = None
            t_next = 0
            for c in cores:
                if not c.parked and (core is None or c.now < t_next):
                    core = c
                    t_next = c.now
            while sleep_heap and (core is None or sleep_heap[0][0] <= t_next):
                wake_at, _, tid = heappop(sleep_heap)
                self._make_ready(threads[tid], at=wake_at)
                core = None
                for c in cores:
                    if not c.parked and (core is None or c.now < t_next):
                        core = c
                        t_next = c.now
            if core is None:
                blocked = [
                    f"{t.name}({t.block_key})"
                    for t in threads.values()
                    if t.state is ThreadState.BLOCKED
                ]
                raise SimulationError(
                    f"deadlock: no runnable threads; blocked: {blocked}"
                )
            if core.now > max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={max_cycles}"
                )
            self._step(core)
        self._n_steps = n_steps

    def _step(self, core: Core) -> None:
        if self._tracing:
            self._acting_core = core
        tid = core.current_tid
        if tid is None:
            self._dispatch(core)
            return
        thread = self.threads[tid]
        if core.pmi_due_at is not None and core.now >= core.pmi_due_at:
            self._service_pmi(core, thread)
            return
        if core.slice_ends_at is not None and core.now >= core.slice_ends_at:
            self._timer_tick(core, thread)
            return
        self._exec_piece(core, thread)

    # ------------------------------------------------------------------
    # thread lifecycle
    # ------------------------------------------------------------------

    def _create_thread(self, factory, name: str, at: int) -> SimThread:
        tid = self._next_tid
        self._next_tid += 1
        rng = RandomStream(self.config.seed, "thread", name, tid)
        ctx = ThreadContext(name, tid, rng, self)
        gen = factory(ctx)
        if not hasattr(gen, "send"):
            raise ConfigError(
                f"program factory for thread {name!r} must return a "
                f"generator, got {type(gen).__name__}"
            )
        thread = SimThread(tid, name, ctx, gen, self.config.machine.pmu.n_counters)
        thread.started_at = at
        thread.available_at = at
        self.threads[tid] = thread
        self.live_count += 1
        return thread

    def _make_ready(self, thread: SimThread, at: int) -> None:
        thread.state = ThreadState.READY
        thread.available_at = at
        thread.block_key = None
        idle = [
            c.core_id
            for c in self.machine.cores
            if (c.parked or c.current_tid is None)
            and self.scheduler.queue_length(c.core_id) == 0
        ]
        core_id = self.scheduler.place(thread.core_id, idle)
        self.scheduler.enqueue(thread.tid, core_id)
        core = self.machine.cores[core_id]
        if core.parked:
            core.parked = False
            if at > core.now:
                core.now = at
        if self._tracing:
            self.obs.emit(at, core_id, thread.tid, tr.READY, thread.name)

    def _finish_thread(self, core: Core, thread: SimThread) -> None:
        if thread.owned_locks:
            raise SimulationError(
                f"thread {thread.name!r} exited holding locks "
                f"{sorted(thread.owned_locks)}"
            )
        if thread.region_stack:
            raise SimulationError(
                f"thread {thread.name!r} exited with open regions "
                f"{thread.region_stack}"
            )
        self._switch_out(core, thread, requeue=False)
        thread.state = ThreadState.FINISHED
        thread.finished_at = core.now
        self.live_count -= 1
        for waiter in self._join_waiters.pop(thread.tid, []):
            self._make_ready(self.threads[waiter], at=core.now)
        if self._tracing:
            self.obs.emit(core.now, core.core_id, thread.tid, tr.EXIT, thread.name)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _dispatch(self, core: Core) -> None:
        tid = self.scheduler.pick_next(core.core_id)
        if tid is None:
            core.parked = True
            return
        self._switch_in(core, self.threads[tid])

    def _switch_in(self, core: Core, thread: SimThread) -> None:
        core.parked = False
        if thread.available_at > core.now:
            core.now = thread.available_at
        crossed_socket = False
        if thread.core_id is not None and thread.core_id != core.core_id:
            thread.n_migrations += 1
            old_socket = self.machine.cores[thread.core_id].socket_id
            crossed_socket = old_socket != core.socket_id
            if crossed_socket:
                thread.n_cross_socket_migrations += 1
        thread.core_id = core.core_id
        thread.state = ThreadState.RUNNING
        core.current_tid = thread.tid
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.SWITCH_IN, thread.name
            )
        # Restore the thread's counters FIRST, then charge the switch
        # path: the incoming thread's OS-domain counters must observe the
        # switch-in work, or virtualized kernel-cycle counts would drift
        # from truth by one switch path per reschedule.
        self._program_counters(core, thread)
        cost = self._costs.context_switch
        if crossed_socket:
            cost += self._costs.cross_socket_migration
        n_active = thread.vpmu.n_active()
        if n_active and not self.config.kernel.hw_thread_virtualization:
            cost += self._costs.ctx_restore_per_counter * n_active
        self._account_kernel(core, thread, cost)
        core.slice_ends_at = core.now + self.config.kernel.timeslice_cycles

    def _switch_out(
        self, core: Core, thread: SimThread, requeue: bool, preempted: bool = False
    ) -> None:
        n_active = thread.vpmu.n_active()
        if n_active and not self.config.kernel.hw_thread_virtualization:
            self._account_kernel(
                core, thread, self._costs.ctx_save_per_counter * n_active
            )
        self._fold_counters(core, thread)
        if thread.in_pmc_read:
            thread.pmc_read_interrupted = True
        thread.n_context_switches += 1
        if preempted:
            thread.n_preemptions += 1
        self.kernel_counters.n_context_switches += 1
        core.current_tid = None
        core.slice_ends_at = None
        core.pmi_due_at = None
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.SWITCH_OUT, thread.name
            )
        if requeue:
            thread.state = ThreadState.READY
            thread.available_at = core.now
            self.scheduler.enqueue(thread.tid, core.core_id)
            if self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid, tr.READY, thread.name
                )

    def _timer_tick(self, core: Core, thread: SimThread) -> None:
        if self._tracing:
            self.obs.emit(core.now, core.core_id, thread.tid, tr.TIMER_TICK)
        self.kernel_counters.n_timer_ticks += 1
        self._account_kernel(core, thread, self._costs.timer_tick)
        if thread.mux is not None and len(thread.mux.specs) > 1:
            self._account_kernel(core, thread, 2 * self._costs.wrmsr)
            self._mux_rotate(core, thread)
        if self.scheduler.queue_length(core.core_id) > 0:
            self._switch_out(core, thread, requeue=True, preempted=True)
        else:
            core.slice_ends_at = core.now + self.config.kernel.timeslice_cycles

    def _block(self, core: Core, thread: SimThread, key: tuple) -> None:
        thread.state = ThreadState.BLOCKED
        thread.block_key = key
        self._switch_out(core, thread, requeue=False)

    # ------------------------------------------------------------------
    # counter virtualization (the LiMiT kernel patch)
    # ------------------------------------------------------------------

    def _program_counters(self, core: Core, thread: SimThread) -> None:
        pmu = core.pmu
        for idx in thread.vpmu.active_indices():
            spec = thread.vpmu.slots[idx]
            ctr = pmu.counter(idx)
            ctr.program(spec.event, spec.count_user, spec.count_kernel)
            if spec.mode == "count":
                ctr.write(0)
            else:
                saved = thread.slot_saved[idx]
                if saved is None:
                    saved = max(0, ctr.threshold - spec.period)
                ctr.write(saved)

    def _fold_counters(self, core: Core, thread: SimThread) -> None:
        pmu = core.pmu
        for idx in thread.vpmu.active_indices():
            ctr = pmu.counter(idx)
            if ctr.overflow_pending:
                self._apply_overflow(core, thread, idx)
            spec = thread.vpmu.slots[idx]
            if spec.mode == "count":
                thread.vpmu.vaccum[idx] += ctr.read()
            else:
                thread.slot_saved[idx] = ctr.read()
            ctr.deprogram()

    def _apply_overflow(self, core: Core, thread: SimThread, idx: int) -> None:
        ctr = core.pmu.counter(idx)
        wraps = ctr.clear_overflow()
        if not wraps:
            return
        self.kernel_counters.n_counter_overflows += wraps
        spec = thread.vpmu.slots[idx]
        if spec is None:  # orphaned counter; nothing to attribute
            return
        if spec.mode == "count":
            thread.vpmu.vaccum[idx] += wraps * ctr.threshold
        else:
            fd = self.perf.fd_for_slot(thread.tid, idx)
            region = thread.region_stack[-1] if thread.region_stack else None
            if fd is not None and fd.enabled:
                record = SampleRecord(
                    time=core.now,
                    tid=thread.tid,
                    region=region,
                    event=spec.event,
                    fd=fd.fd,
                )
                self.perf.record_sample(fd, record)
                self.kernel_counters.n_samples += 1
            thread.vpmu.sample_counts[idx] += 1
            ctr.write(max(0, ctr.threshold - spec.period))

    def _service_pmi(self, core: Core, thread: SimThread) -> None:
        core.pmi_due_at = None
        pending = core.pmu.pending_overflow_indices()
        if not pending:
            return
        n_samples = sum(
            1
            for idx in pending
            if thread.vpmu.slots[idx] is not None
            and thread.vpmu.slots[idx].mode == "sample"
        )
        cost = self._costs.pmi_handler + self._costs.pmi_sample_record * n_samples
        self.kernel_counters.n_pmis += 1
        self._account_kernel(core, thread, cost)
        # The handler itself may have pushed more counters over the edge
        # (kernel-domain counting); service everything pending now.
        for idx in core.pmu.pending_overflow_indices():
            self._apply_overflow(core, thread, idx)
        if thread.in_pmc_read:
            thread.pmc_read_interrupted = True
        if self._tracing:
            self.obs.emit(core.now, core.core_id, thread.tid, tr.PMI, tuple(pending))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _account(
        self,
        core: Core,
        thread: SimThread,
        domain: Domain,
        rates: EventRates,
        before: int,
        after: int,
    ) -> None:
        """Charge ``after - before`` cycles of a phase to the machine,
        thread, ground truth, active region and PMU counters."""
        chunk = after - before
        core.now += chunk
        core.busy_cycles += chunk
        user = domain is Domain.USER
        if user:
            core.user_cycles += chunk
            thread.user_cycles += chunk
            ev = thread.ev_user
        else:
            core.kernel_cycles += chunk
            thread.kernel_cycles += chunk
            ev = thread.ev_kernel
        ev_get = ev.get
        ev[Event.CYCLES] = ev_get(Event.CYCLES, 0) + chunk
        region_stack = thread.region_stack
        rev = None
        if region_stack:
            rt = thread.regions[region_stack[-1]]
            if user:
                rev = rt.events
                rev[Event.CYCLES] = rev.get(Event.CYCLES, 0) + chunk
            else:
                rt.kernel_cycles += chunk
        if rates:
            if rev is None:
                for event, ppm in rates.items():
                    n = (after * ppm) // 1_000_000 - (before * ppm) // 1_000_000
                    if n:
                        ev[event] = ev_get(event, 0) + n
            else:
                rev_get = rev.get
                for event, ppm in rates.items():
                    n = (after * ppm) // 1_000_000 - (before * ppm) // 1_000_000
                    if n:
                        ev[event] = ev_get(event, 0) + n
                        rev[event] = rev_get(event, 0) + n
        overflowed = core.pmu.accrue_phase(rates, domain, before, after)
        if overflowed:
            due = core.now + self._costs.pmi_skid
            if core.pmi_due_at is None or due < core.pmi_due_at:
                core.pmi_due_at = due

    def _account_kernel(self, core: Core, thread: SimThread, cycles: int) -> None:
        """One-shot non-preemptible kernel phase."""
        if cycles:
            self._account(core, thread, Domain.KERNEL, KERNEL_RATES, 0, cycles)

    # ------------------------------------------------------------------
    # op execution
    # ------------------------------------------------------------------

    def _exec_piece(self, core: Core, thread: SimThread) -> None:
        ex = thread.cur
        if ex is None:
            if not self._fetch_next_op(core, thread):
                return
            ex = thread.cur
        if not ex.phase_done:
            if not self._run_phase(core, thread, ex):
                return
        self._advance(core, thread, ex)

    def _fetch_next_op(self, core: Core, thread: SimThread) -> bool:
        try:
            if thread.throw_exc is not None:
                exc = thread.throw_exc
                thread.throw_exc = None
                op = thread.gen.throw(exc)
            else:
                op = thread.gen.send(thread.send_value)
        except StopIteration:
            self._finish_thread(core, thread)
            return False
        thread.send_value = None
        thread.cur = self._begin_op(core, thread, op)
        return True

    def _run_phase(self, core: Core, thread: SimThread, ex: _OpExec) -> bool:
        consumed = ex.phase_consumed
        remaining = ex.phase_cycles - consumed
        if remaining <= 0:
            return True
        if ex.phase_preemptible:
            # limit only ever shrinks from `remaining`, so the final chunk
            # is max(1, limit) — identical to max(1, min(remaining, limit)).
            limit = remaining
            now = core.now
            bound = core.slice_ends_at
            if bound is not None and bound - now < limit:
                limit = bound - now
            bound = core.pmi_due_at
            if bound is not None and bound - now < limit:
                limit = bound - now
            split = core.pmu.cycles_to_next_overflow(
                ex.phase_rates, ex.phase_domain, consumed
            )
            if split is not None and split < limit:
                limit = split
            chunk = limit if limit > 0 else 1
        else:
            chunk = remaining
        self._account(
            core,
            thread,
            ex.phase_domain,
            ex.phase_rates,
            consumed,
            consumed + chunk,
        )
        ex.phase_consumed = consumed + chunk
        return ex.phase_consumed >= ex.phase_cycles

    def _complete(self, thread: SimThread, value: Any) -> None:
        thread.send_value = value
        thread.cur = None

    def _throw(self, thread: SimThread, exc: BaseException) -> None:
        thread.throw_exc = exc
        thread.cur = None

    # -- op begin ----------------------------------------------------------

    def _begin_op(self, core: Core, thread: SimThread, op: ops.Op) -> _OpExec:
        ex = _OpExec(op)
        costs = self._costs
        if isinstance(op, ops.Compute):
            ex.stage = "run"
            ex.set_phase(op.cycles, op.rates, Domain.USER, True)
        elif isinstance(op, ops.Rdtsc):
            ex.stage = "run"
            ex.set_phase(costs.rdtsc, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, ops.Rdpmc):
            ex.stage = "run"
            ex.set_phase(costs.rdpmc, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, ops.RdpmcDestructive):
            ex.stage = "run"
            ex.set_phase(costs.rdpmc_destructive, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, ops.PmcReadBegin):
            ex.stage = "run"
            ex.set_phase(costs.pmc_read_begin, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, ops.PmcReadEnd):
            ex.stage = "run"
            ex.set_phase(costs.pmc_read_end, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, ops.LoadVAccum):
            ex.stage = "run"
            ex.set_phase(costs.pmc_load_accum, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, (ops.RegionBegin, ops.RegionEnd)):
            ex.stage = "run"
            hook = costs.instrument_hook if thread.profiler is not None else 0
            ex.set_phase(hook, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, ops.LockAcquire):
            ex.stage = "cas"
            ex.data["t0"] = core.now
            ex.data["spin_used"] = 0
            ex.data["contended"] = False
            ex.data["slept"] = False
            ex.set_phase(costs.cas, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, ops.LockRelease):
            ex.stage = "cas"
            ex.set_phase(costs.cas, LIBRARY_RATES, Domain.USER, True)
        elif isinstance(op, ops.Syscall):
            handler = self._syscalls.get(op.name)
            if handler is None:
                raise SimulationError(f"unknown syscall {op.name!r}")
            ex.stage = "entry"
            ex.data["handler"] = handler
            thread.n_syscalls += 1
            table = self.kernel_counters.n_syscalls
            table[op.name] = table.get(op.name, 0) + 1
            self._begin_syscall(core, thread, ex, op.name)
        elif isinstance(op, ops.SpawnThread):
            ex.stage = "entry"
            thread.n_syscalls += 1
            table = self.kernel_counters.n_syscalls
            table["clone"] = table.get("clone", 0) + 1
            self._begin_syscall(core, thread, ex, "clone")
        elif isinstance(op, ops.JoinThread):
            ex.stage = "entry"
            thread.n_syscalls += 1
            self._begin_syscall(core, thread, ex, "join")
        elif isinstance(op, ops.Sleep):
            ex.stage = "entry"
            thread.n_syscalls += 1
            self._begin_syscall(core, thread, ex, "sleep")
        elif isinstance(op, ops.YieldCpu):
            ex.stage = "entry"
            thread.n_syscalls += 1
            self._begin_syscall(core, thread, ex, "yield")
        else:
            raise SimulationError(f"thread {thread.name!r} yielded non-op {op!r}")
        return ex

    def _begin_syscall(
        self, core: Core, thread: SimThread, ex: _OpExec, name: str
    ) -> None:
        """Common entry path of every syscall-class op: trace + entry phase."""
        ex.data["sys_name"] = name
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.SYSCALL_ENTER, name
            )
        ex.set_phase(
            self._costs.syscall_entry, KERNEL_RATES, Domain.KERNEL, False
        )

    def _end_syscall(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        """Trace the kernel->user return of a syscall-class op."""
        if self._tracing:
            self.obs.emit(
                core.now,
                core.core_id,
                thread.tid,
                tr.SYSCALL_EXIT,
                ex.data.get("sys_name"),
            )

    # -- op advance ----------------------------------------------------------

    def _advance(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op = ex.op
        if isinstance(op, ops.Compute):
            self._complete(thread, None)
        elif isinstance(op, ops.Rdtsc):
            self._complete(thread, core.now)
        elif isinstance(op, ops.Rdpmc):
            self._adv_rdpmc(core, thread, op)
        elif isinstance(op, ops.RdpmcDestructive):
            self._adv_rdpmc_destructive(core, thread, op)
        elif isinstance(op, ops.PmcReadBegin):
            thread.in_pmc_read = True
            thread.pmc_read_interrupted = False
            if self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid, tr.PMC_READ_BEGIN
                )
            self._complete(thread, None)
        elif isinstance(op, ops.PmcReadEnd):
            ok = (
                not thread.pmc_read_interrupted
                and not core.pmu.pending_overflow_indices()
            )
            thread.in_pmc_read = False
            thread.pmc_read_interrupted = False
            if not ok:
                thread.read_restarts += 1
            if self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid, tr.PMC_READ_END, ok
                )
            self._complete(thread, ok)
        elif isinstance(op, ops.LoadVAccum):
            try:
                value = thread.vpmu.read_accumulator(op.index)
            except CounterError as exc:
                self._throw(thread, exc)
            else:
                self._complete(thread, value)
        elif isinstance(op, ops.RegionBegin):
            self._adv_region_begin(core, thread, op)
        elif isinstance(op, ops.RegionEnd):
            self._adv_region_end(core, thread)
        elif isinstance(op, ops.LockAcquire):
            self._adv_lock_acquire(core, thread, ex)
        elif isinstance(op, ops.LockRelease):
            self._adv_lock_release(core, thread, ex)
        elif isinstance(op, ops.Syscall):
            self._adv_syscall(core, thread, ex)
        elif isinstance(op, ops.SpawnThread):
            self._adv_spawn(core, thread, ex)
        elif isinstance(op, ops.JoinThread):
            self._adv_join(core, thread, ex)
        elif isinstance(op, ops.Sleep):
            self._adv_sleep(core, thread, ex)
        elif isinstance(op, ops.YieldCpu):
            self._adv_yield(core, thread, ex)
        else:  # pragma: no cover - _begin_op already rejects these
            raise SimulationError(f"cannot advance op {op!r}")

    def _adv_rdpmc(self, core: Core, thread: SimThread, op: ops.Rdpmc) -> None:
        try:
            value = core.pmu.rdpmc(op.index, from_user=True)
        except CounterError as exc:
            self._throw(thread, exc)
            return
        if 0 <= op.index < len(thread.vpmu.slots):
            spec = thread.vpmu.slots[op.index]
            if spec is not None:
                thread.last_rdpmc_truth = thread.slot_truth_since_open(
                    op.index, spec
                )
        self._complete(thread, value)

    def _adv_rdpmc_destructive(
        self, core: Core, thread: SimThread, op: ops.RdpmcDestructive
    ) -> None:
        pmu = core.pmu
        try:
            hw = pmu.rdpmc(op.index, from_user=True)
        except CounterError as exc:
            self._throw(thread, exc)
            return
        try:
            spec = thread.vpmu.spec(op.index)
        except CounterError as exc:
            self._throw(thread, exc)
            return
        ctr = pmu.counter(op.index)
        if ctr.overflow_pending:
            # the instruction folds pending overflow state atomically
            self._apply_overflow(core, thread, op.index)
            hw = ctr.read()
        value = thread.vpmu.vaccum[op.index] + hw
        thread.vpmu.vaccum[op.index] = 0
        ctr.write(0)
        truth = thread.slot_truth(spec)
        thread.last_rdpmc_truth = truth - thread.slot_reset_truth[op.index]
        thread.slot_reset_truth[op.index] = truth
        self._complete(thread, value)

    def _adv_region_begin(self, core: Core, thread: SimThread, op: ops.RegionBegin) -> None:
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.REGION_BEGIN, op.name
            )
        thread.region_stack.append(op.name)
        if op.name not in thread.regions:
            thread.regions[op.name] = RegionTruth(name=op.name)
        thread.region_entries.append((op.name, thread.cpu_cycles, core.now))
        if thread.profiler is not None:
            thread.profiler.on_enter(thread.tid, op.name, core.now)
        self._complete(thread, None)

    def _adv_region_end(self, core: Core, thread: SimThread) -> None:
        if not thread.region_stack:
            raise SimulationError(
                f"thread {thread.name!r}: RegionEnd with no open region"
            )
        name = thread.region_stack.pop()
        entry_name, cpu_snap, t0 = thread.region_entries.pop()
        if entry_name != name:  # pragma: no cover - structurally impossible
            raise SimulationError("region stack corrupted")
        rt = thread.regions[name]
        rt.invocations += 1
        if self._region_log_budget > 0:
            rt.exec_cycles.append(thread.cpu_cycles - cpu_snap)
            rt.wall_cycles.append(core.now - t0)
            self._region_log_budget -= 1
        if thread.profiler is not None:
            thread.profiler.on_exit(thread.tid, name, core.now)
        if self._tracing:
            self.obs.emit(
                core.now, core.core_id, thread.tid, tr.REGION_END, name
            )
        self._complete(thread, None)

    # -- locks ---------------------------------------------------------------

    def _adv_lock_acquire(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.LockAcquire = ex.op
        costs = self._costs
        lock = self.locks.get(op.lock)
        stage = ex.stage
        if stage == "cas":
            if not lock.held:
                waited = core.now - ex.data["t0"]
                lock.take(
                    thread.tid,
                    core.now,
                    waited=waited,
                    contended=ex.data["contended"],
                    slept=ex.data["slept"],
                )
                thread.owned_locks.add(op.lock)
                if self._tracing:
                    self.obs.emit(
                        core.now, core.core_id, thread.tid, tr.LOCK_ACQ, op.lock
                    )
                self._complete(thread, None)
                return
            ex.data["contended"] = True
            if ex.data["spin_used"] < self.config.locks.spin_limit_cycles:
                ex.stage = "spin"
                ex.data["spin_used"] += costs.spin_quantum
                ex.set_phase(costs.spin_quantum, SPIN_RATES, Domain.USER, True)
                return
            ex.stage = "fbody"
            self.kernel_counters.n_futex_waits += 1
            ex.set_phase(
                costs.syscall_entry + costs.futex_wait_kernel,
                KERNEL_RATES,
                Domain.KERNEL,
                False,
            )
            return
        if stage == "spin":
            ex.stage = "cas"
            ex.set_phase(costs.cas, LIBRARY_RATES, Domain.USER, True)
            return
        if stage == "fbody":
            ex.stage = "fexit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            if lock.held:
                # genuinely sleep; retry CAS when woken
                self.futex.wait(op.lock, thread.tid)
                lock.n_sleepers += 1
                ex.data["slept"] = True
                self._block(core, thread, ("futex", op.lock))
            # else: lost the race with a release; fall through to fexit
            return
        if stage == "fexit":
            ex.stage = "cas"
            ex.data["spin_used"] = 0
            ex.set_phase(costs.cas, LIBRARY_RATES, Domain.USER, True)
            return
        raise SimulationError(f"bad LockAcquire stage {stage!r}")

    def _adv_lock_release(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.LockRelease = ex.op
        costs = self._costs
        stage = ex.stage
        if stage == "cas":
            lock = self.locks.get(op.lock)
            lock.release(thread.tid, core.now)
            thread.owned_locks.discard(op.lock)
            if self._tracing:
                self.obs.emit(
                    core.now, core.core_id, thread.tid, tr.LOCK_REL, op.lock
                )
            if lock.n_sleepers > 0:
                ex.stage = "wbody"
                self.kernel_counters.n_futex_wakes += 1
                ex.set_phase(
                    costs.syscall_entry + costs.futex_wake_kernel,
                    KERNEL_RATES,
                    Domain.KERNEL,
                    False,
                )
                return
            self._complete(thread, None)
            return
        if stage == "wbody":
            lock = self.locks.get(op.lock)
            woken = self.futex.wake(op.lock, 1)
            lock.n_sleepers -= len(woken)
            for tid in woken:
                self._make_ready(self.threads[tid], at=core.now)
            ex.stage = "wexit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            return
        if stage == "wexit":
            self._complete(thread, None)
            return
        raise SimulationError(f"bad LockRelease stage {stage!r}")

    # -- syscalls ----------------------------------------------------------

    def _adv_syscall(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.Syscall = ex.op
        costs = self._costs
        if ex.stage == "entry":
            handler = ex.data["handler"]
            try:
                body_cycles, action = handler(core, thread, op.args)
            except Exception as exc:  # deliver as the syscall's "errno"
                ex.data["action"] = None
                ex.data["exc"] = exc
                ex.stage = "exit"
                ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
                return
            ex.data["action"] = action
            ex.stage = "body"
            ex.set_phase(body_cycles, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            action = ex.data.get("action")
            result: Any = None
            block: tuple | None = None
            if action is not None:
                try:
                    result, block = action(core, thread)
                except Exception as exc:
                    ex.data["exc"] = exc
                    block = None
            ex.data["result"] = result
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            if block is not None:
                kind, arg = block
                if kind == "sleep":
                    self._seq += 1
                    heapq.heappush(
                        self._sleep_heap, (core.now + arg, self._seq, thread.tid)
                    )
                    self._block(core, thread, ("sleep", arg))
                elif kind == "join":
                    self._join_waiters.setdefault(arg, []).append(thread.tid)
                    self._block(core, thread, ("join", arg))
                elif kind == "key":
                    self.futex.wait("key:" + arg, thread.tid)
                    self._block(core, thread, ("key", arg))
                else:  # pragma: no cover
                    raise SimulationError(f"bad block kind {kind!r}")
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            exc = ex.data.get("exc")
            if exc is not None:
                self._throw(thread, exc)
            else:
                self._complete(thread, ex.data.get("result"))
            return
        raise SimulationError(f"bad Syscall stage {ex.stage!r}")

    def _adv_spawn(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.SpawnThread = ex.op
        costs = self._costs
        if ex.stage == "entry":
            ex.stage = "body"
            ex.set_phase(2600, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            child = self._create_thread(op.factory, op.name, at=core.now)
            self._make_ready(child, at=core.now)
            ex.data["result"] = child.tid
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            self._complete(thread, ex.data["result"])
            return
        raise SimulationError(f"bad SpawnThread stage {ex.stage!r}")

    def _adv_join(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.JoinThread = ex.op
        costs = self._costs
        if ex.stage == "entry":
            ex.stage = "body"
            ex.set_phase(600, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            target = self.threads.get(op.tid)
            if target is None:
                ex.data["exc"] = SimulationError(f"join: no thread {op.tid}")
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            if target is not None and target.state is not ThreadState.FINISHED:
                self._join_waiters.setdefault(op.tid, []).append(thread.tid)
                self._block(core, thread, ("join", op.tid))
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            exc = ex.data.get("exc")
            if exc is not None:
                self._throw(thread, exc)
            else:
                self._complete(thread, None)
            return
        raise SimulationError(f"bad JoinThread stage {ex.stage!r}")

    def _adv_sleep(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        op: ops.Sleep = ex.op
        costs = self._costs
        if ex.stage == "entry":
            ex.stage = "body"
            ex.set_phase(900, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            self._seq += 1
            heapq.heappush(
                self._sleep_heap, (core.now + op.cycles, self._seq, thread.tid)
            )
            self._block(core, thread, ("sleep", op.cycles))
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            self._complete(thread, None)
            return
        raise SimulationError(f"bad Sleep stage {ex.stage!r}")

    def _adv_yield(self, core: Core, thread: SimThread, ex: _OpExec) -> None:
        costs = self._costs
        if ex.stage == "entry":
            ex.stage = "body"
            ex.set_phase(400, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "body":
            ex.stage = "exit"
            ex.set_phase(costs.syscall_exit, KERNEL_RATES, Domain.KERNEL, False)
            return
        if ex.stage == "exit":
            self._end_syscall(core, thread, ex)
            self._complete(thread, None)
            if self.scheduler.queue_length(core.core_id) > 0:
                self._switch_out(core, thread, requeue=True)
            return
        raise SimulationError(f"bad YieldCpu stage {ex.stage!r}")

    # -- syscall handlers: (core, thread, args) -> (body_cycles, action) ------

    def _sys_work(self, core, thread, args):
        (cycles,) = args
        if cycles < 0:
            raise ConfigError("work syscall needs non-negative cycles")
        return cycles, None

    def _sys_getpid(self, core, thread, args):
        def action(core, thread):
            return thread.tid, None

        return 150, action

    def _sys_pmc_open(self, core, thread, args):
        (spec,) = args
        if not isinstance(spec, SlotSpec):
            raise ConfigError("pmc_open takes a SlotSpec")
        if spec.mode != "count":
            raise ConfigError("pmc_open supports counting slots only")
        cost = 800 + 2 * self._costs.wrmsr

        def action(core, thread):
            idx = thread.vpmu.allocate(spec)
            ctr = core.pmu.counter(idx)
            ctr.program(spec.event, spec.count_user, spec.count_kernel)
            ctr.write(0)
            base = thread.slot_truth(spec)
            thread.slot_truth_base[idx] = base
            thread.slot_reset_truth[idx] = base
            return idx, None

        return cost, action

    def _sys_pmc_close(self, core, thread, args):
        (idx,) = args

        def action(core, thread):
            thread.vpmu.spec(idx)  # validates
            core.pmu.counter(idx).deprogram()
            thread.vpmu.free(idx)
            thread.slot_saved[idx] = None
            return None, None

        return 400, action

    def _sys_perf_open(self, core, thread, args):
        event, mode, period, count_user, count_kernel = args
        spec = SlotSpec(
            event=event,
            count_user=count_user,
            count_kernel=count_kernel,
            mode=mode,
            period=period,
            owner="perf",
            user_readable=False,
        )
        if mode == "sample" and period >= core.pmu.config.overflow_threshold:
            raise ConfigError(
                f"sampling period {period} exceeds counter range "
                f"{core.pmu.config.overflow_threshold}"
            )

        def action(core, thread):
            idx = thread.vpmu.allocate(spec)
            ctr = core.pmu.counter(idx)
            ctr.program(spec.event, spec.count_user, spec.count_kernel)
            if mode == "count":
                ctr.write(0)
            else:
                ctr.write(max(0, ctr.threshold - period))
            base = thread.slot_truth(spec)
            thread.slot_truth_base[idx] = base
            thread.slot_reset_truth[idx] = base
            fd = self.perf.open(thread.tid, idx, event, mode, period)
            return fd.fd, None

        return 3500, action

    def _sys_perf_read(self, core, thread, args):
        (fd_no,) = args
        cost = self._costs.perf_read_kernel_work + self._costs.perf_copyout

        def action(core, thread):
            fd = self.perf.get(fd_no)
            if fd.tid != thread.tid:
                raise ConfigError("cross-thread perf reads are not modelled")
            spec = thread.vpmu.spec(fd.slot)
            value = thread.vpmu.vaccum[fd.slot] + core.pmu.counter(fd.slot).read()
            thread.last_kernel_read_truth[fd.slot] = thread.slot_truth_since_open(
                fd.slot, spec
            )
            return value, None

        return cost, action

    def _sys_perf_close(self, core, thread, args):
        (fd_no,) = args

        def action(core, thread):
            fd = self.perf.close(fd_no)
            core.pmu.counter(fd.slot).deprogram()
            thread.vpmu.free(fd.slot)
            thread.slot_saved[fd.slot] = None
            return fd, None

        return 1500, action

    def _sys_papi_read(self, core, thread, args):
        (indices,) = args
        indices = tuple(indices)
        cost = (
            self._costs.papi_kernel_read_work
            + self._costs.papi_copyout
            + 150 * max(0, len(indices) - 1)
        )

        def action(core, thread):
            values = []
            for idx in indices:
                spec = thread.vpmu.spec(idx)
                value = thread.vpmu.vaccum[idx] + core.pmu.counter(idx).read()
                thread.last_kernel_read_truth[idx] = (
                    thread.slot_truth_since_open(idx, spec)
                )
                values.append(value)
            return values, None

        return cost, action

    def _sys_wait_key(self, core, thread, args):
        """Keyed-event wait: consume a pending credit if one exists,
        otherwise block until a wake_key posts one. The credit semantics
        (a wake with no waiter is remembered) make the primitive race-free
        for building semaphores/condvars in userspace."""
        (key,) = args
        if not isinstance(key, str) or not key:
            raise ConfigError("wait_key needs a non-empty string key")

        def action(core, thread):
            credits = self._key_credits.get(key, 0)
            if credits > 0:
                self._key_credits[key] = credits - 1
                return True, None  # consumed a credit; no blocking
            return False, ("key", key)

        return 900, action

    def _sys_wake_key(self, core, thread, args):
        """Keyed-event wake: release up to ``n`` waiters; excess wakes are
        stored as credits. ``n = -1`` wakes every current waiter and clears
        any stored credits (broadcast)."""
        key, n = args
        if not isinstance(key, str) or not key:
            raise ConfigError("wake_key needs a non-empty string key")

        def action(core, thread):
            fkey = "key:" + key
            if n == -1:
                woken = self.futex.wake(fkey, 1 << 30)
                self._key_credits.pop(key, None)
            else:
                if n < 0:
                    raise ConfigError("wake_key count must be >= 0 or -1")
                woken = self.futex.wake(fkey, n)
                excess = n - len(woken)
                if excess > 0:
                    self._key_credits[key] = (
                        self._key_credits.get(key, 0) + excess
                    )
            for tid in woken:
                self._make_ready(self.threads[tid], at=core.now)
            return len(woken), None

        return 1_100, action

    # -- perf-style event multiplexing ----------------------------------

    def _mux_fold(self, core: Core, thread: SimThread) -> None:
        """Fold the live event's accumulated count into its group entry."""
        state = thread.mux
        ctr = core.pmu.counter(state.slot)
        state.counts[state.active] += (
            thread.vpmu.vaccum[state.slot] + ctr.read()
        )
        thread.vpmu.vaccum[state.slot] = 0
        if ctr.enabled:
            ctr.write(0)
        state.enabled_cpu[state.active] += (
            thread.cpu_cycles - state.active_since_cpu
        )
        state.active_since_cpu = thread.cpu_cycles

    def _mux_rotate(self, core: Core, thread: SimThread) -> None:
        """Rotate the multiplexed group to its next event (timer driven)."""
        state = thread.mux
        self._mux_fold(core, thread)
        state.active = (state.active + 1) % len(state.specs)
        state.rotations += 1
        spec = state.specs[state.active]
        ctr = core.pmu.counter(state.slot)
        if ctr.enabled or core.current_tid == thread.tid:
            ctr.program(spec.event, spec.count_user, spec.count_kernel)
            ctr.write(0)
        # keep the slot's bookkeeping spec in sync with the live event
        thread.vpmu.slots[state.slot] = spec

    def _sys_mux_open(self, core, thread, args):
        events, count_user, count_kernel = args
        events = tuple(events)
        if not events:
            raise ConfigError("mux_open needs at least one event")
        if thread.mux is not None:
            raise ConfigError("thread already has a multiplexed group")
        specs = [
            SlotSpec(
                event=e,
                count_user=count_user,
                count_kernel=count_kernel,
                mode="count",
                owner="perf-mux",
                user_readable=False,
            )
            for e in events
        ]
        cost = 3500 + 2 * self._costs.wrmsr

        def action(core, thread):
            idx = thread.vpmu.allocate(specs[0])
            ctr = core.pmu.counter(idx)
            ctr.program(specs[0].event, count_user, count_kernel)
            ctr.write(0)
            thread.mux = MuxState(
                slot=idx,
                specs=specs,
                truth_base=[thread.slot_truth(s) for s in specs],
                active_since_cpu=thread.cpu_cycles,
                total_cpu_base=thread.cpu_cycles,
            )
            thread.slot_truth_base[idx] = thread.slot_truth(specs[0])
            return idx, None

        return cost, action

    def _sys_mux_read(self, core, thread, args):
        cost = self._costs.perf_read_kernel_work + self._costs.perf_copyout

        def action(core, thread):
            state = thread.mux
            if state is None:
                raise ConfigError("mux_read without a multiplexed group")
            self._mux_fold(core, thread)
            total_cpu = thread.cpu_cycles - state.total_cpu_base
            triples = [
                (state.counts[i], state.enabled_cpu[i], total_cpu)
                for i in range(len(state.specs))
            ]
            thread.last_kernel_read_truth[state.slot] = 0  # unused for mux
            thread.ctx.scratch["_mux_truth"] = [
                thread.slot_truth(spec) - base
                for spec, base in zip(state.specs, state.truth_base)
            ]
            return triples, None

        return cost, action

    def _sys_mux_close(self, core, thread, args):
        def action(core, thread):
            state = thread.mux
            if state is None:
                raise ConfigError("mux_close without a multiplexed group")
            core.pmu.counter(state.slot).deprogram()
            thread.vpmu.free(state.slot)
            thread.slot_saved[state.slot] = None
            thread.mux = None
            return state.rotations, None

        return 1500, action

    # ------------------------------------------------------------------
    # result collection
    # ------------------------------------------------------------------

    def _collect(self) -> RunResult:
        threads = {}
        for tid, t in self.threads.items():
            threads[tid] = ThreadResult(
                tid=tid,
                name=t.name,
                started_at=t.started_at,
                finished_at=t.finished_at,
                user_cycles=t.user_cycles,
                kernel_cycles=t.kernel_cycles,
                n_context_switches=t.n_context_switches,
                n_preemptions=t.n_preemptions,
                n_migrations=t.n_migrations,
                n_cross_socket_migrations=t.n_cross_socket_migrations,
                n_syscalls=t.n_syscalls,
                read_restarts=t.read_restarts,
                events_user=dict(t.ev_user),
                events_kernel=dict(t.ev_kernel),
                regions=t.regions,
            )
        cores = [
            CoreResult(
                core_id=c.core_id,
                final_time=c.now,
                busy_cycles=c.busy_cycles,
                user_cycles=c.user_cycles,
                kernel_cycles=c.kernel_cycles,
            )
            for c in self.machine.cores
        ]
        self.kernel_counters.n_steals = self.scheduler.n_steals
        return RunResult(
            config=self.config,
            wall_cycles=self.machine.max_time(),
            threads=threads,
            cores=cores,
            kernel=self.kernel_counters,
            locks=self.locks.stats(),
            samples=self.perf.all_samples(),
            trace=self.trace,
        )


def run_program(
    specs: list[ThreadSpec], config: SimConfig | None = None
) -> RunResult:
    """Convenience: build an engine, run the threads, return the results."""
    return Engine(config).run(specs)
