"""The operation vocabulary of simulated user programs.

A simulated thread is a Python generator that *yields* operations and
receives each operation's result back via ``send``::

    def worker(ctx):
        yield Compute(10_000, MY_RATES)          # burn 10k cycles
        t0 = yield Rdtsc()                       # returns the TSC value
        yield LockAcquire("table:0")
        yield Compute(500, MY_RATES)
        yield LockRelease("table:0")

Measurement libraries (LiMiT, the PAPI-like baseline, ...) are written as
helper generators used with ``yield from``; their return value is the read
counter value.

Ops are deliberately tiny immutable records; all behaviour lives in the
engine (repro.sim.engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.hw.events import EventRates

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.program import ThreadContext


class Op:
    """Base class of all yieldable operations."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Compute(Op):
    """Execute ``cycles`` of user-mode work with the given event rates.

    Preemptible: may be split across timeslices and interrupted by PMIs.
    """

    cycles: int
    rates: EventRates = field(default_factory=EventRates)

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigError(f"compute cycles must be >= 0, got {self.cycles}")


@dataclass(frozen=True, slots=True)
class Syscall(Op):
    """Invoke a kernel service. Result: handler-specific value.

    ``name`` selects a handler in the kernel's syscall table; ``args`` are
    passed through. Generic work-only syscalls (e.g. modelled I/O) use name
    ``"work"`` with ``args=(kernel_cycles,)``.
    """

    name: str
    args: tuple = ()


@dataclass(frozen=True, slots=True)
class LockAcquire(Op):
    """Acquire a userspace mutex (spin-then-futex). Result: None."""

    lock: str


@dataclass(frozen=True, slots=True)
class LockRelease(Op):
    """Release a userspace mutex. Result: None."""

    lock: str


@dataclass(frozen=True, slots=True)
class Rdpmc(Op):
    """Execute the rdpmc instruction on one virtualized counter slot.

    Result: the raw W-bit hardware counter value. Faults (CounterError)
    if the kernel has not enabled userspace counter reads.
    """

    index: int


@dataclass(frozen=True, slots=True)
class RdpmcDestructive(Op):
    """The paper's proposed read-and-reset counter instruction (hardware
    enhancement): atomically returns the full 64-bit virtualized value since
    the previous destructive read and resets it to zero.

    Because the read is a single instruction, it needs no accumulator load
    and no interrupted-read protection. Result: the delta value (int).
    Only valid on a machine configured with ``destructive_reads`` support.
    """

    index: int


@dataclass(frozen=True, slots=True)
class Rdtsc(Op):
    """Read the timestamp counter. Result: cycle count (int)."""


@dataclass(frozen=True, slots=True)
class PmcReadBegin(Op):
    """Mark entry into the LiMiT read critical region. Result: None.

    While a thread is inside the region, any context switch or PMI sets its
    interrupted flag; PmcReadEnd reports and clears it. This models LiMiT's
    kernel-side check of whether the interrupted PC fell inside the read
    sequence (with restart semantics handled by the library loop).
    """


@dataclass(frozen=True, slots=True)
class PmcReadEnd(Op):
    """Leave the read critical region. Result: True if the read was NOT
    interrupted (value is trustworthy), False if it must be retried."""


@dataclass(frozen=True, slots=True)
class LoadVAccum(Op):
    """Load the 64-bit virtual accumulator of counter slot ``index`` from
    the user-mapped page. Result: the accumulator value (int)."""

    index: int


#: Safety valve for :class:`PmcSafeRead`: a safe read that restarts this many
#: times indicates the thread is being preempted pathologically (or an engine
#: bug). Lives here (not in repro.core.read_protocol, which re-exports it)
#: because the engine executes the restart loop and cannot import repro.core.
MAX_RESTARTS = 1_000


@dataclass(frozen=True, slots=True)
class PmcSafeRead(Op):
    """The complete LiMiT safe read of counter slot ``index`` as one op.

    Semantically identical to the op-by-op sequence it replaces —
    ``Compute(pmc_call_overhead)`` then ``PmcReadBegin`` / ``LoadVAccum`` /
    ``Rdpmc`` / ``PmcReadEnd`` (restarting those four while the kernel
    reports the sequence interrupted) then ``Compute(pmc_store_result)`` —
    but expressed as a single op so the engine runs the whole uninterrupted
    common case in one piece instead of six generator round-trips. When an
    interruption *is* possible (slice boundary, pending PMI, counter about
    to wrap, tracing), the engine falls back to a stage machine with exactly
    the old piece boundaries, so interleavings and results are unchanged.
    Result: the exact virtualized value (accumulator + hardware).
    """

    index: int


@dataclass(frozen=True, slots=True)
class PmcUnsafeRead(Op):
    """The unprotected read of counter slot ``index`` as one op: the
    :class:`PmcSafeRead` sequence without the begin/end interruption check.
    A context switch inside the window silently undercounts (experiment E4);
    the engine's stage machine reproduces that exactly when the window can
    be interrupted. Result: accumulator + hardware (possibly stale).
    """

    index: int


@dataclass(frozen=True, slots=True)
class RegionBegin(Op):
    """Enter a named code region (function, request phase, ...).

    Zero hardware cost unless an instrumenting profiler is attached to the
    thread, in which case the profiler's hook cost is charged. Result: None.
    """

    name: str


@dataclass(frozen=True, slots=True)
class RegionEnd(Op):
    """Leave the innermost region. Result: None."""


@dataclass(frozen=True, slots=True)
class SpawnThread(Op):
    """clone(2): start a new thread. Result: the new thread id (int)."""

    factory: Callable[["ThreadContext"], Any]
    name: str


@dataclass(frozen=True, slots=True)
class JoinThread(Op):
    """Block until thread ``tid`` finishes. Result: None."""

    tid: int


@dataclass(frozen=True, slots=True)
class Sleep(Op):
    """Block without consuming CPU for ``cycles`` (modelled blocking I/O /
    nanosleep). Result: None."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ConfigError(f"sleep cycles must be positive, got {self.cycles}")


@dataclass(frozen=True, slots=True)
class YieldCpu(Op):
    """sched_yield(2). Result: None."""
