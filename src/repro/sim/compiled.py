"""Compiled execution tier: pre-lowered segment tables for thread programs.

The interpreted engine executes one op *piece* per :meth:`Engine._step` —
fetch, begin, per-chunk accounting, advance — and that per-op machinery
dominates sweep wall time once macro-stepping has removed the per-quantum
cost of long solo phases. This module adds a second tier in the spirit of
nanoBench: *lower* a thread program once into flat per-op arrays (cycle
costs and exact per-event accrual deltas as prefix sums), then let the
engine batch-execute whole spans of predicted ops with a handful of integer
adds instead of the full interpreter loop.

Lowering reuses the lint walker front end (:mod:`repro.lint.walker`): the
program's generators are driven against stub contexts — over a **fresh
throwaway build** of the workload, never the live objects a run will use
(walking live session/lock/queue state would corrupt it; see
:mod:`repro.lint.gate` for the same rule) — producing per-thread predicted
op timelines. Because stub results differ from real ones, the predicted
stream is a *hint*, not ground truth: at run time the engine verifies every
fetched op against its prediction and bails to the interpreter on any
divergence, so a wrong table can cost speed but never correctness.

What gets batched (everything else is a segment breaker):

* ``Compute`` — one user phase of ``op.cycles`` at ``op.rates``;
* ``Rdtsc`` — one user phase of ``costs.rdtsc`` at ``LIBRARY_RATES``
  (result: core time after the op, known in advance within a batch);
* ``Syscall("work", (cycles,))`` — three non-preemptible kernel phases
  (entry / body / exit), each accruing from its own cycle 0;
* ``RegionBegin`` / ``RegionEnd`` — zero-cycle bookkeeping, replayed
  exactly (only while no instrumenting profiler is attached, since the
  profiler hook changes their cost and ordering side effects).

Exactness rules (the bailout taxonomy) live in
:meth:`repro.sim.engine.Engine._compiled_batch`: a batch must fit strictly
inside the current timeslice, strictly below the main loop's actor horizon,
wrap no hardware counter, and never run with a PMI pending — every point
where exact interleaving matters falls back to the interpreted loop, which
is what keeps ``RunResult.fingerprint`` bit-identical tier-on vs tier-off.

Prefix tables are built with numpy when available (vectorized multiply /
floor-divide / cumsum over int64, then ``.tolist()`` so the runtime arrays
hold plain Python ints) and by an equivalent pure-python builder otherwise;
``REPRO_COMPILED_NUMPY=0`` forces the fallback for A/B testing.
"""

from __future__ import annotations

import os
import time
from itertools import accumulate
from typing import Any, Callable

from repro.common.config import CostModel, SimConfig
from repro.hw.events import KERNEL_RATES, LIBRARY_RATES
from repro.lint.walker import DEFAULT_MAX_OPS, ThreadWalk, walk_program
from repro.sim import ops

try:  # pragma: no cover - exercised via REPRO_COMPILED_NUMPY legs in CI
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Bump on any change to lowering semantics or table layout; folded into the
#: fabric result-cache salt so compiled-tier entries can never collide with
#: entries produced by a different lowering.
LOWER_VERSION = 1

#: Op kind codes. 0 is a segment breaker; nonzero kinds are batchable.
K_BREAK = 0
K_COMPUTE = 1
K_RDTSC = 2
K_WORK = 3
K_RBEGIN = 4
K_REND = 5

#: Minimum ops in a batch for the bulk commit to beat interpreting them.
MIN_BATCH = 3

#: How far ahead in the predicted stream to look when resynchronising
#: after a divergence (tolerates small insertions/deletions).
RESYNC_WINDOW = 4

#: Consecutive unmatched fetches after which a thread's table is dropped
#: (the prediction has wholesale diverged; stop paying the compare cost).
DEAD_AFTER = 64

#: Below this many ops the pure-python prefix builder wins (numpy array
#: round-trips have fixed cost); only consulted when numpy is available.
_NUMPY_MIN_OPS = 64


class ThreadTable:
    """One thread's lowered program: predicted ops plus prefix-sum tables.

    All prefix arrays have length ``n + 1`` with ``arr[0] == 0``, so the
    exact total over predicted ops ``[i, j)`` is ``arr[j] - arr[i]``:

    * ``cyc`` — cycles (all domains);
    * ``cu`` / ``ck`` — user / kernel cycles (== the CYCLES event tallies);
    * ``eu`` / ``ek`` — per ``Event.index``, user / kernel event deltas,
      computed per *phase* with the engine's running-floor arithmetic
      (``(cycles * ppm) // 1e6`` per phase, summed), so they telescope to
      exactly what per-chunk interpretation accrues.

    ``seg_end[i]`` is one past the last op of the contiguous batchable
    segment containing ``i`` (== ``i`` when op ``i`` is a breaker).

    ``bhead[i]`` is ``seg_end[i]`` when op ``i`` heads a batch worth
    attempting (a batchable run of at least ``MIN_BATCH`` ops) and 0
    otherwise. The fetch hot path consults only this array: non-head
    positions advance the cursor blindly, because prediction accuracy
    only ever matters where a batch could commit — every batched op is
    re-verified against the live stream during replay anyway.
    """

    __slots__ = (
        "name", "tid", "n", "ops", "kinds", "seg_end", "bhead",
        "cyc", "cu", "ck", "eu", "ek", "truncated",
    )

    def __init__(self, name: str, tid: int, ops_list: list,
                 kinds: list[int], seg_end: list[int],
                 cyc: list[int], cu: list[int], ck: list[int],
                 eu: dict[int, list[int]], ek: dict[int, list[int]],
                 truncated: bool) -> None:
        self.name = name
        self.tid = tid
        self.n = len(ops_list)
        self.ops = ops_list
        self.kinds = kinds
        self.seg_end = seg_end
        self.bhead = [
            e if k and e - i >= MIN_BATCH else 0
            for i, (k, e) in enumerate(zip(kinds, seg_end))
        ]
        self.cyc = cyc
        self.cu = cu
        self.ck = ck
        self.eu = eu
        self.ek = ek
        self.truncated = truncated

    def n_lowerable(self) -> int:
        return sum(1 for k in self.kinds if k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ThreadTable {self.name!r} tid={self.tid} n={self.n} "
            f"lowerable={self.n_lowerable()}>"
        )


class ProgramLowering:
    """Lowered tables for one program build, keyed by thread name."""

    __slots__ = ("tables", "stats")

    def __init__(self, tables: dict[str, ThreadTable],
                 stats: dict[str, Any]) -> None:
        self.tables = tables
        self.stats = stats


class _Col:
    """One lowering column: every op's cycles for one (rates, domain,
    phase-slot) combination. Holding ``rates`` pins its id for the dict
    key; ``slot`` keeps an op's same-rates phases (e.g. the three kernel
    phases of a work syscall) in separate columns so each phase floors
    from its own cycle 0, exactly as the engine accrues them."""

    __slots__ = ("rates", "user", "cycles")

    def __init__(self, rates: Any, user: bool, n: int) -> None:
        self.rates = rates
        self.user = user
        self.cycles = [0] * n


def op_matches(op: Any, pred: Any, kind: int) -> bool:
    """Does a fetched op match its prediction closely enough to trust the
    table at this position?

    Batchable kinds compare every field the lowered accounting depends on.
    Breakers (kind 0) run fully interpreted, so only the op *type* (plus
    the syscall name) needs to line up for cursor tracking — their fields
    may legitimately differ from the stub-result walk (e.g. a dynamically
    computed ``Sleep`` duration) without invalidating what follows.
    """
    if type(op) is not type(pred):
        return False
    if kind == K_COMPUTE:
        return op.cycles == pred.cycles and (
            op.rates is pred.rates or op.rates.flat == pred.rates.flat
        )
    if kind == K_WORK:
        return op.name == pred.name and op.args == pred.args
    if kind == K_RBEGIN:
        return op.name == pred.name
    if kind == K_BREAK and type(op) is ops.Syscall:
        return op.name == pred.name
    return True


def _classify(tw: ThreadWalk, costs: CostModel,
              kinds: list[int]) -> dict[tuple[int, bool, int], _Col]:
    """Fill ``kinds`` and return the per-(rates, domain, slot) cycle
    columns for one walked thread."""
    n = len(tw.ops)
    cols: dict[tuple[int, bool, int], _Col] = {}

    def col(rates: Any, user: bool, slot: int) -> list[int]:
        key = (id(rates), user, slot)
        c = cols.get(key)
        if c is None:
            c = cols[key] = _Col(rates, user, n)
        return c.cycles

    for i, o in enumerate(tw.ops):
        t = type(o)
        if t is ops.Compute:
            kinds[i] = K_COMPUTE
            if o.cycles:
                col(o.rates, True, 0)[i] = o.cycles
        elif t is ops.Rdtsc:
            kinds[i] = K_RDTSC
            col(LIBRARY_RATES, True, 0)[i] = costs.rdtsc
        elif (
            t is ops.Syscall
            and o.name == "work"
            and len(o.args) == 1
            and isinstance(o.args[0], int)
            and o.args[0] >= 0
        ):
            kinds[i] = K_WORK
            col(KERNEL_RATES, False, 0)[i] = costs.syscall_entry
            if o.args[0]:
                col(KERNEL_RATES, False, 1)[i] = int(o.args[0])
            col(KERNEL_RATES, False, 2)[i] = costs.syscall_exit
        elif t is ops.RegionBegin:
            kinds[i] = K_RBEGIN
        elif t is ops.RegionEnd:
            kinds[i] = K_REND
        # everything else stays K_BREAK
    return cols


def _prefixes_python(
    cols: dict[tuple[int, bool, int], _Col], n: int
) -> tuple[list[int], list[int], list[int],
           dict[int, list[int]], dict[int, list[int]]]:
    """Pure-python prefix builder (exact reference implementation)."""
    cu_d = [0] * n
    ck_d = [0] * n
    ev_d: dict[tuple[int, bool], list[int]] = {}
    for c in cols.values():
        # Columns are sparse (each holds one op kind's phase), so hoist the
        # nonzero pairs once and reuse them for the domain total and every
        # event rate — the dominant cost of numpy-free lowering otherwise.
        nz = [(i, v) for i, v in enumerate(c.cycles) if v]
        tgt = cu_d if c.user else ck_d
        for i, v in nz:
            tgt[i] += v
        for _event, ppm, idx in c.rates.flat:
            key = (idx, c.user)
            acc = ev_d.get(key)
            if acc is None:
                acc = ev_d[key] = [0] * n
            for i, v in nz:
                acc[i] += (v * ppm) // 1_000_000

    def pref(deltas: list[int]) -> list[int]:
        return list(accumulate(deltas, initial=0))

    cu = pref(cu_d)
    ck = pref(ck_d)
    cyc = [u + k for u, k in zip(cu, ck)]
    eu = {
        idx: pref(d) for (idx, user), d in ev_d.items() if user and any(d)
    }
    ek = {
        idx: pref(d) for (idx, user), d in ev_d.items() if not user and any(d)
    }
    return cyc, cu, ck, eu, ek


def _prefixes_numpy(
    cols: dict[tuple[int, bool, int], _Col], n: int
) -> tuple[list[int], list[int], list[int],
           dict[int, list[int]], dict[int, list[int]]]:
    """Vectorized prefix builder. int64 is exact here: per-phase cycles are
    bounded by max_cycles (~2e12) and ppm by 1e6, so products stay under
    2**63; ``.tolist()`` converts back to plain ints for the runtime."""
    cu_d = _np.zeros(n, dtype=_np.int64)
    ck_d = _np.zeros(n, dtype=_np.int64)
    ev_d: dict[tuple[int, bool], Any] = {}
    for c in cols.values():
        arr = _np.asarray(c.cycles, dtype=_np.int64)
        if c.user:
            cu_d += arr
        else:
            ck_d += arr
        for _event, ppm, idx in c.rates.flat:
            key = (idx, c.user)
            d = (arr * ppm) // 1_000_000
            if key in ev_d:
                ev_d[key] += d
            else:
                ev_d[key] = d

    def pref(deltas: Any) -> list[int]:
        out = _np.empty(n + 1, dtype=_np.int64)
        out[0] = 0
        _np.cumsum(deltas, out=out[1:])
        return out.tolist()

    cu = pref(cu_d)
    ck = pref(ck_d)
    cyc = pref(cu_d + ck_d)
    eu = {
        idx: pref(d) for (idx, user), d in ev_d.items() if user and d.any()
    }
    ek = {
        idx: pref(d)
        for (idx, user), d in ev_d.items()
        if not user and d.any()
    }
    return cyc, cu, ck, eu, ek


def cache_salt(config: SimConfig) -> tuple:
    """Compiled-tier component of content-addressed result-cache keys.

    Folds the lowering/table-format version and the *effective* tier switch
    (config flag AND the ``REPRO_COMPILED_TIER`` env override) into the key,
    so entries computed under one lowering can never be served to a run
    under another. The tier is fingerprint-neutral by design; this is
    defense in depth for the cache, not a correctness dependency.
    """
    enabled = bool(getattr(config, "compiled_tier", False)) and os.environ.get(
        "REPRO_COMPILED_TIER", "1"
    ) != "0"
    return ("compiled-tier", LOWER_VERSION, enabled)


def numpy_enabled() -> bool:
    """Whether the vectorized prefix builder is in use."""
    return _np is not None and os.environ.get(
        "REPRO_COMPILED_NUMPY", "1"
    ) != "0"


def lower_thread(tw: ThreadWalk, costs: CostModel) -> ThreadTable | None:
    """Lower one walked thread into a :class:`ThreadTable`.

    A thread whose walk errored still yields a usable table over the prefix
    it produced before the error (`walk.ops` only holds successfully
    yielded ops); a thread with no ops yields None.
    """
    n = len(tw.ops)
    if n == 0:
        return None
    kinds = [0] * n
    cols = _classify(tw, costs, kinds)
    if numpy_enabled() and n >= _NUMPY_MIN_OPS:
        cyc, cu, ck, eu, ek = _prefixes_numpy(cols, n)
    else:
        cyc, cu, ck, eu, ek = _prefixes_python(cols, n)
    seg_end = [0] * n
    for i in range(n - 1, -1, -1):
        if kinds[i]:
            if i + 1 < n and kinds[i + 1]:
                seg_end[i] = seg_end[i + 1]
            else:
                seg_end[i] = i + 1
        else:
            seg_end[i] = i
    return ThreadTable(
        tw.name, tw.tid, tw.ops, kinds, seg_end,
        cyc, cu, ck, eu, ek, tw.truncated,
    )


def lower_program(
    build: Callable[[], Any],
    config: SimConfig | None = None,
    max_ops: int = DEFAULT_MAX_OPS,
) -> ProgramLowering:
    """Lower a program for the compiled tier.

    ``build`` is a zero-argument callable returning a **fresh** workload
    build — either a spec list or an object with ``.build()``. It must
    construct new session/lock/queue objects on every call: the walk drives
    real generator code against stub contexts, and walking the live
    objects a run will use would corrupt them (double session setup,
    phantom records). :func:`repro.sim.engine.run_program`'s ``lower=``
    parameter passes this straight through.

    The walk uses ``first_tid=1`` so each walk context draws from the same
    seeded per-thread RandomStream the engine will construct, making
    predicted op streams exact for result-independent programs.
    """
    config = config or SimConfig()
    t0 = time.perf_counter()
    specs = build()
    if hasattr(specs, "build"):
        specs = specs.build()
    walk = walk_program(list(specs), config, max_ops=max_ops, first_tid=1)
    costs = config.machine.costs
    tables: dict[str, ThreadTable] = {}
    dup: set[str] = set()
    n_ops = 0
    n_lowerable = 0
    n_errors = 0
    n_truncated = 0
    for tw in walk.threads:
        n_ops += len(tw.ops)
        if tw.walk_error:
            n_errors += 1
        if tw.truncated:
            n_truncated += 1
        if tw.name in dup:
            continue
        if tw.name in tables:
            # Ambiguous spawn names: no table beats a wrong table.
            del tables[tw.name]
            dup.add(tw.name)
            continue
        tbl = lower_thread(tw, costs)
        if tbl is not None:
            tables[tw.name] = tbl
            n_lowerable += tbl.n_lowerable()
    stats = {
        "threads_walked": len(walk.threads),
        "tables": len(tables),
        "ops_walked": n_ops,
        "ops_lowerable": n_lowerable,
        "walk_errors": n_errors,
        "truncated": n_truncated,
        "numpy": numpy_enabled(),
        "wall_seconds": time.perf_counter() - t0,
    }
    return ProgramLowering(tables, stats)
