"""Compiled execution tier: pre-lowered segment tables for thread programs.

The interpreted engine executes one op *piece* per :meth:`Engine._step` —
fetch, begin, per-chunk accounting, advance — and that per-op machinery
dominates sweep wall time once macro-stepping has removed the per-quantum
cost of long solo phases. This module adds a second tier in the spirit of
nanoBench: *lower* a thread program once into flat per-op arrays (cycle
costs and exact per-event accrual deltas as prefix sums), then let the
engine batch-execute whole spans of predicted ops with a handful of integer
adds instead of the full interpreter loop.

Lowering reuses the lint walker front end (:mod:`repro.lint.walker`): the
program's generators are driven against stub contexts — over a **fresh
throwaway build** of the workload, never the live objects a run will use
(walking live session/lock/queue state would corrupt it; see
:mod:`repro.lint.gate` for the same rule) — producing per-thread predicted
op timelines. Because stub results differ from real ones, the predicted
stream is a *hint*, not ground truth: at run time the engine verifies every
fetched op against its prediction and bails to the interpreter on any
divergence, so a wrong table can cost speed but never correctness.

What gets batched (everything else is a segment breaker):

* ``Compute`` — one user phase of ``op.cycles`` at ``op.rates``;
* ``Rdtsc`` — one user phase of ``costs.rdtsc`` at ``LIBRARY_RATES``
  (result: core time after the op, known in advance within a batch);
* ``Syscall("work", (cycles,))`` — three non-preemptible kernel phases
  (entry / body / exit), each accruing from its own cycle 0;
* ``RegionBegin`` / ``RegionEnd`` — zero-cycle bookkeeping, replayed
  exactly (only while no instrumenting profiler is attached, since the
  profiler hook changes their cost and ordering side effects);
* ``LockAcquire`` / ``LockRelease`` — the predicted-uncontended CAS phase
  (``costs.cas`` at ``LIBRARY_RATES``); the engine replays the take /
  release against live lock state and bails (``compiled_contended``) the
  moment the lock is held, owned elsewhere, or has sleepers to wake;
* ``PmcSafeRead`` / ``PmcUnsafeRead`` — the whole composite read protocol
  (the per-phase columns mirror the engine's ``_safe_read_phases``); the
  value and ground-truth capture are executed live through the composite
  fast path at the exact mid-batch cycle, so a read inside a batch is
  bit-identical to the interpreter's one-piece read.

Two-valued results: some breaker ops have exactly two possible results —
``PmcReadEnd`` (interrupted or not) and ``Syscall("wait_key")`` (credit
consumed vs blocked-then-woken). For those the lowering *forks* the walk:
it replays the thread with the alternative result forced at that op and
lowers the diverging continuation into its own table, stored in
``ThreadTable.forks``. The engine picks the matching continuation when the
real result arrives (and bails ``compiled_fork_miss`` if neither matches).

Exactness rules (the bailout taxonomy) live in
:meth:`repro.sim.engine.Engine._compiled_batch`: a batch must fit strictly
inside the current timeslice, strictly below the main loop's actor horizon,
wrap no hardware counter, and never run with a PMI pending — every point
where exact interleaving matters falls back to the interpreted loop, which
is what keeps ``RunResult.fingerprint`` bit-identical tier-on vs tier-off.

Prefix tables are built with numpy when available (vectorized multiply /
floor-divide / cumsum over int64, then ``.tolist()`` so the runtime arrays
hold plain Python ints) and by an equivalent pure-python builder otherwise;
``REPRO_COMPILED_NUMPY=0`` forces the fallback for A/B testing.
"""

from __future__ import annotations

import os
import time
from itertools import accumulate
from typing import Any, Callable

from repro.common.config import CostModel, SimConfig
from repro.hw.events import KERNEL_RATES, LIBRARY_RATES
from repro.lint.walker import (
    DEFAULT_MAX_OPS,
    LintContext,
    ThreadWalk,
    _walk_thread,
    walk_program,
)
from repro.sim import ops

try:  # pragma: no cover - exercised via REPRO_COMPILED_NUMPY legs in CI
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Bump on any change to lowering semantics or table layout; folded into the
#: fabric result-cache salt so compiled-tier entries can never collide with
#: entries produced by a different lowering. v2: lock-pair and composite
#: PMC-read lowering, two-valued prediction forks, lazy clone-time tables.
LOWER_VERSION = 2

#: Op kind codes. 0 is a segment breaker; nonzero kinds are batchable.
K_BREAK = 0
K_COMPUTE = 1
K_RDTSC = 2
K_WORK = 3
K_RBEGIN = 4
K_REND = 5
K_LACQ = 6
K_LREL = 7
K_SREAD = 8
K_UREAD = 9

#: Maximum two-valued prediction forks carried per thread table. Each fork
#: costs one extra replay walk at lowering time; prediction quality past the
#: first few forks is speculative anyway (the forked continuations compound).
MAX_FORKS = 4

#: Cap on lazily lowered clone-time tables per run: spawn-heavy programs
#: (spawn/join loops) would otherwise pay a full walk per clone forever.
LAZY_LOWER_CAP = 64

#: Minimum ops in a batch for the bulk commit to beat interpreting them.
MIN_BATCH = 3

#: How far ahead in the predicted stream to look when resynchronising
#: after a divergence (tolerates small insertions/deletions).
RESYNC_WINDOW = 4

#: Consecutive unmatched fetches after which a thread's table is dropped
#: (the prediction has wholesale diverged; stop paying the compare cost).
DEAD_AFTER = 64

#: Below this many ops the pure-python prefix builder wins (numpy array
#: round-trips have fixed cost); only consulted when numpy is available.
_NUMPY_MIN_OPS = 64


class ThreadTable:
    """One thread's lowered program: predicted ops plus prefix-sum tables.

    All prefix arrays have length ``n + 1`` with ``arr[0] == 0``, so the
    exact total over predicted ops ``[i, j)`` is ``arr[j] - arr[i]``:

    * ``cyc`` — cycles (all domains);
    * ``cu`` / ``ck`` — user / kernel cycles (== the CYCLES event tallies);
    * ``eu`` / ``ek`` — per ``Event.index``, user / kernel event deltas,
      computed per *phase* with the engine's running-floor arithmetic
      (``(cycles * ppm) // 1e6`` per phase, summed), so they telescope to
      exactly what per-chunk interpretation accrues.

    ``seg_end[i]`` is one past the last op of the contiguous batchable
    segment containing ``i`` (== ``i`` when op ``i`` is a breaker).

    ``bhead[i]`` is ``seg_end[i]`` when op ``i`` heads a batch worth
    attempting (a batchable run of at least ``MIN_BATCH`` ops) and 0
    otherwise. The fetch hot path consults only this array: non-head
    positions advance the cursor blindly, because prediction accuracy
    only ever matters where a batch could commit — every batched op is
    re-verified against the live stream during replay anyway.

    ``forks`` maps a breaker op's index to ``(main_value, alt_value,
    alt_table)``: when the live result of the op at that index equals
    ``alt_value`` rather than the walk's stub ``main_value``, the engine
    swaps to ``alt_table`` (the lowered diverging continuation, indexed
    from the op *after* the fork point) and continues predicting. None
    when the thread has no two-valued fork points.
    """

    __slots__ = (
        "name", "tid", "n", "ops", "kinds", "seg_end", "bhead",
        "cyc", "cu", "ck", "eu", "ek", "truncated", "forks",
    )

    def __init__(self, name: str, tid: int, ops_list: list,
                 kinds: list[int], seg_end: list[int],
                 cyc: list[int], cu: list[int], ck: list[int],
                 eu: dict[int, list[int]], ek: dict[int, list[int]],
                 truncated: bool) -> None:
        self.name = name
        self.tid = tid
        self.n = len(ops_list)
        self.ops = ops_list
        self.kinds = kinds
        self.seg_end = seg_end
        self.bhead = [
            e if k and e - i >= MIN_BATCH else 0
            for i, (k, e) in enumerate(zip(kinds, seg_end))
        ]
        self.cyc = cyc
        self.cu = cu
        self.ck = ck
        self.eu = eu
        self.ek = ek
        self.truncated = truncated
        self.forks: dict[int, tuple[Any, Any, "ThreadTable"]] | None = None

    def n_lowerable(self) -> int:
        return sum(1 for k in self.kinds if k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ThreadTable {self.name!r} tid={self.tid} n={self.n} "
            f"lowerable={self.n_lowerable()}>"
        )


class ProgramLowering:
    """Lowered tables for one program build, keyed by thread name.

    ``spawn_factories`` keeps the factory (and the walk's spawn-tid base)
    of every unambiguously named *spawned* thread, so the engine can lower
    a clone's table lazily — with the clone's **real** tid, and therefore
    the real seeded RandomStream — when the eagerly walked tid disagrees
    with the one the run actually assigns (interleaved mid-run spawns).
    """

    __slots__ = ("tables", "stats", "spawn_factories", "max_ops")

    def __init__(self, tables: dict[str, ThreadTable],
                 stats: dict[str, Any],
                 spawn_factories: dict[str, Any] | None = None,
                 max_ops: int = DEFAULT_MAX_OPS) -> None:
        self.tables = tables
        self.stats = stats
        self.spawn_factories = spawn_factories or {}
        self.max_ops = max_ops


class _Col:
    """One lowering column: every op's cycles for one (rates, domain,
    phase-slot) combination. Holding ``rates`` pins its id for the dict
    key; ``slot`` keeps an op's same-rates phases (e.g. the three kernel
    phases of a work syscall) in separate columns so each phase floors
    from its own cycle 0, exactly as the engine accrues them."""

    __slots__ = ("rates", "user", "cycles")

    def __init__(self, rates: Any, user: bool, n: int) -> None:
        self.rates = rates
        self.user = user
        self.cycles = [0] * n


def op_matches(op: Any, pred: Any, kind: int) -> bool:
    """Does a fetched op match its prediction closely enough to trust the
    table at this position?

    Batchable kinds compare every field the lowered accounting depends on.
    Breakers (kind 0) run fully interpreted, so only the op *type* (plus
    the syscall name) needs to line up for cursor tracking — their fields
    may legitimately differ from the stub-result walk (e.g. a dynamically
    computed ``Sleep`` duration) without invalidating what follows.
    """
    if type(op) is not type(pred):
        return False
    if kind == K_COMPUTE:
        return op.cycles == pred.cycles and (
            op.rates is pred.rates or op.rates.flat == pred.rates.flat
        )
    if kind == K_WORK:
        return op.name == pred.name and op.args == pred.args
    if kind == K_RBEGIN:
        return op.name == pred.name
    if kind == K_LACQ or kind == K_LREL:
        return op.lock == pred.lock
    if kind == K_SREAD or kind == K_UREAD:
        return op.index == pred.index
    if kind == K_BREAK and type(op) is ops.Syscall:
        return op.name == pred.name
    return True


def _classify(tw: ThreadWalk, costs: CostModel,
              kinds: list[int]) -> dict[tuple[int, bool, int], _Col]:
    """Fill ``kinds`` and return the per-(rates, domain, slot) cycle
    columns for one walked thread."""
    n = len(tw.ops)
    cols: dict[tuple[int, bool, int], _Col] = {}

    def col(rates: Any, user: bool, slot: int) -> list[int]:
        key = (id(rates), user, slot)
        c = cols.get(key)
        if c is None:
            c = cols[key] = _Col(rates, user, n)
        return c.cycles

    for i, o in enumerate(tw.ops):
        t = type(o)
        if t is ops.Compute:
            kinds[i] = K_COMPUTE
            if o.cycles:
                col(o.rates, True, 0)[i] = o.cycles
        elif t is ops.Rdtsc:
            kinds[i] = K_RDTSC
            col(LIBRARY_RATES, True, 0)[i] = costs.rdtsc
        elif (
            t is ops.Syscall
            and o.name == "work"
            and len(o.args) == 1
            and isinstance(o.args[0], int)
            and o.args[0] >= 0
        ):
            kinds[i] = K_WORK
            col(KERNEL_RATES, False, 0)[i] = costs.syscall_entry
            if o.args[0]:
                col(KERNEL_RATES, False, 1)[i] = int(o.args[0])
            col(KERNEL_RATES, False, 2)[i] = costs.syscall_exit
        elif t is ops.RegionBegin:
            kinds[i] = K_RBEGIN
        elif t is ops.RegionEnd:
            kinds[i] = K_REND
        elif t is ops.LockAcquire:
            # Predicted-uncontended acquire: just the CAS phase. The
            # contended spin/futex continuation is never lowered — the
            # engine bails to the interpreter when the lock is held.
            kinds[i] = K_LACQ
            col(LIBRARY_RATES, True, 0)[i] = costs.cas
        elif t is ops.LockRelease:
            # Predicted-no-sleepers release: the CAS phase; the futex-wake
            # kernel continuation bails to the interpreter.
            kinds[i] = K_LREL
            col(LIBRARY_RATES, True, 0)[i] = costs.cas
        elif t is ops.PmcSafeRead:
            # The whole composite safe-read protocol: six user library
            # phases, each flooring from its own cycle 0 (distinct slots),
            # mirroring the engine's ``_safe_read_phases`` split exactly.
            kinds[i] = K_SREAD
            for slot, cycles in enumerate((
                costs.pmc_call_overhead, costs.pmc_read_begin,
                costs.pmc_load_accum, costs.rdpmc,
                costs.pmc_read_end, costs.pmc_store_result,
            )):
                if cycles:
                    col(LIBRARY_RATES, True, slot)[i] = cycles
        elif t is ops.PmcUnsafeRead:
            kinds[i] = K_UREAD
            for slot, cycles in enumerate((
                costs.pmc_call_overhead, costs.pmc_load_accum,
                costs.rdpmc, costs.pmc_store_result,
            )):
                if cycles:
                    col(LIBRARY_RATES, True, slot)[i] = cycles
        # everything else stays K_BREAK
    return cols


def _prefixes_python(
    cols: dict[tuple[int, bool, int], _Col], n: int
) -> tuple[list[int], list[int], list[int],
           dict[int, list[int]], dict[int, list[int]]]:
    """Pure-python prefix builder (exact reference implementation)."""
    cu_d = [0] * n
    ck_d = [0] * n
    ev_d: dict[tuple[int, bool], list[int]] = {}
    for c in cols.values():
        # Columns are sparse (each holds one op kind's phase), so hoist the
        # nonzero pairs once and reuse them for the domain total and every
        # event rate — the dominant cost of numpy-free lowering otherwise.
        nz = [(i, v) for i, v in enumerate(c.cycles) if v]
        tgt = cu_d if c.user else ck_d
        for i, v in nz:
            tgt[i] += v
        for _event, ppm, idx in c.rates.flat:
            key = (idx, c.user)
            acc = ev_d.get(key)
            if acc is None:
                acc = ev_d[key] = [0] * n
            for i, v in nz:
                acc[i] += (v * ppm) // 1_000_000

    def pref(deltas: list[int]) -> list[int]:
        return list(accumulate(deltas, initial=0))

    cu = pref(cu_d)
    ck = pref(ck_d)
    cyc = [u + k for u, k in zip(cu, ck)]
    eu = {
        idx: pref(d) for (idx, user), d in ev_d.items() if user and any(d)
    }
    ek = {
        idx: pref(d) for (idx, user), d in ev_d.items() if not user and any(d)
    }
    return cyc, cu, ck, eu, ek


def _prefixes_numpy(
    cols: dict[tuple[int, bool, int], _Col], n: int
) -> tuple[list[int], list[int], list[int],
           dict[int, list[int]], dict[int, list[int]]]:
    """Vectorized prefix builder. int64 is exact here: per-phase cycles are
    bounded by max_cycles (~2e12) and ppm by 1e6, so products stay under
    2**63; ``.tolist()`` converts back to plain ints for the runtime."""
    cu_d = _np.zeros(n, dtype=_np.int64)
    ck_d = _np.zeros(n, dtype=_np.int64)
    ev_d: dict[tuple[int, bool], Any] = {}
    for c in cols.values():
        arr = _np.asarray(c.cycles, dtype=_np.int64)
        if c.user:
            cu_d += arr
        else:
            ck_d += arr
        for _event, ppm, idx in c.rates.flat:
            key = (idx, c.user)
            d = (arr * ppm) // 1_000_000
            if key in ev_d:
                ev_d[key] += d
            else:
                ev_d[key] = d

    def pref(deltas: Any) -> list[int]:
        out = _np.empty(n + 1, dtype=_np.int64)
        out[0] = 0
        _np.cumsum(deltas, out=out[1:])
        return out.tolist()

    cu = pref(cu_d)
    ck = pref(ck_d)
    cyc = pref(cu_d + ck_d)
    eu = {
        idx: pref(d) for (idx, user), d in ev_d.items() if user and d.any()
    }
    ek = {
        idx: pref(d)
        for (idx, user), d in ev_d.items()
        if not user and d.any()
    }
    return cyc, cu, ck, eu, ek


def cache_salt(config: SimConfig) -> tuple:
    """Compiled-tier component of content-addressed result-cache keys.

    Folds the lowering/table-format version and the *effective* tier switch
    (config flag AND the ``REPRO_COMPILED_TIER`` env override) into the key,
    so entries computed under one lowering can never be served to a run
    under another. The tier is fingerprint-neutral by design; this is
    defense in depth for the cache, not a correctness dependency.
    """
    enabled = bool(getattr(config, "compiled_tier", False)) and os.environ.get(
        "REPRO_COMPILED_TIER", "1"
    ) != "0"
    return ("compiled-tier", LOWER_VERSION, enabled)


def numpy_enabled() -> bool:
    """Whether the vectorized prefix builder is in use."""
    return _np is not None and os.environ.get(
        "REPRO_COMPILED_NUMPY", "1"
    ) != "0"


def lower_thread(tw: ThreadWalk, costs: CostModel) -> ThreadTable | None:
    """Lower one walked thread into a :class:`ThreadTable`.

    A thread whose walk errored still yields a usable table over the prefix
    it produced before the error (`walk.ops` only holds successfully
    yielded ops); a thread with no ops yields None.
    """
    n = len(tw.ops)
    if n == 0:
        return None
    kinds = [0] * n
    cols = _classify(tw, costs, kinds)
    if numpy_enabled() and n >= _NUMPY_MIN_OPS:
        cyc, cu, ck, eu, ek = _prefixes_numpy(cols, n)
    else:
        cyc, cu, ck, eu, ek = _prefixes_python(cols, n)
    seg_end = [0] * n
    for i in range(n - 1, -1, -1):
        if kinds[i]:
            if i + 1 < n and kinds[i + 1]:
                seg_end[i] = seg_end[i + 1]
            else:
                seg_end[i] = i + 1
        else:
            seg_end[i] = i
    return ThreadTable(
        tw.name, tw.tid, tw.ops, kinds, seg_end,
        cyc, cu, ck, eu, ek, tw.truncated,
    )


def _fork_alt(o: Any) -> tuple[bool, Any]:
    """Is this op a two-valued fork point, and if so what is the
    alternative to the walk's stub result?

    * ``PmcReadEnd`` — stub says True ("not interrupted"); the engine can
      also report False (the read was preempted: take the restart branch);
    * ``Syscall("wait_key")`` — stub says 0 (falsy, like the engine's
      blocked-then-woken False); the alternative is True (a banked credit
      was consumed without blocking).
    """
    t = type(o)
    if t is ops.PmcReadEnd:
        return True, False
    if t is ops.Syscall and o.name == "wait_key":
        return True, True
    return False, None


def _replay_walk(
    tw: ThreadWalk,
    config: SimConfig,
    max_ops: int,
    force_results: dict[int, Any],
) -> ThreadWalk:
    """Re-walk a thread from scratch with forced results at given indices.

    Reuses the original walk's factory and spawn-tid base so the replayed
    prefix (same stub discipline, same RandomStream) is op-for-op the
    recorded one up to the first forced index.
    """
    fw = ThreadWalk(
        name=tw.name, tid=tw.tid, spawned_by=tw.spawned_by,
        factory=tw.factory, spawn_tid_base=tw.spawn_tid_base,
    )
    ctx = LintContext(tw.name, tw.tid, config)
    _walk_thread(
        fw, tw.factory, ctx, config, max_ops,
        spawn_queue=[], spawn_tid_base=tw.spawn_tid_base,
        force_results=force_results,
    )
    return fw


def attach_forks(
    tbl: ThreadTable,
    tw: ThreadWalk,
    costs: CostModel,
    config: SimConfig,
    max_ops: int,
) -> int:
    """Fork the prediction at up to MAX_FORKS two-valued ops.

    For each fork point the thread is replayed with the alternative result
    forced at that index; the diverging continuation (ops after the fork)
    is lowered into its own table, stored in ``tbl.forks``. A replay whose
    prefix fails to reproduce the recorded one (a nondeterministic factory)
    simply records no fork — the run-time verifier covers correctness
    either way. Alt tables never fork again (no nested speculation).
    """
    if tw.factory is None:
        return 0
    forks: dict[int, tuple[Any, Any, ThreadTable]] = {}
    for f, o in enumerate(tw.ops):
        is_fork, alt = _fork_alt(o)
        if not is_fork:
            continue
        fw = _replay_walk(tw, config, max_ops, {f: alt})
        if len(fw.ops) <= f or type(fw.ops[f]) is not type(o):
            continue  # replay did not reproduce the prefix
        cont = ThreadWalk(
            name=tw.name, tid=tw.tid, spawned_by=tw.spawned_by,
            ops=fw.ops[f + 1:], results=fw.results[f + 1:],
            truncated=fw.truncated,
        )
        alt_tbl = lower_thread(cont, costs)
        if alt_tbl is not None:
            forks[f] = (tw.results[f], alt, alt_tbl)
        if len(forks) >= MAX_FORKS:
            break
    if forks:
        tbl.forks = forks
    return len(forks)


def lower_spawned(
    lowering: ProgramLowering,
    name: str,
    tid: int,
    config: SimConfig,
) -> ThreadTable | None:
    """Lazily lower one spawned thread's table at clone time.

    Called by the engine when a mid-run spawn's tid disagrees with the tid
    the eager walk assigned (so the eager table — whose RandomStream was
    seeded with the walked tid — would mispredict every drawn value). The
    walk runs with the clone's *real* tid under a throwaway observation
    scope, exactly like :func:`walk_program` does.
    """
    entry = lowering.spawn_factories.get(name)
    if entry is None:
        return None
    from repro.obs import runtime as obs_runtime

    factory, _eager_base = entry
    max_ops = lowering.max_ops
    # Replays (the main lazy walk and its fork walks) must share one base
    # so their prefixes line up; the engine's true next-tid at future spawn
    # points is unknowable here, and only breaker op fields depend on it.
    tw = ThreadWalk(
        name=name, tid=tid, factory=factory, spawn_tid_base=tid + 1,
    )
    ctx = LintContext(name, tid, config)
    with obs_runtime.collect(label="lint-walk"):
        _walk_thread(
            tw, factory, ctx, config, max_ops,
            spawn_queue=[], spawn_tid_base=tw.spawn_tid_base,
        )
        costs = config.machine.costs
        tbl = lower_thread(tw, costs)
        if tbl is not None:
            attach_forks(tbl, tw, costs, config, max_ops)
    return tbl


def lower_program(
    build: Callable[[], Any],
    config: SimConfig | None = None,
    max_ops: int = DEFAULT_MAX_OPS,
) -> ProgramLowering:
    """Lower a program for the compiled tier.

    ``build`` is a zero-argument callable returning a **fresh** workload
    build — either a spec list or an object with ``.build()``. It must
    construct new session/lock/queue objects on every call: the walk drives
    real generator code against stub contexts, and walking the live
    objects a run will use would corrupt them (double session setup,
    phantom records). :func:`repro.sim.engine.run_program`'s ``lower=``
    parameter passes this straight through.

    The walk uses ``first_tid=1`` so each walk context draws from the same
    seeded per-thread RandomStream the engine will construct, making
    predicted op streams exact for result-independent programs.
    """
    from repro.obs import runtime as obs_runtime

    config = config or SimConfig()
    t0 = time.perf_counter()
    specs = build()
    if hasattr(specs, "build"):
        specs = specs.build()
    walk = walk_program(list(specs), config, max_ops=max_ops, first_tid=1)
    costs = config.machine.costs
    tables: dict[str, ThreadTable] = {}
    spawn_factories: dict[str, Any] = {}
    dup: set[str] = set()
    n_ops = 0
    n_lowerable = 0
    n_errors = 0
    n_forks = 0
    n_truncated = 0
    wall_by_thread: dict[str, float] = {}
    # Fork replays drive real workload generators (like the walk itself);
    # the throwaway scope absorbs any windowed observations they emit.
    with obs_runtime.collect(label="lint-walk"):
        for tw in walk.threads:
            n_ops += len(tw.ops)
            if tw.walk_error:
                n_errors += 1
            if tw.truncated:
                n_truncated += 1
            if tw.name in dup:
                continue
            if tw.name in tables or tw.name in spawn_factories:
                # Ambiguous spawn names: no table beats a wrong table.
                tables.pop(tw.name, None)
                spawn_factories.pop(tw.name, None)
                dup.add(tw.name)
                continue
            t_thr = time.perf_counter()
            tbl = lower_thread(tw, costs)
            if tbl is not None:
                tables[tw.name] = tbl
                n_lowerable += tbl.n_lowerable()
                n_forks += attach_forks(tbl, tw, costs, config, max_ops)
            wall_by_thread[tw.name] = time.perf_counter() - t_thr
            if tw.spawned_by and tw.factory is not None:
                spawn_factories[tw.name] = (tw.factory, tw.spawn_tid_base)
    stats = {
        "threads_walked": len(walk.threads),
        "tables": len(tables),
        "ops_walked": n_ops,
        "ops_lowerable": n_lowerable,
        "walk_errors": n_errors,
        "forks": n_forks,
        "truncated": n_truncated,
        "numpy": numpy_enabled(),
        "wall_seconds": time.perf_counter() - t0,
        "wall_by_thread": wall_by_thread,
    }
    return ProgramLowering(tables, stats, spawn_factories, max_ops)
