"""Userspace synchronization primitives built on the simulated kernel.

The engine provides mutexes (spin-then-futex) natively and a race-free
keyed-event syscall pair (``wait_key`` / ``wake_key`` with wake credits).
This module builds the higher-level primitives multithreaded workloads
need — semaphores, condition variables, barriers and bounded queues — the
same way a userspace runtime would build them on futexes.

All methods are generators (use with ``yield from``). Python-side state
(counters, buffers) is safe to share across thread closures because every
mutation happens under a simulated mutex, and the engine serializes
critical sections in simulated-time order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.common.errors import ConfigError, SimulationError
from repro.sim.ops import LockAcquire, LockRelease, Syscall
from repro.sim.program import ThreadContext


class Semaphore:
    """A counting semaphore.

    The count lives kernel-side as wake credits on the semaphore's key, so
    ``post`` and ``acquire`` are single syscalls and cannot lose wakeups.
    """

    def __init__(self, name: str, initial: int = 0) -> None:
        if initial < 0:
            raise ConfigError("semaphore initial count must be >= 0")
        self.name = name
        self._initial = initial
        self._seeded = False

    def _key(self) -> str:
        return f"sem:{self.name}"

    def seed(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Post the initial count (call once, from any thread, before use)."""
        if self._seeded:
            raise SimulationError(f"semaphore {self.name!r} already seeded")
        self._seeded = True
        if self._initial > 0:
            yield Syscall("wake_key", (self._key(), self._initial))

    def acquire(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """P(): decrement, blocking while the count is zero."""
        yield Syscall("wait_key", (self._key(),))

    def post(self, ctx: ThreadContext, n: int = 1) -> Generator[Any, Any, None]:
        """V(): increment by ``n``, waking blocked acquirers."""
        if n < 1:
            raise ConfigError("post count must be >= 1")
        yield Syscall("wake_key", (self._key(), n))


class CondVar:
    """A condition variable tied to a named engine mutex.

    Uses per-generation keys so a broadcast can never wake a waiter from a
    later generation (no stolen wakeups), mirroring how real futex-based
    condvars version their sequence word.
    """

    def __init__(self, name: str, lock: str) -> None:
        self.name = name
        self.lock = lock
        self._generation = 0
        self._waiters = 0  # protected by self.lock

    def _key(self, generation: int) -> str:
        return f"cv:{self.name}:{generation}"

    def wait(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Release the lock, sleep until signalled, reacquire the lock.

        Caller must hold ``self.lock``; as with pthreads, the predicate
        must be rechecked in a loop around the wait.
        """
        generation = self._generation
        self._waiters += 1
        yield LockRelease(self.lock)
        yield Syscall("wait_key", (self._key(generation),))
        yield LockAcquire(self.lock)

    def signal(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Wake one waiter (caller should hold the lock)."""
        if self._waiters > 0:
            self._waiters -= 1
            yield Syscall("wake_key", (self._key(self._generation), 1))

    def broadcast(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Wake every current waiter (caller should hold the lock)."""
        if self._waiters > 0:
            generation = self._generation
            self._generation += 1
            self._waiters = 0
            yield Syscall("wake_key", (self._key(generation), -1))


class Barrier:
    """An N-party reusable barrier (sense-reversing via generations)."""

    def __init__(self, name: str, parties: int) -> None:
        if parties < 1:
            raise ConfigError("barrier needs at least one party")
        self.name = name
        self.parties = parties
        self._lock = f"barrier:{name}:lock"
        self._count = 0
        self._generation = 0

    def _key(self, generation: int) -> str:
        return f"barrier:{self.name}:{generation}"

    def arrive(self, ctx: ThreadContext) -> Generator[Any, Any, int]:
        """Block until all parties arrive; returns the generation index."""
        yield LockAcquire(self._lock)
        generation = self._generation
        self._count += 1
        if self._count == self.parties:
            self._count = 0
            self._generation += 1
            yield LockRelease(self._lock)
            if self.parties > 1:
                yield Syscall("wake_key", (self._key(generation), -1))
        else:
            yield LockRelease(self._lock)
            yield Syscall("wait_key", (self._key(generation),))
        return generation


class BoundedQueue:
    """A bounded FIFO queue (producer/consumer channel).

    Classic two-condvar construction under one mutex. ``None`` is a legal
    payload; use :meth:`close` + the ``Closed`` sentinel for shutdown.
    """

    class Closed:
        """Sentinel returned by get() after close() drains."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError("queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.lock = f"queue:{name}:lock"
        self._items: deque = deque()
        self._closed = False
        self._not_full = CondVar(f"queue:{name}:not_full", self.lock)
        self._not_empty = CondVar(f"queue:{name}:not_empty", self.lock)
        self.total_put = 0
        self.total_got = 0
        self.max_depth = 0

    def put(self, ctx: ThreadContext, item: Any) -> Generator[Any, Any, None]:
        yield LockAcquire(self.lock)
        while len(self._items) >= self.capacity and not self._closed:
            yield from self._not_full.wait(ctx)
        if self._closed:
            yield LockRelease(self.lock)
            raise SimulationError(f"put() on closed queue {self.name!r}")
        self._items.append(item)
        self.total_put += 1
        self.max_depth = max(self.max_depth, len(self._items))
        yield from self._not_empty.signal(ctx)
        yield LockRelease(self.lock)

    def try_put(self, ctx: ThreadContext, item: Any) -> Generator[Any, Any, bool]:
        """Non-blocking offer: enqueue and return True, or return False when
        the queue is full or closed (never waits on ``not_full``).

        This is the primitive load-shedding admission gates need: a full
        downstream queue is a *signal* (reject/retry/shed upstream), not a
        reason to park the producer and close the loop.
        """
        yield LockAcquire(self.lock)
        if self._closed or len(self._items) >= self.capacity:
            yield LockRelease(self.lock)
            return False
        self._items.append(item)
        self.total_put += 1
        self.max_depth = max(self.max_depth, len(self._items))
        yield from self._not_empty.signal(ctx)
        yield LockRelease(self.lock)
        return True

    def depth(self) -> int:
        """Current queue depth (instantaneous, read without the lock).

        Deterministic despite the lockless read: the host interpreter runs
        one thread program at a time in simulated-time order, so the value
        observed at any yield point is a pure function of the schedule.
        """
        return len(self._items)

    def get(self, ctx: ThreadContext) -> Generator[Any, Any, Any]:
        yield LockAcquire(self.lock)
        while not self._items and not self._closed:
            yield from self._not_empty.wait(ctx)
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            yield from self._not_full.signal(ctx)
            yield LockRelease(self.lock)
            return item
        yield LockRelease(self.lock)
        return BoundedQueue.Closed

    def close(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Mark the queue closed and wake everyone blocked on it."""
        yield LockAcquire(self.lock)
        self._closed = True
        yield from self._not_empty.broadcast(ctx)
        yield from self._not_full.broadcast(ctx)
        yield LockRelease(self.lock)
