"""Results of a simulation run.

The engine assembles a :class:`RunResult` when the last thread finishes. It
contains *ground truth*: exact per-thread, per-domain, per-region event
counts that no measurement tool running inside the simulation can see.
Accuracy experiments compare tool observations against these.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.config import SimConfig
from repro.common.errors import SimulationError
from repro.hw.events import Domain, Event
from repro.kernel.locks import LockStats
from repro.kernel.perf import SampleRecord


@dataclass
class RegionTruth:
    """Ground truth for one region name within one thread."""

    name: str
    invocations: int = 0
    #: exact user-domain event counts accrued while innermost (CYCLES incl.)
    events: dict[Event, int] = field(default_factory=dict)
    #: kernel cycles charged while this region was innermost
    kernel_cycles: int = 0
    #: per-invocation executed cycles (user+kernel), for length histograms
    exec_cycles: list[int] = field(default_factory=list)
    #: per-invocation wall cycles (includes descheduled time)
    wall_cycles: list[int] = field(default_factory=list)

    @property
    def user_cycles(self) -> int:
        return self.events.get(Event.CYCLES, 0)

    @property
    def total_cycles(self) -> int:
        return self.user_cycles + self.kernel_cycles


@dataclass
class ThreadResult:
    """Final, exact statistics of one simulated thread."""

    tid: int
    name: str
    started_at: int
    finished_at: int
    user_cycles: int
    kernel_cycles: int
    n_context_switches: int
    n_preemptions: int
    n_migrations: int
    n_cross_socket_migrations: int
    n_syscalls: int
    read_restarts: int      #: LiMiT safe-read retries this thread performed
    events_user: dict[Event, int]
    events_kernel: dict[Event, int]
    regions: dict[str, RegionTruth]

    @property
    def cpu_cycles(self) -> int:
        return self.user_cycles + self.kernel_cycles

    @property
    def wall_cycles(self) -> int:
        return self.finished_at - self.started_at

    @property
    def kernel_fraction(self) -> float:
        return self.kernel_cycles / self.cpu_cycles if self.cpu_cycles else 0.0

    def truth(self, event: Event, domain: Domain | None = None) -> int:
        """Exact count of ``event`` in the given domain (both if None)."""
        if domain is Domain.USER:
            return self.events_user.get(event, 0)
        if domain is Domain.KERNEL:
            return self.events_kernel.get(event, 0)
        return self.events_user.get(event, 0) + self.events_kernel.get(event, 0)


@dataclass
class CoreResult:
    core_id: int
    final_time: int
    busy_cycles: int
    user_cycles: int
    kernel_cycles: int

    @property
    def idle_cycles(self) -> int:
        return self.final_time - self.busy_cycles

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.final_time if self.final_time else 0.0


@dataclass
class KernelCounters:
    """Aggregate kernel activity during the run."""

    n_context_switches: int = 0
    n_timer_ticks: int = 0
    n_pmis: int = 0
    n_counter_overflows: int = 0
    n_samples: int = 0
    n_syscalls: dict[str, int] = field(default_factory=dict)
    n_futex_waits: int = 0
    n_futex_wakes: int = 0
    n_steals: int = 0

    def syscall_total(self) -> int:
        return sum(self.n_syscalls.values())


@dataclass
class RunResult:
    """Everything a finished simulation exposes."""

    config: SimConfig
    wall_cycles: int
    threads: dict[int, ThreadResult]
    cores: list[CoreResult]
    kernel: KernelCounters
    locks: dict[str, LockStats]
    samples: list[SampleRecord]
    trace: list[tuple] = field(default_factory=list)
    #: simulator self-telemetry (host-side; excluded from fingerprint())
    metrics: dict[str, float] = field(default_factory=dict)

    # -- lookups -----------------------------------------------------------

    def thread_by_name(self, name: str) -> ThreadResult:
        for t in self.threads.values():
            if t.name == name:
                return t
        raise SimulationError(f"no thread named {name!r}")

    def threads_matching(self, prefix: str) -> list[ThreadResult]:
        return [t for t in self.threads.values() if t.name.startswith(prefix)]

    # -- aggregates ----------------------------------------------------------

    @property
    def wall_ns(self) -> float:
        return self.config.machine.frequency.cycles_to_ns(self.wall_cycles)

    def total(self, event: Event, domain: Domain | None = None) -> int:
        return sum(t.truth(event, domain) for t in self.threads.values())

    def total_cpu_cycles(self) -> int:
        return sum(t.cpu_cycles for t in self.threads.values())

    def total_user_cycles(self) -> int:
        return sum(t.user_cycles for t in self.threads.values())

    def total_kernel_cycles(self) -> int:
        return sum(t.kernel_cycles for t in self.threads.values())

    def kernel_fraction(self) -> float:
        cpu = self.total_cpu_cycles()
        return self.total_kernel_cycles() / cpu if cpu else 0.0

    def region_truths(self, name: str) -> list[RegionTruth]:
        """The RegionTruth of ``name`` in every thread that has it."""
        out = []
        for t in self.threads.values():
            if name in t.regions:
                out.append(t.regions[name])
        return out

    def merged_region(self, name: str) -> RegionTruth:
        """Merge one region's truth across all threads."""
        merged = RegionTruth(name=name)
        for rt in self.region_truths(name):
            merged.invocations += rt.invocations
            merged.kernel_cycles += rt.kernel_cycles
            for event, n in rt.events.items():
                merged.events[event] = merged.events.get(event, 0) + n
            merged.exec_cycles.extend(rt.exec_cycles)
            merged.wall_cycles.extend(rt.wall_cycles)
        return merged

    def all_region_names(self) -> list[str]:
        names: set[str] = set()
        for t in self.threads.values():
            names.update(t.regions)
        return sorted(names)

    def samples_in_region(self, region: str) -> list[SampleRecord]:
        return [s for s in self.samples if s.region == region]

    def fingerprint(self) -> str:
        """Digest of every *simulated* quantity in this result.

        Deliberately excludes the host-side extras (``trace``, ``metrics``)
        and the config: two runs of the same workload must produce the same
        fingerprint whether or not tracing/metrics were on. The
        zero-perturbation property tests rest on this.
        """
        def thread_dict(t: ThreadResult) -> dict:
            return {
                "tid": t.tid,
                "name": t.name,
                "started_at": t.started_at,
                "finished_at": t.finished_at,
                "user_cycles": t.user_cycles,
                "kernel_cycles": t.kernel_cycles,
                "n_context_switches": t.n_context_switches,
                "n_preemptions": t.n_preemptions,
                "n_migrations": t.n_migrations,
                "n_cross_socket_migrations": t.n_cross_socket_migrations,
                "n_syscalls": t.n_syscalls,
                "read_restarts": t.read_restarts,
                "events_user": {e.name: n for e, n in sorted(
                    t.events_user.items(), key=lambda kv: kv[0].name)},
                "events_kernel": {e.name: n for e, n in sorted(
                    t.events_kernel.items(), key=lambda kv: kv[0].name)},
                "regions": {
                    name: {
                        "invocations": r.invocations,
                        "events": {e.name: n for e, n in sorted(
                            r.events.items(), key=lambda kv: kv[0].name)},
                        "kernel_cycles": r.kernel_cycles,
                        "exec_cycles": r.exec_cycles,
                        "wall_cycles": r.wall_cycles,
                    }
                    for name, r in sorted(t.regions.items())
                },
            }

        payload = {
            "wall_cycles": self.wall_cycles,
            "threads": {tid: thread_dict(t) for tid, t in sorted(self.threads.items())},
            "cores": [
                {
                    "core_id": c.core_id,
                    "final_time": c.final_time,
                    "busy_cycles": c.busy_cycles,
                    "user_cycles": c.user_cycles,
                    "kernel_cycles": c.kernel_cycles,
                }
                for c in self.cores
            ],
            "kernel": {
                "n_context_switches": self.kernel.n_context_switches,
                "n_timer_ticks": self.kernel.n_timer_ticks,
                "n_pmis": self.kernel.n_pmis,
                "n_counter_overflows": self.kernel.n_counter_overflows,
                "n_samples": self.kernel.n_samples,
                "n_syscalls": dict(sorted(self.kernel.n_syscalls.items())),
                "n_futex_waits": self.kernel.n_futex_waits,
                "n_futex_wakes": self.kernel.n_futex_wakes,
                "n_steals": self.kernel.n_steals,
            },
            "locks": {
                name: {
                    "n_acquires": s.n_acquires,
                    "n_contended": s.n_contended,
                    "n_futex_sleeps": s.n_futex_sleeps,
                    "hold_cycles": s.hold_cycles,
                    "wait_cycles": s.wait_cycles,
                }
                for name, s in sorted(self.locks.items())
            },
            "samples": [
                {
                    "time": s.time,
                    "tid": s.tid,
                    "region": s.region,
                    "event": s.event.name,
                    "fd": s.fd,
                }
                for s in self.samples
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def check_conservation(self) -> None:
        """Assert the core accounting invariants; raises SimulationError.

        * per-core: busy == user + kernel and busy <= final time;
        * machine: sum of thread cpu cycles == sum of core busy cycles.
        """
        for core in self.cores:
            if core.user_cycles + core.kernel_cycles != core.busy_cycles:
                raise SimulationError(
                    f"core {core.core_id}: user {core.user_cycles} + kernel "
                    f"{core.kernel_cycles} != busy {core.busy_cycles}"
                )
            if core.busy_cycles > core.final_time:
                raise SimulationError(
                    f"core {core.core_id}: busy {core.busy_cycles} exceeds "
                    f"final time {core.final_time}"
                )
        thread_cpu = self.total_cpu_cycles()
        core_busy = sum(c.busy_cycles for c in self.cores)
        if thread_cpu != core_busy:
            raise SimulationError(
                f"thread cpu cycles {thread_cpu} != core busy cycles {core_busy}"
            )


def merge_histogram(values: Iterable[int], edges: list[int]) -> list[int]:
    """Bucket values by the given ascending edges; last bucket is overflow.

    Returns len(edges)+1 counts: [<e0, [e0,e1), ..., >=e_last].
    """
    counts = [0] * (len(edges) + 1)
    for v in values:
        placed = False
        for i, edge in enumerate(edges):
            if v < edge:
                counts[i] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    return counts
