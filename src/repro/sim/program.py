"""Thread programs and their runtime context.

A workload is a list of :class:`ThreadSpec`; each spec names a thread and
provides a *program factory*: a callable taking a :class:`ThreadContext` and
returning the generator that yields ops (see repro.sim.ops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.common.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.common.config import CostModel, Frequency
    from repro.sim.engine import Engine, SimThread

ProgramFactory = Callable[["ThreadContext"], Generator[Any, Any, Any]]


@dataclass(frozen=True)
class ThreadSpec:
    """Description of one thread to start at time zero."""

    name: str
    factory: ProgramFactory

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("thread name must be non-empty")
        if not callable(self.factory):
            raise ConfigError(f"factory for {self.name!r} is not callable")


class ThreadContext:
    """Per-thread runtime handle passed to program factories.

    Gives workload code a deterministic RNG stream, its identity, and two
    *meta* observations that real programs could obtain with negligible cost
    and that analyses use for ground-truth labelling:

    * :meth:`now` — the current simulated time (free; analyses only), and
    * :attr:`scratch` — a dict for sessions/workloads to stash Python state.

    Programs must not use :meth:`now` to influence control flow in ways that
    would be impossible on real hardware; measurement libraries use
    ``Rdtsc`` ops (which cost cycles) for in-band timing.
    """

    def __init__(self, name: str, tid: int, rng: RandomStream, engine: "Engine") -> None:
        self.name = name
        self.tid = tid
        self.rng = rng
        self.scratch: dict[str, Any] = {}
        self._engine = engine

    def now(self) -> int:
        """Ground-truth current simulated time of this thread's core."""
        return self._engine.thread_now(self.tid)

    def thread(self) -> "SimThread":
        """The engine-side thread object (analyses and sessions only)."""
        return self._engine.thread(self.tid)

    def service_fault(self, kind: str, tier: str):
        """Consult the run's fault plan at a service-chain hook point.

        Returns the firing :class:`~repro.faults.plan.FaultSpec` (or
        ``None``). A firing opens a detect/miss ledger entry that the
        workload must close with :meth:`service_fault_resolved` once a
        resilience policy has absorbed the fault.
        """
        return self._engine.service_fault(self.tid, kind, tier)

    def service_fault_resolved(self, kind: str, absorbed: bool = True) -> None:
        """Close one open service-fault ledger entry."""
        self._engine.service_fault_resolved(self.tid, kind, absorbed)

    @property
    def frequency(self) -> Frequency:
        return self._engine.config.machine.frequency

    @property
    def costs(self) -> CostModel:
        """The machine's cost model (cycle costs of modelled sequences)."""
        return self._engine.config.machine.costs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThreadContext {self.name!r} tid={self.tid}>"
