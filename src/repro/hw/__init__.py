"""Simulated hardware: events, counters, PMUs, cores."""

from repro.hw.counter import HardwareCounter
from repro.hw.events import (
    CYCLES_PPM,
    Domain,
    Event,
    EventRates,
    KERNEL_RATES,
    LIBRARY_RATES,
    SPIN_RATES,
    cycles_until_count,
    events_in,
)
from repro.hw.machine import Core, Machine
from repro.hw.msr import (
    EVENT_ENCODINGS,
    EventEncoding,
    MsrFile,
    decode_evtsel,
    encode_evtsel,
)
from repro.hw.pmu import Pmu

__all__ = [
    "CYCLES_PPM",
    "Core",
    "Domain",
    "EVENT_ENCODINGS",
    "Event",
    "EventEncoding",
    "EventRates",
    "HardwareCounter",
    "KERNEL_RATES",
    "LIBRARY_RATES",
    "Machine",
    "MsrFile",
    "Pmu",
    "SPIN_RATES",
    "cycles_until_count",
    "decode_evtsel",
    "encode_evtsel",
    "events_in",
]
