"""A single W-bit hardware performance counter."""

from __future__ import annotations

from repro.common.errors import CounterError
from repro.hw.events import Domain, Event


class HardwareCounter:
    """One programmable PMU counter.

    Holds a raw W-bit value that wraps on overflow. Overflows are latched
    (and counted) so the PMI machinery can observe them; the kernel clears
    the latch when it services the interrupt.
    """

    __slots__ = (
        "width",
        "value",
        "event",
        "count_user",
        "count_kernel",
        "enabled",
        "overflow_pending",
        "overflow_total",
        "on_reprogram",
    )

    def __init__(self, width: int) -> None:
        if not (8 <= width <= 64):
            raise CounterError(f"counter width must be in [8, 64], got {width}")
        self.width = width
        self.value = 0
        self.event: Event | None = None
        self.count_user = True
        self.count_kernel = False
        self.enabled = False
        self.overflow_pending = 0   #: overflows latched since last service
        self.overflow_total = 0     #: lifetime overflow count (statistics)
        #: invalidation hook: called whenever the event selection changes so
        #: the owning PMU can drop cached accrual plans.
        self.on_reprogram: "object | None" = None

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def threshold(self) -> int:
        return 1 << self.width

    def program(
        self,
        event: Event,
        count_user: bool = True,
        count_kernel: bool = False,
        enabled: bool = True,
    ) -> None:
        """Program the event-select for this counter (wrmsr semantics)."""
        if not isinstance(event, Event):
            raise CounterError(f"not an Event: {event!r}")
        if not (count_user or count_kernel):
            raise CounterError("counter must count in at least one domain")
        self.event = event
        self.count_user = count_user
        self.count_kernel = count_kernel
        self.enabled = enabled
        if self.on_reprogram is not None:
            self.on_reprogram()

    def deprogram(self) -> None:
        """Disable and forget the event selection."""
        self.event = None
        self.enabled = False
        self.value = 0
        self.overflow_pending = 0
        if self.on_reprogram is not None:
            self.on_reprogram()

    def counts_in(self, domain: Domain) -> bool:
        """Whether this counter accrues events from the given domain."""
        if not self.enabled or self.event is None:
            return False
        if domain is Domain.USER:
            return self.count_user
        return self.count_kernel

    def write(self, value: int) -> None:
        """Set the raw counter value (used for sampling preloads and the
        zero-on-context-switch-in done by counter virtualization)."""
        if value < 0 or value > self.mask:
            raise CounterError(
                f"value {value} out of range for {self.width}-bit counter"
            )
        self.value = value

    def read(self) -> int:
        """Current raw W-bit value (rdpmc semantics)."""
        return self.value

    def accrue(self, n: int) -> int:
        """Add ``n`` events; returns how many overflows occurred (usually 0
        or 1 — the engine splits work so multi-wrap is impossible unless the
        event rate exceeds one event per cycle times the counter period)."""
        if n < 0:
            raise CounterError(f"cannot accrue a negative event count: {n}")
        total = self.value + n
        wraps = total >> self.width
        self.value = total & self.mask
        if wraps:
            self.overflow_pending += wraps
            self.overflow_total += wraps
        return wraps

    def events_until_overflow(self) -> int:
        """How many more events until the counter wraps."""
        return self.threshold - self.value

    def clear_overflow(self) -> int:
        """Service latched overflows; returns how many were pending."""
        pending = self.overflow_pending
        self.overflow_pending = 0
        return pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ev = self.event.value if self.event else "-"
        state = "on" if self.enabled else "off"
        return f"<Counter {ev} {state} value={self.value} w={self.width}>"
