"""The per-core performance monitoring unit.

Holds the programmable counters, the userspace-read-enable bit (the CR4.PCE
analog that the LiMiT kernel patch sets), and the event-accrual entry point
used by the execution engine.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.common.config import PmuConfig
from repro.common.errors import CounterError
from repro.hw.counter import HardwareCounter
from repro.hw.events import Domain, EventRates, cycles_until_count, events_in


class Pmu:
    """Performance monitoring unit of one core."""

    def __init__(self, config: PmuConfig) -> None:
        self.config = config
        self.counters = [
            HardwareCounter(config.effective_width) for _ in range(config.n_counters)
        ]
        #: Whether userspace rdpmc is permitted (CR4.PCE). Off on an
        #: unpatched kernel: a user-mode rdpmc then faults.
        self.user_rdpmc_enabled = False
        #: observability hook: called with the counter index when a counter
        #: wraps during accrual. Installed by the engine only when tracing.
        self.on_overflow: Callable[[int], None] | None = None

    def __len__(self) -> int:
        return len(self.counters)

    def __iter__(self) -> Iterator[HardwareCounter]:
        return iter(self.counters)

    def counter(self, index: int) -> HardwareCounter:
        if not 0 <= index < len(self.counters):
            raise CounterError(
                f"counter index {index} out of range (PMU has {len(self.counters)})"
            )
        return self.counters[index]

    def rdpmc(self, index: int, from_user: bool) -> int:
        """Read a counter the way the rdpmc instruction does.

        Raises CounterError (standing in for #GP) if executed from user mode
        without the enable bit — this is exactly what the LiMiT kernel patch
        changes.
        """
        if from_user and not self.user_rdpmc_enabled:
            raise CounterError(
                "userspace rdpmc faulted: kernel has not enabled CR4.PCE "
                "(LiMiT kernel patch not applied?)"
            )
        return self.counter(index).read()

    # -- engine-facing accounting -----------------------------------------

    def accrue_phase(
        self,
        rates: EventRates,
        domain: Domain,
        phase_cycles_before: int,
        phase_cycles_after: int,
    ) -> list[int]:
        """Accrue events for a slice of a phase executing on this core.

        The slice runs from ``phase_cycles_before`` to ``phase_cycles_after``
        (phase-relative), with the given event rates, in the given domain.
        Returns the list of counter indices that overflowed during the slice.
        """
        overflowed: list[int] = []
        rate_of = rates.ppm
        on_overflow = self.on_overflow
        for index, ctr in enumerate(self.counters):
            if not ctr.counts_in(domain):
                continue
            n = events_in(
                phase_cycles_before, phase_cycles_after, rate_of(ctr.event)
            )
            if n and ctr.accrue(n):
                overflowed.append(index)
                if on_overflow is not None:
                    on_overflow(index)
        return overflowed

    def cycles_to_next_overflow(
        self,
        rates: EventRates,
        domain: Domain,
        phase_cycles_so_far: int,
    ) -> int | None:
        """Exact number of further cycles of the current phase after which
        the *first* enabled counter will overflow, or None if no enabled
        counter can overflow under these rates.

        Used by the engine to split compute phases so PMIs are delivered
        with bounded (configured) skid rather than at arbitrary phase ends.
        """
        best: int | None = None
        for ctr in self.counters:
            if not ctr.counts_in(domain):
                continue
            ppm = rates.ppm(ctr.event)
            d = cycles_until_count(
                phase_cycles_so_far, ppm, ctr.events_until_overflow()
            )
            if d is not None and (best is None or d < best):
                best = d
        return best

    def pending_overflow_indices(self) -> list[int]:
        """Counters with latched, unserviced overflows."""
        return [i for i, c in enumerate(self.counters) if c.overflow_pending]

    def reset(self) -> None:
        """Power-on reset: deprogram everything."""
        for ctr in self.counters:
            ctr.deprogram()
        self.user_rdpmc_enabled = False
