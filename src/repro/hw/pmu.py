"""The per-core performance monitoring unit.

Holds the programmable counters, the userspace-read-enable bit (the CR4.PCE
analog that the LiMiT kernel patch sets), and the event-accrual entry point
used by the execution engine.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.common.config import PmuConfig
from repro.common.errors import CounterError
from repro.hw.counter import HardwareCounter
from repro.hw.events import Domain, EventRates, cycles_until_count, events_in


class Pmu:
    """Performance monitoring unit of one core."""

    def __init__(self, config: PmuConfig) -> None:
        self.config = config
        self.counters = [
            HardwareCounter(config.effective_width) for _ in range(config.n_counters)
        ]
        #: Whether userspace rdpmc is permitted (CR4.PCE). Off on an
        #: unpatched kernel: a user-mode rdpmc then faults.
        self.user_rdpmc_enabled = False
        #: observability hook: called with the counter index when a counter
        #: wraps during accrual. Installed by the engine only when tracing.
        self.on_overflow: Callable[[int], None] | None = None
        #: number of currently enabled counters — the engine's cheap gate to
        #: skip all plan lookup/accrual work when nothing is programmed.
        self.n_enabled = 0
        #: accrual-plan caches for the *current* counter programming, one per
        #: domain, keyed id(rates) (the value keeps a reference to the rates
        #: object so an id can never be recycled while its entry is live).
        self._plans_user: dict[int, tuple[EventRates, tuple]] = {}
        self._plans_kernel: dict[int, tuple[EventRates, tuple]] = {}
        #: per-programming-signature plan sets. Counter virtualization
        #: reprograms the same specs on every context switch; keying the plan
        #: dicts by the (event, domains) signature means an identical
        #: reprogramming swaps the same dicts back in, so plan tuples stay
        #: identical objects for the whole run (downstream caches key on
        #: their ids).
        self._plan_sets: dict[tuple, tuple[dict, dict]] = {
            (): (self._plans_user, self._plans_kernel)
        }
        self._plans_dirty = False
        for ctr in self.counters:
            ctr.on_reprogram = self._invalidate_plans

    def _invalidate_plans(self) -> None:
        self._plans_dirty = True
        self.n_enabled = sum(1 for c in self.counters if c.enabled)

    def flush_plans(self) -> None:
        """Drop every cached accrual plan and plan set.

        Needed when counter *geometry* changes out from under the signature
        key — the signature only covers (index, event, domains), so a
        mid-run width change (fault injection's shrink_counter) would
        otherwise swap stale-mask plans back in on the next reprogram.
        """
        self._plans_user = {}
        self._plans_kernel = {}
        self._plan_sets = {(): (self._plans_user, self._plans_kernel)}
        self._plans_dirty = True

    def _resolve_plans(self) -> None:
        """Swap in the plan dicts matching the current counter programming."""
        sig = tuple(
            (index, ctr.event, ctr.count_user, ctr.count_kernel)
            for index, ctr in enumerate(self.counters)
            if ctr.enabled and ctr.event is not None
        )
        sets = self._plan_sets.get(sig)
        if sets is None:
            sets = self._plan_sets[sig] = ({}, {})
        self._plans_user, self._plans_kernel = sets
        self._plans_dirty = False

    def accrual_plan(
        self, rates: EventRates, domain: Domain
    ) -> tuple[tuple[int, HardwareCounter, int, int], ...]:
        """Flat accrual plan for a (rates, domain) phase: one
        ``(index, counter, ppm, mask)`` entry per enabled counter that counts
        in ``domain`` with a non-zero rate (CYCLES counters at 1e6 ppm).

        Computed once per distinct rates object per counter programming
        signature and cached, so the per-chunk accounting path iterates a
        short tuple instead of re-filtering every counter against every rate.
        """
        if self._plans_dirty:
            self._resolve_plans()
        cache = self._plans_user if domain is Domain.USER else self._plans_kernel
        hit = cache.get(id(rates))
        if hit is not None:
            return hit[1]
        rate_of = rates.ppm
        plan = tuple(
            (index, ctr, rate_of(ctr.event), ctr.mask)
            for index, ctr in enumerate(self.counters)
            if ctr.counts_in(domain) and rate_of(ctr.event) > 0
        )
        cache[id(rates)] = (rates, plan)
        return plan

    def __len__(self) -> int:
        return len(self.counters)

    def __iter__(self) -> Iterator[HardwareCounter]:
        return iter(self.counters)

    def counter(self, index: int) -> HardwareCounter:
        if not 0 <= index < len(self.counters):
            raise CounterError(
                f"counter index {index} out of range (PMU has {len(self.counters)})"
            )
        return self.counters[index]

    def rdpmc(self, index: int, from_user: bool) -> int:
        """Read a counter the way the rdpmc instruction does.

        Raises CounterError (standing in for #GP) if executed from user mode
        without the enable bit — this is exactly what the LiMiT kernel patch
        changes.
        """
        if from_user and not self.user_rdpmc_enabled:
            raise CounterError(
                "userspace rdpmc faulted: kernel has not enabled CR4.PCE "
                "(LiMiT kernel patch not applied?)"
            )
        return self.counter(index).read()

    # -- engine-facing accounting -----------------------------------------

    def accrue_phase(
        self,
        rates: EventRates,
        domain: Domain,
        phase_cycles_before: int,
        phase_cycles_after: int,
    ) -> list[int]:
        """Accrue events for a slice of a phase executing on this core.

        The slice runs from ``phase_cycles_before`` to ``phase_cycles_after``
        (phase-relative), with the given event rates, in the given domain.
        Returns the list of counter indices that overflowed during the slice.
        """
        overflowed: list[int] = []
        plan = self.accrual_plan(rates, domain)
        if not plan:
            return overflowed
        on_overflow = self.on_overflow
        for index, ctr, ppm, _mask in plan:
            n = events_in(phase_cycles_before, phase_cycles_after, ppm)
            if n and ctr.accrue(n):
                overflowed.append(index)
                if on_overflow is not None:
                    on_overflow(index)
        return overflowed

    def cycles_to_next_overflow(
        self,
        rates: EventRates,
        domain: Domain,
        phase_cycles_so_far: int,
    ) -> int | None:
        """Exact number of further cycles of the current phase after which
        the *first* enabled counter will overflow, or None if no enabled
        counter can overflow under these rates.

        Used by the engine to split compute phases so PMIs are delivered
        with bounded (configured) skid rather than at arbitrary phase ends.
        """
        best: int | None = None
        for _index, ctr, ppm, mask in self.accrual_plan(rates, domain):
            d = cycles_until_count(
                phase_cycles_so_far, ppm, mask + 1 - ctr.value
            )
            if d is not None and (best is None or d < best):
                best = d
        return best

    def overflow_crossings(
        self,
        rates: EventRates,
        domain: Domain,
        start: int,
        end: int,
    ) -> list[tuple[int, int]]:
        """All counter-overflow crossings in the phase-relative window
        ``(start, end]``, as ``(phase_cycle, counter_index)`` pairs sorted by
        crossing time (ties by index).

        Generalizes :meth:`cycles_to_next_overflow` from "first crossing"
        to "every crossing in a window", which is what the macro-stepping
        fast path needs to prove a batched jump contains none (or to locate
        them all if it did).
        """
        crossings: list[tuple[int, int]] = []
        for index, ctr, ppm, _mask in self.accrual_plan(rates, domain):
            needed = ctr.events_until_overflow()
            threshold = ctr.threshold
            while True:
                d = cycles_until_count(start, ppm, needed)
                if d is None:
                    break
                at = start + d
                if at > end:
                    break
                crossings.append((at, index))
                needed += threshold
        crossings.sort()
        return crossings

    def pending_overflow_indices(self) -> list[int]:
        """Counters with latched, unserviced overflows."""
        return [i for i, c in enumerate(self.counters) if c.overflow_pending]

    def reset(self) -> None:
        """Power-on reset: deprogram everything."""
        for ctr in self.counters:
            ctr.deprogram()
        self.user_rdpmc_enabled = False
