"""The simulated hardware platform: cores, PMUs, timestamp counter."""

from __future__ import annotations

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError
from repro.hw.pmu import Pmu


class Core:
    """One hardware core: a PMU plus local timing state.

    ``now`` is the core-local clock in cycles. Cores advance independently;
    the engine always commits externally visible actions in global time
    order (see repro.sim.engine).
    """

    __slots__ = (
        "core_id",
        "socket_id",
        "pmu",
        "now",
        "busy_cycles",
        "kernel_cycles",
        "user_cycles",
        "parked",
        "current_tid",
        "pmi_due_at",
        "slice_ends_at",
    )

    def __init__(self, core_id: int, pmu: Pmu, socket_id: int = 0) -> None:
        self.core_id = core_id
        self.socket_id = socket_id
        self.pmu = pmu
        self.now = 0
        self.busy_cycles = 0
        self.kernel_cycles = 0
        self.user_cycles = 0
        self.parked = True          #: no runnable thread; excluded from dispatch
        self.current_tid: int | None = None
        self.pmi_due_at: int | None = None
        self.slice_ends_at: int | None = None

    @property
    def idle_cycles(self) -> int:
        """Cycles this core spent with nothing to run (so far)."""
        return self.now - self.busy_cycles

    def rdtsc(self) -> int:
        """The timestamp counter: invariant TSC == core-local cycle clock
        (all cores are synchronized at reset, as on modern x86)."""
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "parked" if self.parked else "running"
        return f"<Core {self.core_id} now={self.now} {state}>"


class Machine:
    """The full simulated platform."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.cores = [
            Core(i, Pmu(config.pmu), config.socket_of(i))
            for i in range(config.n_cores)
        ]

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> Core:
        if not 0 <= core_id < len(self.cores):
            raise ConfigError(f"no such core: {core_id}")
        return self.cores[core_id]

    def enable_user_rdpmc(self) -> None:
        """Apply the LiMiT kernel patch's CR4.PCE change on every core."""
        for core in self.cores:
            core.pmu.user_rdpmc_enabled = True

    def max_time(self) -> int:
        """The largest core-local clock — the machine-wide horizon."""
        return max(core.now for core in self.cores)

    def total_busy_cycles(self) -> int:
        return sum(core.busy_cycles for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine cores={self.n_cores} t={self.max_time()}>"
