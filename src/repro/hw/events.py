"""Hardware event catalog and event-rate descriptions.

Events are the microarchitectural occurrences a PMU counter can be programmed
to count. Workload phases describe how often each event fires via
:class:`EventRates` — integer events-per-million-cycles (ppm), which keeps the
whole accounting pipeline in exact integer arithmetic:

    events(c cycles) = (c_total * ppm) // 1_000_000   (as a running floor)

so splitting a phase at an arbitrary cycle boundary never loses or invents
events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.common.errors import ConfigError
from repro.common.units import per_kilo_instruction


class Event(enum.Enum):
    """Countable hardware events (a Nehalem-flavoured subset)."""

    CYCLES = "cycles"                      #: unhalted core cycles
    INSTRUCTIONS = "instructions"          #: instructions retired
    LLC_REFERENCES = "llc_references"      #: last-level cache accesses
    LLC_MISSES = "llc_misses"              #: last-level cache misses
    L2_MISSES = "l2_misses"
    L1D_MISSES = "l1d_misses"
    BRANCHES = "branches"                  #: branch instructions retired
    BRANCH_MISSES = "branch_misses"        #: mispredicted branches
    DTLB_MISSES = "dtlb_misses"
    ITLB_MISSES = "itlb_misses"
    STORES = "stores"
    LOADS = "loads"
    STALL_CYCLES = "stall_cycles"          #: cycles with no uop issued
    REMOTE_ACCESSES = "remote_accesses"    #: cross-socket memory accesses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event.{self.name}"

    # Members are singletons, so identity hashing is semantically identical
    # to Enum's default name-based hash — but resolves in C. Event objects
    # key the hottest dicts in the engine (per-thread event tallies), where
    # the Python-level default shows up in profiles.
    __hash__ = object.__hash__


# Dense event indices for array-based tallies: the engine keeps per-thread
# and per-region event counts in flat lists indexed by Event.index instead
# of dicts, so hot accrual loops do list arithmetic only. CYCLES is index 0
# by construction (first member) — the engine relies on that.
for _i, _e in enumerate(Event):
    _e.index = _i
N_EVENTS = len(Event)
assert Event.CYCLES.index == 0


#: Dimension names used by event units (the base dimensions of the
#: analysis expression language's unit system, see repro.analysis.expr).
UNIT_CYCLES = "cycles"
UNIT_INSTRUCTIONS = "instructions"
UNIT_OCCURRENCES = "occurrences"


@dataclass(frozen=True)
class EventMeta:
    """Static metadata of one countable event.

    This table is the single source of truth the analysis checker
    (:mod:`repro.analysis.check`) validates metric expressions against:
    ``unit`` drives dimension checking (adding cycles to instructions is
    rule AN002), ``schedulable`` drives the multiplexing-hazard rule AN007
    (an expression may not need more simultaneously counted events than
    the PMU has programmable counters; a non-schedulable event could never
    be counted at all on this model).
    """

    unit: str        #: UNIT_CYCLES / UNIT_INSTRUCTIONS / UNIT_OCCURRENCES
    category: str    #: coarse grouping for reports (time/work/cache/...)
    #: whether the event can be programmed on any of the model's
    #: general-purpose counters. True for the whole Nehalem-flavoured
    #: subset (the model has no fixed-function-only events); kept explicit
    #: so a future model with fixed counters only flips table entries.
    schedulable: bool = True


#: The checker's event-metadata table. Every Event member has an entry
#: (asserted below); the attributes are also attached to the members
#: themselves (``Event.CYCLES.unit``) for convenient access.
EVENT_META: dict[Event, EventMeta] = {
    Event.CYCLES: EventMeta(UNIT_CYCLES, "time"),
    Event.INSTRUCTIONS: EventMeta(UNIT_INSTRUCTIONS, "work"),
    Event.LLC_REFERENCES: EventMeta(UNIT_OCCURRENCES, "cache"),
    Event.LLC_MISSES: EventMeta(UNIT_OCCURRENCES, "cache"),
    Event.L2_MISSES: EventMeta(UNIT_OCCURRENCES, "cache"),
    Event.L1D_MISSES: EventMeta(UNIT_OCCURRENCES, "cache"),
    # Branches retire as instructions, so branch/instruction mixes are
    # dimensionally coherent; a *misprediction* is a pipeline occurrence.
    Event.BRANCHES: EventMeta(UNIT_INSTRUCTIONS, "branch"),
    Event.BRANCH_MISSES: EventMeta(UNIT_OCCURRENCES, "branch"),
    Event.DTLB_MISSES: EventMeta(UNIT_OCCURRENCES, "tlb"),
    Event.ITLB_MISSES: EventMeta(UNIT_OCCURRENCES, "tlb"),
    Event.STORES: EventMeta(UNIT_INSTRUCTIONS, "memory"),
    Event.LOADS: EventMeta(UNIT_INSTRUCTIONS, "memory"),
    Event.STALL_CYCLES: EventMeta(UNIT_CYCLES, "pipeline"),
    Event.REMOTE_ACCESSES: EventMeta(UNIT_OCCURRENCES, "numa"),
}
assert set(EVENT_META) == set(Event)
for _e in Event:
    _e.unit = EVENT_META[_e].unit
    _e.category = EVENT_META[_e].category
    _e.schedulable = EVENT_META[_e].schedulable


class Domain(enum.Enum):
    """Privilege domain in which work executes. PMU counters can be
    configured to count in either or both domains (the USR/OS bits of the
    IA32_PERFEVTSEL MSRs)."""

    USER = "user"
    KERNEL = "kernel"

    # Same reasoning as Event.__hash__: members are singletons and key hot
    # plan-cache dicts; identity hashing resolves in C.
    __hash__ = object.__hash__


#: Cycles fire once per cycle by definition; its ppm rate is fixed.
CYCLES_PPM = 1_000_000


class EventRates(Mapping[Event, int]):
    """Immutable mapping of Event -> events-per-million-cycles.

    ``CYCLES`` may not appear: it is implicit (every cycle is a cycle).

    Construct either from raw ppm values or with the architecture-friendly
    :meth:`profile` constructor (IPC + per-kilo-instruction miss rates).
    """

    __slots__ = ("_ppm", "flat")

    def __init__(self, ppm: Mapping[Event, int] | None = None) -> None:
        clean: dict[Event, int] = {}
        for event, rate in (ppm or {}).items():
            if not isinstance(event, Event):
                raise ConfigError(f"event keys must be Event, got {event!r}")
            if event is Event.CYCLES:
                raise ConfigError("CYCLES is implicit and cannot be given a rate")
            if not isinstance(rate, int) or rate < 0:
                raise ConfigError(
                    f"rate for {event} must be a non-negative int ppm, got {rate!r}"
                )
            if rate:
                clean[event] = rate
        self._ppm = clean
        #: flat (event, ppm, index) triples, precomputed once at construction
        #: (EventRates is immutable) so per-chunk accrual loops never go back
        #: through the Mapping interface or hash an Event.
        self.flat = tuple((e, r, e.index) for e, r in clean.items())

    @classmethod
    def profile(
        cls,
        ipc: float = 1.0,
        llc_mpki: float = 0.0,
        l2_mpki: float = 0.0,
        l1d_mpki: float = 0.0,
        branch_frac: float = 0.0,
        branch_miss_rate: float = 0.0,
        dtlb_mpki: float = 0.0,
        load_frac: float = 0.0,
        store_frac: float = 0.0,
        stall_frac: float = 0.0,
    ) -> "EventRates":
        """Build rates from the units architecture papers use.

        ``*_mpki`` are misses per kilo-instruction; ``branch_frac`` is the
        fraction of instructions that are branches; ``branch_miss_rate`` is
        the misprediction rate among branches; ``stall_frac`` the fraction of
        cycles stalled.
        """
        if ipc <= 0:
            raise ConfigError(f"IPC must be positive, got {ipc}")
        insn_ppm = round(ipc * 1_000_000)
        ppm: dict[Event, int] = {Event.INSTRUCTIONS: insn_ppm}

        def mpki(event: Event, value: float) -> None:
            if value:
                ppm[event] = per_kilo_instruction(value, ipc)

        mpki(Event.LLC_MISSES, llc_mpki)
        mpki(Event.L2_MISSES, l2_mpki)
        mpki(Event.L1D_MISSES, l1d_mpki)
        mpki(Event.DTLB_MISSES, dtlb_mpki)
        if llc_mpki:
            # References ~ 3x misses by default: a crude but stable inclusive
            # hierarchy assumption, enough for CPI-stack shapes.
            ppm[Event.LLC_REFERENCES] = per_kilo_instruction(llc_mpki * 3.0, ipc)
        if branch_frac:
            branches = round(insn_ppm * branch_frac)
            ppm[Event.BRANCHES] = branches
            if branch_miss_rate:
                ppm[Event.BRANCH_MISSES] = round(branches * branch_miss_rate)
        if load_frac:
            ppm[Event.LOADS] = round(insn_ppm * load_frac)
        if store_frac:
            ppm[Event.STORES] = round(insn_ppm * store_frac)
        if stall_frac:
            if not 0 <= stall_frac <= 1:
                raise ConfigError("stall_frac must be in [0,1]")
            ppm[Event.STALL_CYCLES] = round(stall_frac * 1_000_000)
        return cls(ppm)

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, event: Event) -> int:
        return self._ppm[event]

    def __iter__(self) -> Iterator[Event]:
        return iter(self._ppm)

    def __len__(self) -> int:
        return len(self._ppm)

    def items(self):
        """Direct view of the underlying dict.

        Overrides the ``Mapping`` mixin, which materialises an ItemsView
        that re-hashes every key through ``__getitem__``; the engine
        iterates rates once per executed piece, so this is hot.

        Ordering guarantee: iteration yields ``(event, ppm)`` pairs in the
        insertion order of the mapping given at construction, with
        zero-rate entries dropped (``profile()`` inserts INSTRUCTIONS
        first, then miss/branch/load/store/stall entries in its fixed
        argument order). EventRates is immutable, so this order is stable
        for the lifetime of the object and identical to iteration over the
        mapping itself and to the precomputed ``flat`` triples — accrual
        loops, fingerprints and cache keys may all rely on it.
        """
        return self._ppm.items()

    def ppm(self, event: Event) -> int:
        """Rate for ``event`` in events-per-million-cycles (CYCLES -> 1e6)."""
        if event is Event.CYCLES:
            return CYCLES_PPM
        return self._ppm.get(event, 0)

    def scaled(self, factor: float) -> "EventRates":
        """Return rates scaled by ``factor`` (e.g. pressure sweeps)."""
        if factor < 0:
            raise ConfigError("scale factor must be non-negative")
        return EventRates({e: round(r * factor) for e, r in self._ppm.items()})

    def merged(self, other: "EventRates") -> "EventRates":
        """Return rates where ``other``'s entries override this one's."""
        ppm = dict(self._ppm)
        ppm.update(other._ppm)
        return EventRates(ppm)

    def __repr__(self) -> str:
        inner = ", ".join(f"{e.value}={r}" for e, r in sorted(
            self._ppm.items(), key=lambda kv: kv[0].value))
        return f"EventRates({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventRates):
            return NotImplemented
        return self._ppm == other._ppm

    def __hash__(self) -> int:
        return hash(tuple(sorted((e.value, r) for e, r in self._ppm.items())))


#: Rates used for generic kernel-path work (syscall bodies, switches, PMIs).
#: Kernel code is branchy and cache-unfriendly relative to tuned user loops.
KERNEL_RATES = EventRates.profile(
    ipc=0.9,
    llc_mpki=4.0,
    l2_mpki=12.0,
    branch_frac=0.22,
    branch_miss_rate=0.05,
    dtlb_mpki=1.5,
    stall_frac=0.35,
)

#: Rates for userspace spin-wait loops: high IPC, no misses, all branches.
SPIN_RATES = EventRates.profile(ipc=1.8, branch_frac=0.5, branch_miss_rate=0.01)

#: Rates for straight-line measurement-library code (LiMiT/PAPI user parts).
LIBRARY_RATES = EventRates.profile(ipc=1.4, branch_frac=0.12, branch_miss_rate=0.02)


def events_in(cycles_before: int, cycles_after: int, ppm: int) -> int:
    """Exact number of events fired in ``(cycles_before, cycles_after]`` of a
    phase with rate ``ppm``, using the running-floor rule.

    >>> events_in(0, 1_000_000, 1_500_000)
    1500000
    >>> events_in(10, 20, 500_000)
    5
    """
    if cycles_after < cycles_before:
        raise ValueError("cycles_after must be >= cycles_before")
    return (cycles_after * ppm) // 1_000_000 - (cycles_before * ppm) // 1_000_000


def cycles_until_count(cycles_so_far: int, ppm: int, events_needed: int) -> int | None:
    """Smallest additional cycle count after which ``events_needed`` more
    events will have fired, or None if the rate is zero.

    Exact inverse of :func:`events_in`:

    >>> cycles_until_count(0, 1_000_000, 5)
    5
    >>> cycles_until_count(3, 500_000, 1)
    1
    """
    if events_needed <= 0:
        return 0
    if ppm <= 0:
        return None
    target = (cycles_so_far * ppm) // 1_000_000 + events_needed
    # smallest c_total with (c_total * ppm) // 1e6 >= target
    # <=> c_total * ppm >= target * 1e6  <=> c_total >= ceil(target*1e6/ppm)
    c_total = -((-target * 1_000_000) // ppm)
    return max(0, c_total - cycles_so_far)
