"""Model-specific-register interface to the PMU.

The architectural face of the simulated PMU: the IA32-style MSR address
map (PERFEVTSELx event-select registers, PMCx counters, the global
control/status/overflow-control registers) with Nehalem-era event
encodings. The kernel-facing Python API (`Pmu.counter(...)`) is what the
engine uses internally; this module provides the `rdmsr`/`wrmsr` view a
real kernel patch would program, and is exercised by the hardware tests to
pin down the architectural contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CounterError
from repro.hw.events import Event
from repro.hw.pmu import Pmu

# -- MSR addresses (IA32 architectural performance monitoring v3) -----------

IA32_PMC_BASE = 0x0C1            #: PMC0.. general-purpose counters
IA32_PERFEVTSEL_BASE = 0x186     #: PERFEVTSEL0.. event selects
IA32_PERF_GLOBAL_STATUS = 0x38E
IA32_PERF_GLOBAL_CTRL = 0x38F
IA32_PERF_GLOBAL_OVF_CTRL = 0x390
IA32_TIME_STAMP_COUNTER = 0x010

# -- PERFEVTSEL bit fields ----------------------------------------------------

EVTSEL_EVENT_MASK = 0x0000_00FF
EVTSEL_UMASK_MASK = 0x0000_FF00
EVTSEL_USR = 1 << 16
EVTSEL_OS = 1 << 17
EVTSEL_INT = 1 << 20             #: overflow interrupt enable
EVTSEL_EN = 1 << 22


@dataclass(frozen=True)
class EventEncoding:
    """(event_select, umask) pair for one symbolic event."""

    code: int
    umask: int

    @property
    def evtsel_bits(self) -> int:
        return (self.code & 0xFF) | ((self.umask & 0xFF) << 8)


#: Nehalem-flavoured encodings for the symbolic event catalog.
EVENT_ENCODINGS: dict[Event, EventEncoding] = {
    Event.CYCLES: EventEncoding(0x3C, 0x00),           # CPU_CLK_UNHALTED
    Event.INSTRUCTIONS: EventEncoding(0xC0, 0x00),     # INST_RETIRED.ANY
    Event.LLC_REFERENCES: EventEncoding(0x2E, 0x4F),   # LONGEST_LAT_CACHE.REF
    Event.LLC_MISSES: EventEncoding(0x2E, 0x41),       # LONGEST_LAT_CACHE.MISS
    Event.L2_MISSES: EventEncoding(0x24, 0xAA),        # L2_RQSTS.MISS
    Event.L1D_MISSES: EventEncoding(0x51, 0x01),       # L1D.REPL
    Event.BRANCHES: EventEncoding(0xC4, 0x00),         # BR_INST_RETIRED.ALL
    Event.BRANCH_MISSES: EventEncoding(0xC5, 0x00),    # BR_MISP_RETIRED.ALL
    Event.DTLB_MISSES: EventEncoding(0x49, 0x01),      # DTLB_MISSES.ANY
    Event.ITLB_MISSES: EventEncoding(0x85, 0x01),      # ITLB_MISSES.ANY
    Event.STORES: EventEncoding(0x0B, 0x02),           # MEM_INST_RETIRED.STORES
    Event.LOADS: EventEncoding(0x0B, 0x01),            # MEM_INST_RETIRED.LOADS
    Event.STALL_CYCLES: EventEncoding(0xA2, 0x01),     # RESOURCE_STALLS.ANY
    Event.REMOTE_ACCESSES: EventEncoding(0x0F, 0x10),  # MEM_UNCORE.REMOTE
}

_BY_BITS = {enc.evtsel_bits: event for event, enc in EVENT_ENCODINGS.items()}


def encode_evtsel(
    event: Event,
    usr: bool = True,
    os: bool = False,
    interrupt: bool = False,
    enable: bool = True,
) -> int:
    """Build a PERFEVTSEL value for a symbolic event."""
    enc = EVENT_ENCODINGS.get(event)
    if enc is None:
        raise CounterError(f"no encoding for event {event}")
    value = enc.evtsel_bits
    if usr:
        value |= EVTSEL_USR
    if os:
        value |= EVTSEL_OS
    if interrupt:
        value |= EVTSEL_INT
    if enable:
        value |= EVTSEL_EN
    return value


def decode_evtsel(value: int) -> tuple[Event, bool, bool, bool]:
    """(event, usr, os, enabled) from a PERFEVTSEL value."""
    bits = value & (EVTSEL_EVENT_MASK | EVTSEL_UMASK_MASK)
    event = _BY_BITS.get(bits)
    if event is None:
        raise CounterError(
            f"unknown event encoding {bits:#06x} in PERFEVTSEL value {value:#x}"
        )
    return (
        event,
        bool(value & EVTSEL_USR),
        bool(value & EVTSEL_OS),
        bool(value & EVTSEL_EN),
    )


class MsrFile:
    """rdmsr/wrmsr access to one core's PMU (and TSC)."""

    def __init__(self, pmu: Pmu, tsc_read=lambda: 0) -> None:
        self.pmu = pmu
        self._tsc_read = tsc_read

    # -- reads ---------------------------------------------------------------

    def rdmsr(self, address: int) -> int:
        n = len(self.pmu)
        if IA32_PMC_BASE <= address < IA32_PMC_BASE + n:
            return self.pmu.counter(address - IA32_PMC_BASE).read()
        if IA32_PERFEVTSEL_BASE <= address < IA32_PERFEVTSEL_BASE + n:
            ctr = self.pmu.counter(address - IA32_PERFEVTSEL_BASE)
            if ctr.event is None:
                return 0
            return encode_evtsel(
                ctr.event,
                usr=ctr.count_user,
                os=ctr.count_kernel,
                interrupt=True,
                enable=ctr.enabled,
            )
        if address == IA32_PERF_GLOBAL_STATUS:
            status = 0
            for i, ctr in enumerate(self.pmu):
                if ctr.overflow_pending:
                    status |= 1 << i
            return status
        if address == IA32_PERF_GLOBAL_CTRL:
            ctrl = 0
            for i, ctr in enumerate(self.pmu):
                if ctr.enabled:
                    ctrl |= 1 << i
            return ctrl
        if address == IA32_TIME_STAMP_COUNTER:
            return self._tsc_read()
        raise CounterError(f"rdmsr: unimplemented MSR {address:#x}")

    # -- writes --------------------------------------------------------------

    def wrmsr(self, address: int, value: int) -> None:
        n = len(self.pmu)
        if IA32_PMC_BASE <= address < IA32_PMC_BASE + n:
            self.pmu.counter(address - IA32_PMC_BASE).write(value)
            return
        if IA32_PERFEVTSEL_BASE <= address < IA32_PERFEVTSEL_BASE + n:
            ctr = self.pmu.counter(address - IA32_PERFEVTSEL_BASE)
            if value == 0:
                ctr.deprogram()
                return
            event, usr, os, enabled = decode_evtsel(value)
            ctr.program(event, count_user=usr, count_kernel=os,
                        enabled=enabled)
            return
        if address == IA32_PERF_GLOBAL_OVF_CTRL:
            for i, ctr in enumerate(self.pmu):
                if value & (1 << i):
                    ctr.clear_overflow()
            return
        if address == IA32_PERF_GLOBAL_CTRL:
            for i, ctr in enumerate(self.pmu):
                if ctr.event is not None:
                    ctr.enabled = bool(value & (1 << i))
            return
        raise CounterError(f"wrmsr: unimplemented MSR {address:#x}")
