"""Refutation sweeps: architectural assumptions as testable declarations.

An :class:`Assumption` states something an architect believes about the
machine ("stall fraction grows with lock contention", "MPKI does not
depend on the schedule") as a DSL expression over event counts, plus the
*shape* of the claim — pointwise, monotone along an axis, or invariant
across an axis. :func:`sweep` runs a workload grid through the fabric
(cached, ``--jobs``-parallel, deterministic) and judges every assumption
against the ground-truth counts, returning one of three verdicts:

``supported``
    holds at every grid point with no slack consumed;
``refuted``
    fails somewhere — the verdict carries the concrete counterexample
    configuration, not just a boolean;
``refined``
    holds, but only within an observed slack that is tighter than the
    declared tolerance — the verdict reports the tightened bound the
    data actually supports.

The sweep is fail-closed: assumptions are statically checked
(:func:`repro.analysis.check.check_assumptions`) before any job is
dispatched or served from cache, so a malformed or unfalsifiable claim
(AN001..AN010) aborts the sweep exactly like a hazardous program aborts
the lint gate. A refutation of a statically *invalid* assumption is
meaningless; this layer refuses to produce one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.analysis.check import check_assumptions
from repro.analysis.expr import Expr, Value, env_from_counts, evaluate, parse
from repro.analysis.tree import counts_from_result
from repro.common.config import SimConfig
from repro.common.errors import ConfigError, LintError
from repro.common.tables import render_table

POINTWISE = "pointwise"
MONOTONE = "monotone"
INVARIANT = "invariant"

SUPPORTED = "supported"
REFUTED = "refuted"
REFINED = "refined"
INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class Assumption:
    """One refutable claim about machine behaviour.

    ``kind`` selects the judging rule:

    * ``pointwise`` — ``predicate`` (boolean DSL) must hold at every grid
      point;
    * ``monotone`` — ``subject`` (numeric DSL) must move in ``direction``
      along the ``axis`` coordinate within every series of grid points
      that agree on all other coordinates; adverse movement up to
      ``tolerance`` is slack, beyond it a counterexample;
    * ``invariant`` — ``subject`` must agree (spread at most
      ``tolerance``) across the ``axis`` within every series.

    ``where`` scopes the claim: only grid points whose ``coords`` match
    every ``(key, value)`` pair are judged, so one sweep can host claims
    about different slices of the grid.

    ``metrics`` are local ``$name`` definitions visible to this
    assumption's expressions (on top of nothing — pass the standard set
    explicitly when wanted, so the checker sees exactly what runs).
    """

    name: str
    claim: str
    kind: str
    predicate: Optional[str] = None
    subject: Optional[str] = None
    axis: Optional[str] = None
    direction: str = "increasing"
    tolerance: float = 0.0
    where: Mapping[str, Any] = field(default_factory=dict)
    metrics: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in (POINTWISE, MONOTONE, INVARIANT):
            raise ConfigError(
                f"assumption {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.kind == POINTWISE and not self.predicate:
            raise ConfigError(
                f"assumption {self.name!r}: pointwise needs a predicate"
            )
        if self.kind in (MONOTONE, INVARIANT) and not (
            self.subject and self.axis
        ):
            raise ConfigError(
                f"assumption {self.name!r}: {self.kind} needs a subject "
                "expression and an axis"
            )
        if self.direction not in ("increasing", "decreasing"):
            raise ConfigError(
                f"assumption {self.name!r}: direction must be "
                "'increasing' or 'decreasing'"
            )
        if self.tolerance < 0:
            raise ConfigError(
                f"assumption {self.name!r}: tolerance must be >= 0"
            )


@dataclass(frozen=True)
class GridPoint:
    """One cell of the sweep grid: a fabric job plus its coordinates.

    ``coords`` are the logical sweep coordinates (``threads``, ``seed``,
    ``profile`` ...) that assumptions' ``axis`` names refer to; they are
    what a counterexample reports, independent of how ``kwargs`` encode
    them for the workload factory.
    """

    label: str
    workload: str
    config: SimConfig
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    coords: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Verdict:
    """The judgement of one assumption over one sweep."""

    assumption: str
    claim: str
    kind: str
    verdict: str
    detail: str
    points: int
    counterexample: Optional[dict[str, Any]] = None
    observed: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "assumption": self.assumption,
            "claim": self.claim,
            "kind": self.kind,
            "verdict": self.verdict,
            "detail": self.detail,
            "points": self.points,
            "observed": dict(self.observed),
        }
        if self.counterexample is not None:
            data["counterexample"] = dict(self.counterexample)
        return data


@dataclass(frozen=True)
class SweepResult:
    """All verdicts of one sweep plus its execution footprint."""

    verdicts: tuple[Verdict, ...]
    points: int
    cached_points: int
    failed_points: tuple[str, ...] = ()

    @property
    def refuted(self) -> tuple[Verdict, ...]:
        return tuple(v for v in self.verdicts if v.verdict == REFUTED)

    def as_dict(self) -> dict[str, Any]:
        return {
            "points": self.points,
            "cached_points": self.cached_points,
            "failed_points": list(self.failed_points),
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


# -- judging -----------------------------------------------------------------


def _value(expr: Expr, env: Mapping[str, float], metrics) -> Optional[float]:
    value = evaluate(expr, env, metrics)
    if value is None or isinstance(value, bool):
        return None
    return float(value)


def _series(
    points: Sequence[GridPoint], axis: str
) -> dict[tuple, list[int]]:
    """Group grid-point indices into series that differ only along
    ``axis``; each series is sorted by the axis coordinate."""
    groups: dict[tuple, list[int]] = {}
    for i, point in enumerate(points):
        if axis not in point.coords:
            continue
        key = tuple(
            sorted(
                (k, repr(v)) for k, v in point.coords.items() if k != axis
            )
        )
        groups.setdefault(key, []).append(i)
    for key, members in groups.items():
        members.sort(key=lambda i: points[i].coords[axis])
    return groups


def _coords(point: GridPoint) -> dict[str, Any]:
    return dict(point.coords)


def _judge_pointwise(
    assumption: Assumption,
    points: Sequence[GridPoint],
    envs: Sequence[Mapping[str, float]],
    metrics: Mapping[str, Expr],
) -> Verdict:
    predicate = parse(assumption.predicate or "")
    subject = parse(assumption.subject) if assumption.subject else None
    undefined = 0
    holds = 0
    for point, env in zip(points, envs):
        verdict: Value = evaluate(predicate, env, metrics)
        if verdict is None:
            undefined += 1
            continue
        if not verdict:
            counterexample = {"point": point.label, "coords": _coords(point)}
            if subject is not None:
                counterexample["subject"] = _value(subject, env, metrics)
            return Verdict(
                assumption=assumption.name,
                claim=assumption.claim,
                kind=assumption.kind,
                verdict=REFUTED,
                detail=f"predicate false at {point.label}",
                points=len(points),
                counterexample=counterexample,
                observed={"holds": holds, "undefined": undefined},
            )
        holds += 1
    if holds == 0:
        return Verdict(
            assumption=assumption.name,
            claim=assumption.claim,
            kind=assumption.kind,
            verdict=INCONCLUSIVE,
            detail="predicate undefined at every grid point",
            points=len(points),
            observed={"undefined": undefined},
        )
    return Verdict(
        assumption=assumption.name,
        claim=assumption.claim,
        kind=assumption.kind,
        verdict=SUPPORTED,
        detail=f"predicate holds at all {holds} defined point(s)",
        points=len(points),
        observed={"holds": holds, "undefined": undefined},
    )


def _judge_series(
    assumption: Assumption,
    points: Sequence[GridPoint],
    envs: Sequence[Mapping[str, float]],
    metrics: Mapping[str, Expr],
) -> Verdict:
    """Shared walk for monotone and invariant claims."""
    assert assumption.subject is not None and assumption.axis is not None
    subject = parse(assumption.subject)
    groups = _series(points, assumption.axis)
    sign = 1.0 if assumption.direction == "increasing" else -1.0
    worst_slack = 0.0  # adverse movement / spread actually observed
    worst_example: Optional[dict[str, Any]] = None
    compared = 0
    undefined = 0

    def sample(i: int) -> Optional[float]:
        return _value(subject, envs[i], metrics)

    for members in groups.values():
        valued = []
        for i in members:
            v = sample(i)
            if v is None:
                undefined += 1
            else:
                valued.append((i, v))
        if assumption.kind == MONOTONE:
            pairs = zip(valued, valued[1:])
        else:  # invariant: every value against the series extremes
            if len(valued) < 2:
                continue
            lo = min(valued, key=lambda iv: iv[1])
            hi = max(valued, key=lambda iv: iv[1])
            pairs = [(lo, hi)]
        for (i, vi), (j, vj) in pairs:
            compared += 1
            if assumption.kind == MONOTONE:
                slack = sign * (vi - vj)  # >0: moved against direction
            else:
                slack = abs(vj - vi)  # spread across the axis
            if slack > worst_slack:
                worst_slack = slack
                worst_example = {
                    "axis": assumption.axis,
                    "from": {
                        "point": points[i].label,
                        "coords": _coords(points[i]),
                        "value": vi,
                    },
                    "to": {
                        "point": points[j].label,
                        "coords": _coords(points[j]),
                        "value": vj,
                    },
                }
    if compared == 0:
        return Verdict(
            assumption=assumption.name,
            claim=assumption.claim,
            kind=assumption.kind,
            verdict=INCONCLUSIVE,
            detail=f"no comparable pairs along axis {assumption.axis!r}",
            points=len(points),
            observed={"undefined": undefined},
        )
    observed = {
        "pairs": compared,
        "undefined": undefined,
        "worst_slack": worst_slack,
        "tolerance": assumption.tolerance,
    }
    noun = (
        "adverse movement" if assumption.kind == MONOTONE else "spread"
    )
    if worst_slack > assumption.tolerance:
        return Verdict(
            assumption=assumption.name,
            claim=assumption.claim,
            kind=assumption.kind,
            verdict=REFUTED,
            detail=(
                f"{noun} {worst_slack:.6g} exceeds tolerance "
                f"{assumption.tolerance:.6g} along {assumption.axis!r}"
            ),
            points=len(points),
            counterexample=worst_example,
            observed=observed,
        )
    if worst_slack > 0.0:
        return Verdict(
            assumption=assumption.name,
            claim=assumption.claim,
            kind=assumption.kind,
            verdict=REFINED,
            detail=(
                f"holds, but only within {noun} {worst_slack:.6g}; the "
                f"declared tolerance {assumption.tolerance:.6g} can be "
                f"tightened to {worst_slack:.6g}"
            ),
            points=len(points),
            observed={**observed, "tightened_tolerance": worst_slack},
        )
    return Verdict(
        assumption=assumption.name,
        claim=assumption.claim,
        kind=assumption.kind,
        verdict=SUPPORTED,
        detail=f"holds with zero {noun} over {compared} pair(s)",
        points=len(points),
        observed=observed,
    )


def judge(
    assumption: Assumption,
    points: Sequence[GridPoint],
    envs: Sequence[Mapping[str, float]],
) -> Verdict:
    """Judge one assumption against evaluated grid environments."""
    if assumption.where:
        scoped = [
            (p, e)
            for p, e in zip(points, envs)
            if all(
                p.coords.get(k) == v for k, v in assumption.where.items()
            )
        ]
        points = [p for p, _ in scoped]
        envs = [e for _, e in scoped]
    metrics = {name: parse(src) for name, src in assumption.metrics.items()}
    if assumption.kind == POINTWISE:
        return _judge_pointwise(assumption, points, envs, metrics)
    return _judge_series(assumption, points, envs, metrics)


# -- the sweep ---------------------------------------------------------------


def precheck(
    assumptions: Iterable[Assumption], config: Optional[SimConfig] = None
):
    """Fail-closed static gate: raise LintError unless every assumption
    passes its AN checks at strict severity (warnings included — an
    unfalsifiable claim must not reach the fabric)."""
    assumptions = list(assumptions)
    report = check_assumptions(assumptions, config=config)
    if not report.ok(strict=True):
        raise LintError(
            "refutation sweep rejected before dispatch: "
            f"{report.summary_line()}\n"
            + "\n".join("  " + f.render() for f in report.findings)
        )
    return report


def sweep(
    assumptions: Sequence[Assumption],
    grid: Sequence[GridPoint],
    *,
    jobs: int | None = None,
    static_check: bool = True,
) -> SweepResult:
    """Run the grid through the fabric and judge every assumption.

    Deterministic: outcomes come back in grid order and judging is pure,
    so serial and ``jobs``-parallel sweeps produce identical verdicts
    (the fabric's cache makes repeat sweeps free).
    """
    from repro.fabric import RunJob, run_many

    if static_check:
        precheck(assumptions, config=grid[0].config if grid else None)
    run_jobs = [
        RunJob(
            workload=point.workload,
            config=point.config,
            kwargs=dict(point.kwargs),
            label=point.label,
        )
        for point in grid
    ]
    outcomes = run_many(run_jobs, jobs_n=jobs)
    kept_points: list[GridPoint] = []
    envs: list[dict[str, float]] = []
    failed: list[str] = []
    cached = 0
    for point, outcome in zip(grid, outcomes):
        if getattr(outcome, "result", None) is None:
            failed.append(point.label)
            continue
        cached += 1 if outcome.cached else 0
        kept_points.append(point)
        envs.append(env_from_counts(counts_from_result(outcome.result)))
    verdicts = tuple(
        judge(assumption, kept_points, envs) for assumption in assumptions
    )
    return SweepResult(
        verdicts=verdicts,
        points=len(grid),
        cached_points=cached,
        failed_points=tuple(failed),
    )


def verdict_report(result: SweepResult) -> str:
    """Render a sweep's verdicts as a table."""
    rows = []
    for v in result.verdicts:
        rows.append([v.assumption, v.kind, v.verdict, v.points, v.detail])
    table = render_table(
        ["assumption", "kind", "verdict", "points", "detail"],
        rows,
        title=(
            f"refutation sweep: {len(result.verdicts)} assumption(s) over "
            f"{result.points} grid point(s) ({result.cached_points} cached)"
        ),
        align_right_from=3,
    )
    if result.failed_points:
        table += "\nfailed points: " + ", ".join(result.failed_points)
    return table
