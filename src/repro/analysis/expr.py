"""Declarative expression language over hardware event counts.

Metrics, metric-tree nodes and refutable assumptions are written as small
expressions over event names and other metrics instead of ad-hoc Python,
so the static checker (:mod:`repro.analysis.check`) can validate them
against the machine model *before* anything runs:

    ratio(stall_cycles, cycles)                  # a metric
    per_kilo_insn(llc_misses) < 5.0              # a predicate
    $stalled - ratio(stall_cycles, cycles) == 0  # references metric $stalled

Grammar (see docs/analysis.md for the full catalog):

* event names are bare identifiers matching ``Event`` values
  (``cycles``, ``llc_misses``, ...);
* derived-metric references are spelled ``$name`` — the sigil separates
  "unknown event" (rule AN001) from "dangling metric reference" (AN005)
  syntactically instead of by guesswork;
* arithmetic ``+ - * /``, comparisons ``< <= > >= == !=``, boolean
  ``and or not``, parentheses;
* functions: ``ratio(a, b)`` (guarded division: undefined when ``b`` is
  zero), ``per_kilo_insn(x)`` (``1000*x`` per instruction, guarded),
  ``guard(x, default)`` (replaces an undefined value), ``min(a, b)``,
  ``max(a, b)``, ``penalty(count, cycles_each)`` (count times a literal
  cycles-per-event weight; the unit-sound spelling of a CPI-stack term —
  the result carries the ``cycles`` unit).

Values are ``float | bool | None``: ``None`` is *undefined* (a division
with a zero denominator, or a metric over counts that were never
collected) and propagates through arithmetic and comparisons; ``guard``
is the only way to stop it. Evaluating an expression the checker passed
never raises against any count vector (property-tested).

The module also carries the unit algebra (dimension vectors over the base
units declared in :data:`repro.hw.events.EVENT_META`) and the interval
arithmetic the checker uses to decide whether a denominator can be zero
or a predicate can ever be true.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Optional, Union

from repro.common.errors import ReproError
from repro.hw.events import Event


class ExprError(ReproError):
    """Raised on malformed expression source or invalid evaluation."""

    def __init__(self, message: str, pos: int = 0) -> None:
        super().__init__(message)
        self.pos = pos


#: Evaluation result: a number, a predicate verdict, or undefined.
Value = Union[float, bool, None]

_EVENT_BY_NAME: dict[str, Event] = {e.value: e for e in Event}


# -- units -------------------------------------------------------------------


@dataclass(frozen=True)
class Unit:
    """A dimension vector: sorted (dimension, exponent) pairs, exponents
    never zero. ``Unit(())`` is dimensionless."""

    dims: tuple[tuple[str, int], ...] = ()

    @classmethod
    def base(cls, dim: str) -> "Unit":
        return cls(((dim, 1),))

    def _combine(self, other: "Unit", sign: int) -> "Unit":
        acc = dict(self.dims)
        for dim, exp in other.dims:
            acc[dim] = acc.get(dim, 0) + sign * exp
        return Unit(tuple(sorted((d, e) for d, e in acc.items() if e)))

    def mul(self, other: "Unit") -> "Unit":
        return self._combine(other, 1)

    def div(self, other: "Unit") -> "Unit":
        return self._combine(other, -1)

    @property
    def dimensionless(self) -> bool:
        return not self.dims

    def __str__(self) -> str:
        if not self.dims:
            return "1"
        num = [d if e == 1 else f"{d}^{e}" for d, e in self.dims if e > 0]
        den = [d if e == -1 else f"{d}^{-e}" for d, e in self.dims if e < 0]
        head = "*".join(num) or "1"
        return f"{head}/{'*'.join(den)}" if den else head


DIMENSIONLESS = Unit()


def event_unit(event: Event) -> Unit:
    """The unit of one event count, from the EVENT_META table."""
    return Unit.base(event.unit)


# -- intervals ---------------------------------------------------------------


def _mul_ep(a: float, b: float) -> float:
    # Endpoint product with the interval convention 0 * inf = 0 (an exact
    # zero bound annihilates even an unbounded factor).
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


@dataclass(frozen=True)
class Interval:
    """Closed interval [lo, hi]; endpoints may be ±inf."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ExprError(f"empty interval [{self.lo}, {self.hi}]")

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        products = [
            _mul_ep(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(products), max(products))

    def div(self, other: "Interval") -> "Interval":
        """Conservative quotient over the non-zero part of ``other``
        (whether zero *can* occur is tracked separately as undefinedness)."""
        if other.lo < 0.0 < other.hi or other == Interval(0.0, 0.0):
            # Denominator spans zero (or is identically zero): quotients
            # of either sign and any magnitude are possible.
            return Interval(-math.inf, math.inf)
        candidates = []
        for b in (other.lo, other.hi):
            if b == 0.0:
                continue  # excluded point; limit handled by the other bound
            for a in (self.lo, self.hi):
                if math.isinf(a) and math.isinf(b):
                    candidates.append(0.0 if (a > 0) == (b > 0) else 0.0)
                elif math.isinf(b):
                    candidates.append(0.0)
                else:
                    candidates.append(a / b)
        # A denominator bound of 0 means magnitudes are unbounded toward
        # the sign of numerator/denominator; widen to infinity there.
        if other.lo == 0.0 or other.hi == 0.0:
            if self.hi > 0.0:
                candidates.append(math.inf if other.hi > 0.0 else -math.inf)
            if self.lo < 0.0:
                candidates.append(-math.inf if other.hi > 0.0 else math.inf)
        if not candidates:
            return Interval(-math.inf, math.inf)
        return Interval(min(candidates), max(candidates))

    def contains_zero(self) -> bool:
        return self.lo <= 0.0 <= self.hi

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))


#: Default static bound of any raw event count: non-negative, unbounded.
COUNT_INTERVAL = Interval(0.0, math.inf)


# -- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    """Base AST node; ``pos`` is the 0-based source offset (findings
    report it as a 1-based column)."""

    pos: int


@dataclass(frozen=True)
class Num(Node):
    value: float


@dataclass(frozen=True)
class EventRef(Node):
    """A bare identifier: an event of the machine model (``event`` is None
    when the name matches no Event — rule AN001)."""

    name: str
    event: Optional[Event]


@dataclass(frozen=True)
class MetricRef(Node):
    """A ``$name`` reference to another declared metric."""

    name: str


@dataclass(frozen=True)
class Neg(Node):
    operand: Node


@dataclass(frozen=True)
class BinOp(Node):
    op: str  #: one of + - * /
    left: Node
    right: Node


@dataclass(frozen=True)
class Call(Node):
    func: str
    args: tuple[Node, ...]


@dataclass(frozen=True)
class Cmp(Node):
    op: str  #: one of < <= > >= == !=
    left: Node
    right: Node


@dataclass(frozen=True)
class BoolOp(Node):
    op: str  #: "and" | "or"
    left: Node
    right: Node


@dataclass(frozen=True)
class Not(Node):
    operand: Node


#: function name -> arity
FUNCTIONS: dict[str, int] = {
    "ratio": 2,
    "per_kilo_insn": 1,
    "guard": 2,
    "min": 2,
    "max": 2,
    "penalty": 2,
}


@dataclass(frozen=True)
class Expr:
    """A parsed expression: source text plus its AST root."""

    source: str
    root: Node

    def __str__(self) -> str:
        return self.source


# -- tokenizer / parser ------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<num>\d[\d_]*(\.[\d_]+)?([eE][+-]?\d+)?)
  | (?P<metric>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|[-+*/(),<>])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_KEYWORDS = ("and", "or", "not")


@dataclass(frozen=True)
class _Token:
    kind: str  #: num | metric | name | op | end
    text: str
    pos: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ExprError(
                f"unexpected character {source[pos]!r} at column {pos + 1}",
                pos,
            )
        kind = str(match.lastgroup)
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), match.start()))
        pos = match.end()
    tokens.append(_Token("end", "", len(source)))
    return tokens


class _Parser:
    """Recursive-descent parser for the grammar in the module docstring."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = _tokenize(source)
        self.i = 0

    @property
    def tok(self) -> _Token:
        return self.tokens[self.i]

    def advance(self) -> _Token:
        token = self.tokens[self.i]
        self.i += 1
        return token

    def expect(self, text: str) -> _Token:
        if self.tok.kind == "op" and self.tok.text == text:
            return self.advance()
        raise ExprError(
            f"expected {text!r} at column {self.tok.pos + 1}, "
            f"got {self.tok.text or 'end of input'!r}",
            self.tok.pos,
        )

    def at_op(self, *texts: str) -> bool:
        return self.tok.kind == "op" and self.tok.text in texts

    def at_keyword(self, word: str) -> bool:
        return self.tok.kind == "name" and self.tok.text == word

    def parse(self) -> Node:
        node = self.bool_expr()
        if self.tok.kind != "end":
            raise ExprError(
                f"trailing input at column {self.tok.pos + 1}: "
                f"{self.tok.text!r}",
                self.tok.pos,
            )
        return node

    def bool_expr(self) -> Node:
        node = self.bool_term()
        while self.at_keyword("or"):
            pos = self.advance().pos
            node = BoolOp(pos=pos, op="or", left=node, right=self.bool_term())
        return node

    def bool_term(self) -> Node:
        node = self.bool_factor()
        while self.at_keyword("and"):
            pos = self.advance().pos
            node = BoolOp(pos=pos, op="and", left=node, right=self.bool_factor())
        return node

    def bool_factor(self) -> Node:
        if self.at_keyword("not"):
            pos = self.advance().pos
            return Not(pos=pos, operand=self.bool_factor())
        return self.comparison()

    def comparison(self) -> Node:
        node = self.arith()
        if self.at_op("<", "<=", ">", ">=", "==", "!="):
            token = self.advance()
            node = Cmp(pos=token.pos, op=token.text, left=node, right=self.arith())
        return node

    def arith(self) -> Node:
        node = self.term()
        while self.at_op("+", "-"):
            token = self.advance()
            node = BinOp(
                pos=token.pos, op=token.text, left=node, right=self.term()
            )
        return node

    def term(self) -> Node:
        node = self.factor()
        while self.at_op("*", "/"):
            token = self.advance()
            node = BinOp(
                pos=token.pos, op=token.text, left=node, right=self.factor()
            )
        return node

    def factor(self) -> Node:
        if self.at_op("-"):
            pos = self.advance().pos
            return Neg(pos=pos, operand=self.factor())
        return self.atom()

    def atom(self) -> Node:
        token = self.tok
        if token.kind == "num":
            self.advance()
            return Num(pos=token.pos, value=float(token.text.replace("_", "")))
        if token.kind == "metric":
            self.advance()
            return MetricRef(pos=token.pos, name=token.text[1:])
        if token.kind == "name":
            if token.text in _KEYWORDS:
                raise ExprError(
                    f"unexpected keyword {token.text!r} at column "
                    f"{token.pos + 1}",
                    token.pos,
                )
            self.advance()
            if self.at_op("("):
                self.advance()
                args: list[Node] = []
                if not self.at_op(")"):
                    args.append(self.bool_expr())
                    while self.at_op(","):
                        self.advance()
                        args.append(self.bool_expr())
                self.expect(")")
                return Call(pos=token.pos, func=token.text, args=tuple(args))
            return EventRef(
                pos=token.pos,
                name=token.text,
                event=_EVENT_BY_NAME.get(token.text),
            )
        if self.at_op("("):
            self.advance()
            node = self.bool_expr()
            self.expect(")")
            return node
        raise ExprError(
            f"expected an expression at column {token.pos + 1}, got "
            f"{token.text or 'end of input'!r}",
            token.pos,
        )


def parse(source: str) -> Expr:
    """Parse ``source`` into an :class:`Expr` (raises :class:`ExprError`
    with a position on malformed input)."""
    if not source or not source.strip():
        raise ExprError("empty expression")
    return Expr(source=source, root=_Parser(source).parse())


# -- traversal ---------------------------------------------------------------


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every descendant (pre-order)."""
    yield node
    if isinstance(node, (Neg, Not)):
        yield from walk(node.operand)
    elif isinstance(node, (BinOp, Cmp, BoolOp)):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, Call):
        for arg in node.args:
            yield from walk(arg)


def metric_refs(expr: Expr) -> tuple[str, ...]:
    """Names of the ``$metrics`` this expression references directly,
    in first-appearance order."""
    seen: dict[str, None] = {}
    for node in walk(expr.root):
        if isinstance(node, MetricRef):
            seen.setdefault(node.name)
    return tuple(seen)


def referenced_events(
    expr: Expr, metrics: Mapping[str, Expr] | None = None
) -> frozenset[str]:
    """Every event name the expression needs counted, following metric
    references transitively (cycle-safe: each metric expands once).
    ``per_kilo_insn`` implicitly counts instructions."""
    metrics = metrics or {}
    events: set[str] = set()
    expanded: set[str] = set()
    stack = [expr.root]
    while stack:
        for node in walk(stack.pop()):
            if isinstance(node, EventRef):
                events.add(node.name)
            elif isinstance(node, Call) and node.func == "per_kilo_insn":
                events.add(Event.INSTRUCTIONS.value)
            elif isinstance(node, MetricRef) and node.name not in expanded:
                expanded.add(node.name)
                target = metrics.get(node.name)
                if target is not None:
                    stack.append(target.root)
    return frozenset(events)


# -- evaluation --------------------------------------------------------------


def _num(value: Value) -> Optional[float]:
    """Coerce to float for arithmetic; bool results never feed arithmetic
    on checked expressions, but unchecked evaluation tolerates them as
    0/1 rather than crashing."""
    if value is None:
        return None
    return float(value)


def evaluate(
    expr: Expr,
    env: Mapping[str, float],
    metrics: Mapping[str, Expr] | None = None,
) -> Value:
    """Evaluate against an event-count environment.

    ``env`` maps event names (``Event.value`` strings) to counts; a
    missing name means that event was not collected, which makes any
    expression touching it undefined (``None``) unless a ``guard``
    intervenes. Metric references resolve through ``metrics``; a cycle or
    a dangling reference raises :class:`ExprError` (the checker rejects
    both statically — AN004/AN005).
    """
    metric_map = metrics or {}

    def ref(name: str, active: frozenset[str]) -> Value:
        if name in active:
            raise ExprError(f"cyclic metric reference through ${name}")
        target = metric_map.get(name)
        if target is None:
            raise ExprError(f"dangling metric reference ${name}")
        return ev(target.root, active | {name})

    def ev(node: Node, active: frozenset[str]) -> Value:
        if isinstance(node, Num):
            return node.value
        if isinstance(node, EventRef):
            value = env.get(node.name)
            return None if value is None else float(value)
        if isinstance(node, MetricRef):
            return ref(node.name, active)
        if isinstance(node, Neg):
            operand = _num(ev(node.operand, active))
            return None if operand is None else -operand
        if isinstance(node, Not):
            operand = ev(node.operand, active)
            return None if operand is None else not bool(operand)
        if isinstance(node, BoolOp):
            left, right = ev(node.left, active), ev(node.right, active)
            # Kleene three-valued logic: undefined is "unknown", not false.
            if node.op == "and":
                if left is False or right is False:
                    return False
                if left is None or right is None:
                    return None
                return bool(left) and bool(right)
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)
        if isinstance(node, Cmp):
            lhs, rhs = _num(ev(node.left, active)), _num(ev(node.right, active))
            if lhs is None or rhs is None:
                return None
            return _CMP[node.op](lhs, rhs)
        if isinstance(node, BinOp):
            lhs, rhs = _num(ev(node.left, active)), _num(ev(node.right, active))
            if lhs is None or rhs is None:
                return None
            if node.op == "+":
                return lhs + rhs
            if node.op == "-":
                return lhs - rhs
            if node.op == "*":
                return lhs * rhs
            return None if rhs == 0.0 else lhs / rhs
        if isinstance(node, Call):
            return call(node, active)
        raise ExprError(f"unknown AST node {type(node).__name__}")

    def call(node: Call, active: frozenset[str]) -> Value:
        arity = FUNCTIONS.get(node.func)
        if arity is None:
            raise ExprError(f"unknown function {node.func!r}", node.pos)
        if len(node.args) != arity:
            raise ExprError(
                f"{node.func}() takes {arity} argument(s), got "
                f"{len(node.args)}",
                node.pos,
            )
        if node.func == "guard":
            value = ev(node.args[0], active)
            return ev(node.args[1], active) if value is None else value
        values = [_num(ev(arg, active)) for arg in node.args]
        if any(v is None for v in values):
            return None
        nums = [v for v in values if v is not None]
        if node.func == "ratio":
            return None if nums[1] == 0.0 else nums[0] / nums[1]
        if node.func == "penalty":
            return nums[0] * nums[1]
        if node.func == "per_kilo_insn":
            insn = env.get(Event.INSTRUCTIONS.value)
            if insn is None or float(insn) == 0.0:
                return None
            return 1000.0 * nums[0] / float(insn)
        if node.func == "min":
            return min(nums)
        return max(nums)

    return ev(expr.root, frozenset())


_CMP: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def env_from_counts(counts: Mapping[Event, int]) -> dict[str, float]:
    """Ground-truth environment from an ``{Event: count}`` mapping: every
    model event is present (absent entries are true zeros — the simulator
    counts exactly, so "not in the mapping" means "never fired")."""
    return {e.value: float(counts.get(e, 0)) for e in Event}
