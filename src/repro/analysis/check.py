"""Static analysis of metric/assumption expressions: the AN rules.

The third lint front end (after the ML program walker and the SA repo
self-check): every declared metric, metric-tree node and refutable
assumption is validated against the machine model *before* anything runs,
in the same :class:`~repro.lint.findings.Finding`/`LintReport` machinery,
so the fail-closed gate and ``python -m repro.lint analysis`` reject
malformed analysis declarations exactly like hazardous programs.

Rule catalog (docs/analysis.md):

========  ========  =====================================================
AN001     error     unknown event for the configured hw model
AN002     error     unit/dimension mismatch (adding cycles to instructions)
AN003     error     unguarded division whose denominator can be zero
AN004     error     cyclic metric reference
AN005     error     dangling metric reference
AN006     error     tree children do not provably partition their parent
AN007     warning   more events than the PMU can co-schedule (multiplexing
                    hazard; the dynamic twin of ML007 slot exhaustion)
AN008     error     unsatisfiable predicate (interval evaluation)
AN009     warning   tautological predicate (vacuous: nothing to refute)
AN010     error     parse/type misuse (non-boolean assumption, boolean
                    metric, unknown function, wrong arity)
========  ========  =====================================================

Findings carry ``file`` = the declaration owner (``metric:$name``,
``tree:<tree>/<node>``, ``assumption:<name>``) and ``line`` = the 1-based
*column* in the expression source.

The checker's soundness contract, property-tested in
``tests/properties``: an expression this module passes never raises when
evaluated against any count environment — undefined values flow as
``None``, never as ZeroDivisionError/KeyError.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Optional, Union

from repro.analysis.expr import (
    COUNT_INTERVAL,
    DIMENSIONLESS,
    FUNCTIONS,
    BinOp,
    BoolOp,
    Call,
    Cmp,
    EventRef,
    Expr,
    ExprError,
    Interval,
    MetricRef,
    Neg,
    Node,
    Not,
    Num,
    Unit,
    event_unit,
    metric_refs,
    parse,
    referenced_events,
)
from repro.common.config import SimConfig
from repro.lint.findings import ERROR, WARNING, Finding, LintReport

TRUE = "true"
FALSE = "false"
UNKNOWN = "unknown"

_FULL = Interval(-math.inf, math.inf)


@dataclass(frozen=True)
class Static:
    """Abstract value of one sub-expression."""

    kind: str                     #: "num" | "bool"
    unit: Optional[Unit]          #: None for bool results
    interval: Interval            #: numeric bounds (full range for bool)
    truth: str = UNKNOWN          #: bool results: TRUE / FALSE / UNKNOWN
    may_undef: bool = False       #: can evaluate to None at runtime
    const: bool = True            #: pure literal (unit-polymorphic)
    poisoned: bool = False        #: an error was already reported below


_POISON = Static(
    kind="num",
    unit=None,
    interval=_FULL,
    may_undef=True,
    const=False,
    poisoned=True,
)


def _units_compatible(left: Static, right: Static) -> bool:
    """Additive/comparative compatibility: equal units, or either side a
    pure numeric literal (constants adopt the other operand's unit)."""
    if left.unit is None or right.unit is None:
        return True  # poisoned below; don't cascade
    return left.const or right.const or left.unit == right.unit


def _common_unit(left: Static, right: Static) -> Optional[Unit]:
    if left.unit is None or right.unit is None:
        return None
    return right.unit if left.const else left.unit


class _ExprChecker:
    """One expression's static walk; findings land on ``report``."""

    def __init__(
        self,
        owner: str,
        report: LintReport,
        metrics: Mapping[str, Expr],
        metric_statics: Mapping[str, Static],
        config: SimConfig,
    ) -> None:
        self.owner = owner
        self.report = report
        self.metrics = metrics
        self.metric_statics = metric_statics
        self.config = config

    def finding(
        self,
        rule: str,
        severity: str,
        node: Node,
        message: str,
        fix_hint: str = "",
    ) -> None:
        self.report.add(
            Finding(
                rule=rule,
                severity=severity,
                message=message,
                fix_hint=fix_hint,
                file=self.owner,
                line=node.pos + 1,
            )
        )

    # -- dispatch ----------------------------------------------------------

    def check(self, node: Node) -> Static:
        if isinstance(node, Num):
            return Static(
                kind="num",
                unit=DIMENSIONLESS,
                interval=Interval(node.value, node.value),
            )
        if isinstance(node, EventRef):
            return self.check_event(node)
        if isinstance(node, MetricRef):
            return self.check_metric_ref(node)
        if isinstance(node, Neg):
            operand = self.require_num(node.operand, "unary -")
            return replace(
                operand,
                interval=operand.interval.neg(),
                truth=UNKNOWN,
            )
        if isinstance(node, BinOp):
            return self.check_binop(node)
        if isinstance(node, Cmp):
            return self.check_cmp(node)
        if isinstance(node, (BoolOp, Not)):
            return self.check_bool(node)
        if isinstance(node, Call):
            return self.check_call(node)
        raise ExprError(f"unknown AST node {type(node).__name__}")

    def check_event(self, node: EventRef) -> Static:
        if node.event is None:
            self.finding(
                "AN001",
                ERROR,
                node,
                f"unknown event {node.name!r} for the configured hw model",
                fix_hint="use an Event value name (see repro.hw.events) or "
                "a $metric reference",
            )
            return _POISON
        if not node.event.schedulable:
            self.finding(
                "AN007",
                WARNING,
                node,
                f"event {node.name!r} cannot be programmed on any of this "
                "model's counters",
                fix_hint="drop the event or extend the PMU model",
            )
        return Static(
            kind="num",
            unit=event_unit(node.event),
            interval=COUNT_INTERVAL,
            const=False,
        )

    def check_metric_ref(self, node: MetricRef) -> Static:
        static = self.metric_statics.get(node.name)
        if static is None:
            self.finding(
                "AN005",
                ERROR,
                node,
                f"dangling metric reference ${node.name}: no such metric "
                "is declared",
                fix_hint="declare the metric or fix the reference",
            )
            return _POISON
        return static

    def require_num(self, node: Node, context: str) -> Static:
        static = self.check(node)
        if static.kind != "num" and not static.poisoned:
            self.finding(
                "AN010",
                ERROR,
                node,
                f"{context} needs a numeric operand, got a predicate",
                fix_hint="wrap the comparison in guard()/arithmetic only "
                "where a number is expected",
            )
            return _POISON
        return static

    def require_bool(self, node: Node, context: str) -> Static:
        static = self.check(node)
        if static.kind != "bool" and not static.poisoned:
            self.finding(
                "AN010",
                ERROR,
                node,
                f"{context} needs a boolean operand, got a number",
                fix_hint="compare the number against a bound first",
            )
            return replace(_POISON, kind="bool", truth=UNKNOWN)
        return static

    def check_binop(self, node: BinOp) -> Static:
        left = self.require_num(node.left, f"operator {node.op!r}")
        right = self.require_num(node.right, f"operator {node.op!r}")
        poisoned = left.poisoned or right.poisoned
        may_undef = left.may_undef or right.may_undef
        const = left.const and right.const
        if node.op in ("+", "-"):
            if not _units_compatible(left, right):
                self.finding(
                    "AN002",
                    ERROR,
                    node,
                    f"unit mismatch: cannot apply {node.op!r} to "
                    f"{left.unit} and {right.unit}",
                    fix_hint="normalize both sides to the same unit "
                    "(e.g. divide by cycles or instructions first)",
                )
                return _POISON
            interval = (
                left.interval.add(right.interval)
                if node.op == "+"
                else left.interval.sub(right.interval)
            )
            return Static(
                kind="num",
                unit=_common_unit(left, right),
                interval=interval,
                may_undef=may_undef,
                const=const,
                poisoned=poisoned,
            )
        if node.op == "*":
            unit = (
                None
                if left.unit is None or right.unit is None
                else left.unit.mul(right.unit)
            )
            return Static(
                kind="num",
                unit=unit,
                interval=left.interval.mul(right.interval),
                may_undef=may_undef,
                const=const,
                poisoned=poisoned,
            )
        # division: the only operator that can manufacture "undefined"
        if right.interval.contains_zero() and not right.poisoned:
            self.finding(
                "AN003",
                ERROR,
                node,
                "unguarded division: the denominator can be zero for "
                "some count vector",
                fix_hint="use ratio(num, den) (undefined on zero) or "
                "guard(..., default)",
            )
            poisoned = True
        unit = (
            None
            if left.unit is None or right.unit is None
            else left.unit.div(right.unit)
        )
        return Static(
            kind="num",
            unit=unit,
            interval=left.interval.div(right.interval),
            may_undef=may_undef or right.interval.contains_zero(),
            const=const,
            poisoned=poisoned,
        )

    def check_cmp(self, node: Cmp) -> Static:
        left = self.require_num(node.left, f"comparison {node.op!r}")
        right = self.require_num(node.right, f"comparison {node.op!r}")
        poisoned = left.poisoned or right.poisoned
        if not _units_compatible(left, right):
            self.finding(
                "AN002",
                ERROR,
                node,
                f"unit mismatch: comparing {left.unit} against {right.unit}",
                fix_hint="compare like against like — form a ratio() to "
                "reach a dimensionless quantity first",
            )
            poisoned = True
        may_undef = left.may_undef or right.may_undef
        truth = UNKNOWN
        if not poisoned:
            truth = _compare_intervals(node.op, left.interval, right.interval)
        return Static(
            kind="bool",
            unit=None,
            interval=_FULL,
            truth=truth,
            may_undef=may_undef,
            const=False,
            poisoned=poisoned,
        )

    def check_bool(self, node: Union[BoolOp, Not]) -> Static:
        if isinstance(node, Not):
            operand = self.require_bool(node.operand, "'not'")
            truth = {TRUE: FALSE, FALSE: TRUE}.get(operand.truth, UNKNOWN)
            return replace(operand, truth=truth)
        left = self.require_bool(node.left, f"{node.op!r}")
        right = self.require_bool(node.right, f"{node.op!r}")
        if node.op == "and":
            if FALSE in (left.truth, right.truth):
                truth = FALSE
            elif left.truth == right.truth == TRUE:
                truth = TRUE
            else:
                truth = UNKNOWN
        else:
            if TRUE in (left.truth, right.truth):
                truth = TRUE
            elif left.truth == right.truth == FALSE:
                truth = FALSE
            else:
                truth = UNKNOWN
        return Static(
            kind="bool",
            unit=None,
            interval=_FULL,
            truth=truth,
            may_undef=left.may_undef or right.may_undef,
            const=False,
            poisoned=left.poisoned or right.poisoned,
        )

    def check_call(self, node: Call) -> Static:
        arity = FUNCTIONS.get(node.func)
        if arity is None:
            self.finding(
                "AN010",
                ERROR,
                node,
                f"unknown function {node.func!r}",
                fix_hint=f"one of: {', '.join(sorted(FUNCTIONS))}",
            )
            return _POISON
        if len(node.args) != arity:
            self.finding(
                "AN010",
                ERROR,
                node,
                f"{node.func}() takes {arity} argument(s), got "
                f"{len(node.args)}",
            )
            return _POISON
        if node.func == "guard":
            value = self.require_num(node.args[0], "guard()")
            default = self.require_num(node.args[1], "guard() default")
            if not _units_compatible(value, default):
                self.finding(
                    "AN002",
                    ERROR,
                    node,
                    f"unit mismatch: guard() default has unit "
                    f"{default.unit}, value has {value.unit}",
                )
                return _POISON
            return Static(
                kind="num",
                unit=_common_unit(value, default),
                interval=value.interval.hull(default.interval),
                may_undef=default.may_undef,
                const=False,
                poisoned=value.poisoned or default.poisoned,
            )
        args = [
            self.require_num(arg, f"{node.func}()") for arg in node.args
        ]
        poisoned = any(a.poisoned for a in args)
        may_undef = any(a.may_undef for a in args)
        if node.func == "penalty":
            count, weight = args
            if not weight.const and not weight.poisoned:
                self.finding(
                    "AN010",
                    ERROR,
                    node,
                    "penalty() weight must be a literal constant "
                    "(cycles per event occurrence)",
                    fix_hint="inline the penalty as a number, like "
                    "penalty(llc_misses, 180.0)",
                )
                return _POISON
            return Static(
                kind="num",
                unit=Unit.base("cycles"),
                interval=count.interval.mul(weight.interval),
                may_undef=may_undef,
                const=False,
                poisoned=poisoned,
            )
        if node.func == "ratio":
            num, den = args
            unit = (
                None
                if num.unit is None or den.unit is None
                else num.unit.div(den.unit)
            )
            return Static(
                kind="num",
                unit=unit,
                interval=num.interval.div(den.interval),
                may_undef=may_undef or den.interval.contains_zero(),
                const=False,
                poisoned=poisoned,
            )
        if node.func == "per_kilo_insn":
            (arg,) = args
            unit = (
                None
                if arg.unit is None
                else arg.unit.mul(DIMENSIONLESS).div(
                    Unit.base("instructions")
                )
            )
            scaled = arg.interval.mul(Interval(1000.0, 1000.0))
            return Static(
                kind="num",
                unit=unit,
                interval=scaled.div(COUNT_INTERVAL),
                may_undef=True,  # undefined when no instructions retired
                const=False,
                poisoned=poisoned,
            )
        # min / max
        left, right = args
        if not _units_compatible(left, right):
            self.finding(
                "AN002",
                ERROR,
                node,
                f"unit mismatch: {node.func}() over {left.unit} and "
                f"{right.unit}",
            )
            return _POISON
        if node.func == "min":
            interval = Interval(
                min(left.interval.lo, right.interval.lo),
                min(left.interval.hi, right.interval.hi),
            )
        else:
            interval = Interval(
                max(left.interval.lo, right.interval.lo),
                max(left.interval.hi, right.interval.hi),
            )
        return Static(
            kind="num",
            unit=_common_unit(left, right),
            interval=interval,
            may_undef=may_undef,
            const=left.const and right.const,
            poisoned=poisoned,
        )


def _compare_intervals(op: str, lhs: Interval, rhs: Interval) -> str:
    """Definite verdict of ``lhs <op> rhs`` over closed intervals, or
    UNKNOWN when the ranges overlap."""
    if op in ("<", ">"):
        strict_lt = lhs.hi < rhs.lo
        never_lt = lhs.lo >= rhs.hi
        if op == ">":
            strict_lt, never_lt = rhs.hi < lhs.lo, rhs.lo >= lhs.hi
        if strict_lt:
            return TRUE
        if never_lt:
            return FALSE
        return UNKNOWN
    if op in ("<=", ">="):
        le = lhs.hi <= rhs.lo
        never_le = lhs.lo > rhs.hi
        if op == ">=":
            le, never_le = rhs.hi <= lhs.lo, rhs.lo > lhs.hi
        if le:
            return TRUE
        if never_le:
            return FALSE
        return UNKNOWN
    disjoint = lhs.hi < rhs.lo or rhs.hi < lhs.lo
    point = (
        lhs.lo == lhs.hi == rhs.lo == rhs.hi and math.isfinite(lhs.lo)
    )
    if op == "==":
        if point:
            return TRUE
        if disjoint:
            return FALSE
        return UNKNOWN
    if disjoint:
        return TRUE
    if point:
        return FALSE
    return UNKNOWN


# -- public entry points -----------------------------------------------------


def _as_expr(source: Union[str, Expr]) -> Expr:
    return source if isinstance(source, Expr) else parse(source)


def _default_config(config: Optional[SimConfig]) -> SimConfig:
    return config if config is not None else SimConfig()


def _parse_or_report(
    source: Union[str, Expr], owner: str, report: LintReport
) -> Optional[Expr]:
    try:
        return _as_expr(source)
    except ExprError as exc:
        report.add(
            Finding(
                rule="AN010",
                severity=ERROR,
                message=f"expression does not parse: {exc}",
                file=owner,
                line=exc.pos + 1,
            )
        )
        return None


def _check_multiplexing(
    expr: Expr,
    owner: str,
    report: LintReport,
    metrics: Mapping[str, Expr],
    config: SimConfig,
) -> None:
    """AN007: one measurement must fit the PMU's programmable counters.

    The dynamic twin of ML007 (counter-slot exhaustion): an expression
    needing more simultaneously counted events than ``pmu.n_counters``
    can only be measured by time-multiplexing, whose scaled estimates
    alias with program phases (E13) — exactly what this reproduction
    refuses to do.
    """
    needed = sorted(referenced_events(expr, metrics))
    n_counters = config.machine.pmu.n_counters
    if len(needed) > n_counters:
        report.add(
            Finding(
                rule="AN007",
                severity=WARNING,
                message=(
                    f"references {len(needed)} distinct events "
                    f"({', '.join(needed)}) but the model co-schedules "
                    f"at most {n_counters} (ML007 would reject the "
                    "measuring program)"
                ),
                fix_hint="split the metric/predicate into sub-expressions "
                f"of at most {n_counters} events each",
                file=owner,
                line=expr.root.pos + 1,
            )
        )


def _resolve_metric_statics(
    metrics: Mapping[str, Expr],
    report: LintReport,
    config: SimConfig,
    owner: str = "metric",
) -> dict[str, Static]:
    """Check a metric set: cycles (AN004) first, then each metric in
    dependency order so references see their target's static value."""
    statics: dict[str, Static] = {}
    state: dict[str, str] = {}  # name -> "visiting" | "done"

    def visit(name: str, chain: tuple[str, ...]) -> None:
        if state.get(name) == "done":
            return
        if state.get(name) == "visiting":
            cycle = chain[chain.index(name):] + (name,)
            expr = metrics[name]
            report.add(
                Finding(
                    rule="AN004",
                    severity=ERROR,
                    message=(
                        "cyclic metric reference: "
                        + " -> ".join(f"${n}" for n in cycle)
                    ),
                    fix_hint="break the cycle; metrics must form a DAG",
                    file=f"{owner}:${name}",
                    line=expr.root.pos + 1,
                )
            )
            statics[name] = _POISON
            state[name] = "done"
            return
        state[name] = "visiting"
        expr = metrics[name]
        for ref in metric_refs(expr):
            if ref in metrics:
                visit(ref, chain + (name,))
        if state[name] == "done":  # poisoned by a cycle through us
            return
        checker = _ExprChecker(
            f"{owner}:${name}", report, metrics, statics, config
        )
        static = checker.check(expr.root)
        if static.kind != "num" and not static.poisoned:
            report.add(
                Finding(
                    rule="AN010",
                    severity=ERROR,
                    message=f"metric ${name} must be numeric, not a "
                    "predicate",
                    file=f"{owner}:${name}",
                    line=expr.root.pos + 1,
                )
            )
            static = _POISON
        statics[name] = static
        state[name] = "done"
        _check_multiplexing(
            expr, f"{owner}:${name}", report, metrics, config
        )

    for name in metrics:
        visit(name, ())
    return statics


def check_metrics(
    metrics: Mapping[str, Union[str, Expr]],
    config: Optional[SimConfig] = None,
    owner: str = "metric",
) -> LintReport:
    """AN-check a set of named metric definitions."""
    config = _default_config(config)
    report = LintReport()
    parsed: dict[str, Expr] = {}
    for name, source in metrics.items():
        expr = _parse_or_report(source, f"{owner}:${name}", report)
        if expr is not None:
            parsed[name] = expr
    _resolve_metric_statics(parsed, report, config, owner=owner)
    report.note_checked("metrics", len(metrics))
    return report


def check_predicate(
    source: Union[str, Expr],
    metrics: Mapping[str, Union[str, Expr]] | None = None,
    config: Optional[SimConfig] = None,
    owner: str = "predicate",
) -> LintReport:
    """AN-check one boolean predicate (an assumption's refutable claim),
    including satisfiability (AN008) and tautology (AN009) via interval
    evaluation over event bounds."""
    config = _default_config(config)
    report = LintReport()
    parsed: dict[str, Expr] = {}
    for name, metric_source in (metrics or {}).items():
        expr = _parse_or_report(metric_source, f"metric:${name}", report)
        if expr is not None:
            parsed[name] = expr
    statics = _resolve_metric_statics(parsed, report, config)
    predicate = _parse_or_report(source, owner, report)
    if predicate is None:
        return report
    checker = _ExprChecker(owner, report, parsed, statics, config)
    static = checker.check(predicate.root)
    if static.kind != "bool" and not static.poisoned:
        report.add(
            Finding(
                rule="AN010",
                severity=ERROR,
                message="an assumption must be a predicate (boolean), "
                "not a bare number",
                fix_hint="compare the metric against a bound",
                file=owner,
                line=predicate.root.pos + 1,
            )
        )
    elif static.truth == FALSE:
        report.add(
            Finding(
                rule="AN008",
                severity=ERROR,
                message="unsatisfiable predicate: false for every "
                "possible count vector (interval evaluation)",
                fix_hint="the claim can never hold; fix the bound or the "
                "expression",
                file=owner,
                line=predicate.root.pos + 1,
            )
        )
    elif static.truth == TRUE and not static.may_undef:
        report.add(
            Finding(
                rule="AN009",
                severity=WARNING,
                message="tautological predicate: true for every possible "
                "count vector — running it refutes nothing",
                fix_hint="tighten the bound until the claim is falsifiable",
                file=owner,
                line=predicate.root.pos + 1,
            )
        )
    _check_multiplexing(predicate, owner, report, parsed, config)
    report.note_checked("predicates")
    return report


def check_metric_expr(
    source: Union[str, Expr],
    metrics: Mapping[str, Union[str, Expr]] | None = None,
    config: Optional[SimConfig] = None,
    owner: str = "metric:<anonymous>",
) -> LintReport:
    """AN-check one numeric metric expression against a metric set."""
    config = _default_config(config)
    report = LintReport()
    parsed: dict[str, Expr] = {}
    for name, metric_source in (metrics or {}).items():
        expr = _parse_or_report(metric_source, f"metric:${name}", report)
        if expr is not None:
            parsed[name] = expr
    statics = _resolve_metric_statics(parsed, report, config)
    expr = _parse_or_report(source, owner, report)
    if expr is None:
        return report
    checker = _ExprChecker(owner, report, parsed, statics, config)
    static = checker.check(expr.root)
    if static.kind != "num" and not static.poisoned:
        report.add(
            Finding(
                rule="AN010",
                severity=ERROR,
                message="a metric must be numeric, not a predicate",
                file=owner,
                line=expr.root.pos + 1,
            )
        )
    _check_multiplexing(expr, owner, report, parsed, config)
    report.note_checked("metrics")
    return report


def check_tree(tree: object, config: Optional[SimConfig] = None) -> LintReport:
    """AN-check a :class:`repro.analysis.tree.MetricTree`: every node
    expression, plus the partition rule AN006 — each non-leaf node needs
    exactly one residual child (computed as parent minus siblings) so its
    children provably sum to the parent, and child units must match."""
    from repro.analysis.tree import MetricNode, MetricTree

    assert isinstance(tree, MetricTree)
    config = _default_config(config)
    report = LintReport()
    metrics = {
        name: _as_expr(source) for name, source in tree.metrics.items()
    }
    statics = _resolve_metric_statics(metrics, report, config)

    def node_owner(node: MetricNode) -> str:
        return f"tree:{tree.name}/{node.name}"

    def visit(node: MetricNode) -> None:
        if node.expr is not None:
            expr = _parse_or_report(node.expr, node_owner(node), report)
            if expr is not None:
                checker = _ExprChecker(
                    node_owner(node), report, metrics, statics, config
                )
                static = checker.check(expr.root)
                if static.kind != "num" and not static.poisoned:
                    report.add(
                        Finding(
                            rule="AN010",
                            severity=ERROR,
                            message="a tree node's value must be numeric",
                            file=node_owner(node),
                            line=expr.root.pos + 1,
                        )
                    )
                if (
                    static.unit is not None
                    and not static.unit.dimensionless
                    and not static.poisoned
                ):
                    report.add(
                        Finding(
                            rule="AN006",
                            severity=ERROR,
                            message=(
                                f"node value has unit {static.unit}; tree "
                                "nodes are fractions of total cycles and "
                                "must be dimensionless"
                            ),
                            fix_hint="divide by cycles (ratio(x, cycles))",
                            file=node_owner(node),
                            line=expr.root.pos + 1,
                        )
                    )
                _check_multiplexing(
                    expr, node_owner(node), report, metrics, config
                )
        if node.children:
            residuals = [c for c in node.children if c.expr is None]
            if len(residuals) != 1:
                report.add(
                    Finding(
                        rule="AN006",
                        severity=ERROR,
                        message=(
                            f"children of {node.name!r} do not provably "
                            f"partition it: found {len(residuals)} "
                            "residual children, need exactly 1"
                        ),
                        fix_hint="give exactly one child expr=None; it "
                        "absorbs parent - sum(siblings)",
                        file=node_owner(node),
                        line=1,
                    )
                )
            for child in node.children:
                visit(child)

    if tree.root.expr is not None:
        report.add(
            Finding(
                rule="AN006",
                severity=ERROR,
                message="the root node's value is the whole run (1.0) and "
                "must not carry an expression",
                file=f"tree:{tree.name}/{tree.root.name}",
                line=1,
            )
        )
    visit(tree.root)
    report.note_checked("trees")
    return report


def check_assumptions(
    assumptions: Iterable[object], config: Optional[SimConfig] = None
) -> LintReport:
    """AN-check declared :class:`repro.analysis.refute.Assumption` sets."""
    from repro.analysis.refute import Assumption

    config = _default_config(config)
    report = LintReport()
    n = 0
    for assumption in assumptions:
        assert isinstance(assumption, Assumption)
        n += 1
        owner = f"assumption:{assumption.name}"
        if assumption.predicate is not None:
            report.merge(
                check_predicate(
                    assumption.predicate,
                    metrics=assumption.metrics,
                    config=config,
                    owner=owner,
                )
            )
        if assumption.subject is not None:
            report.merge(
                check_metric_expr(
                    assumption.subject,
                    metrics=assumption.metrics,
                    config=config,
                    owner=f"{owner}/subject",
                )
            )
    report.checked.pop("predicates", None)
    report.checked.pop("metrics", None)
    report.note_checked("assumptions", n)
    return report


def check_analysis(config: Optional[SimConfig] = None) -> LintReport:
    """The ``analysis`` lint target: every analysis declaration that ships
    with the repo — the standard metric set, the top-down bottleneck tree,
    and E21's refutable assumptions — must pass its static checks. The
    runner merges this into the fail-closed gate under ``--lint``/
    ``--lint-strict``."""
    from repro.analysis.tree import STANDARD_METRICS, default_tree
    from repro.experiments.e21_refutation import declared_assumptions

    config = _default_config(config)
    report = check_metrics(STANDARD_METRICS, config=config)
    report.merge(check_tree(default_tree(), config=config))
    report.merge(check_assumptions(declared_assumptions(), config=config))
    return report
