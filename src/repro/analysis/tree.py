"""TMA-style top-down metric trees: declarative bottleneck classification.

Intel's top-down method (TMA) classifies where a run's cycles went by
walking a *hierarchical* metric tree level by level: at each level the
children partition the parent's cycle share, the dominant child names the
bottleneck at that granularity, and only the dominant subtree is
descended — shallow metrics stay cheap, detail appears only where it
matters. This module brings that discipline to the Nehalem-like model:
the tree is *declared* (node expressions in the :mod:`repro.analysis.expr`
DSL, statically validated by :mod:`repro.analysis.check`), not hard-coded
Python like the flat list in :mod:`repro.analysis.bottlenecks`.

Partition semantics (rule AN006): every non-leaf node has exactly one
*residual* child (``expr=None``) whose value is the parent minus its
siblings, so children always sum to the parent by construction. Sibling
estimates use the CPI-stack penalty weights; when latency overlap makes
their raw sum overshoot the measured parent they are rescaled
proportionally (documented attribution, deterministic and
order-independent), and negatives clamp to zero.

Classification of a run produces a level-by-level record plus the
E12-style implication of the dominant path — what an engineer should do
about it — rendered by :func:`implications_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.analysis.expr import Expr, env_from_counts, evaluate, parse
from repro.common.tables import render_table
from repro.hw.events import Event

#: Share below which a dominant child is not worth descending into: the
#: level above already explains the run better than its detail would.
DESCEND_THRESHOLD = 0.05


@dataclass(frozen=True)
class MetricNode:
    """One tree node. ``expr`` is DSL source for this node's share of
    total cycles; ``None`` marks the residual child (parent minus
    siblings). ``implication`` is the E12-style advice when this node
    dominates its level."""

    name: str
    expr: Optional[str]
    doc: str = ""
    implication: str = ""
    children: tuple["MetricNode", ...] = ()


@dataclass(frozen=True)
class MetricTree:
    """A named tree over a machine model, plus helper ``$metrics`` its
    node expressions may reference."""

    name: str
    model: str
    root: MetricNode
    metrics: Mapping[str, str]

    def parsed_metrics(self) -> dict[str, Expr]:
        return {name: parse(src) for name, src in self.metrics.items()}


#: The standard derived-metric set, as checkable DSL declarations (the
#: DSL twin of repro.analysis.derived; ``$``-referenceable from trees
#: and assumptions).
STANDARD_METRICS: dict[str, str] = {
    "ipc": "ratio(instructions, cycles)",
    "cpi": "ratio(cycles, instructions)",
    "stall_fraction": "ratio(stall_cycles, cycles)",
    "llc_mpki": "per_kilo_insn(llc_misses)",
    "l2_mpki": "per_kilo_insn(l2_misses)",
    "branch_miss_rate": "ratio(branch_misses, branches)",
    "llc_miss_ratio": "ratio(llc_misses, llc_references)",
    "kernel_sensitive_mix": "ratio(branches, instructions)",
}


def _nehalem_topdown() -> MetricTree:
    """The shipped top-down tree for the Nehalem-like model.

    Level 1 splits cycles into stalled vs retiring by the measured
    STALL_CYCLES fraction. Level 2 attributes the stalled share across
    penalty-weighted miss sources (weights shared with
    :data:`repro.analysis.cpi_stack.DEFAULT_PENALTIES`); what those
    estimates cannot explain stays in the ``other_stall`` residual.
    """
    stalled_children = (
        MetricNode(
            name="memory_bound",
            expr="ratio(penalty(llc_misses, 180.0), cycles)",
            doc="LLC misses served from local DRAM",
            implication="reduce working set or improve locality; consider "
            "software prefetch (LLC miss penalty dominates)",
        ),
        MetricNode(
            name="l2_bound",
            expr="ratio(penalty(l2_misses, 28.0), cycles)",
            doc="L2 misses that hit in the LLC",
            implication="tile/block for the L2; the working set spills one "
            "level, not to memory",
        ),
        MetricNode(
            name="branch_resteer",
            expr="ratio(penalty(branch_misses, 16.0), cycles)",
            doc="pipeline refills after mispredictions",
            implication="straighten hot control flow or hint unpredictable "
            "branches",
        ),
        MetricNode(
            name="tlb_bound",
            expr="ratio(penalty(dtlb_misses + itlb_misses, 30.0), cycles)",
            doc="page walks",
            implication="use huge pages or compact the page working set",
        ),
        MetricNode(
            name="numa_bound",
            expr="ratio(penalty(remote_accesses, 120.0), cycles)",
            doc="cross-socket memory accesses",
            implication="pin threads near their data; remote DRAM costs "
            "~2x local",
        ),
        MetricNode(
            name="other_stall",
            expr=None,
            doc="stalls the penalty model cannot attribute",
            implication="profile dependencies/ports: stalls not explained "
            "by cache, branch, TLB or NUMA events",
        ),
    )
    root = MetricNode(
        name="cycles",
        expr=None,
        doc="all cycles of the run",
        children=(
            MetricNode(
                name="stalled",
                expr="$stall_fraction",
                doc="cycles with no uop issued",
                implication="the machine waits more than it works; descend "
                "into the stall breakdown",
                children=stalled_children,
            ),
            MetricNode(
                name="retiring",
                expr=None,
                doc="cycles issuing useful work",
                implication="the pipeline is busy; wins come from doing "
                "less work (algorithms), not from hiding latency",
            ),
        ),
    )
    return MetricTree(
        name="topdown",
        model="nehalem",
        root=root,
        metrics=dict(STANDARD_METRICS),
    )


_DEFAULT_TREE: MetricTree | None = None


def default_tree() -> MetricTree:
    """The registered tree the runner classifies every run against."""
    global _DEFAULT_TREE
    if _DEFAULT_TREE is None:
        _DEFAULT_TREE = _nehalem_topdown()
    return _DEFAULT_TREE


# -- evaluation --------------------------------------------------------------


def _node_value(
    node: MetricNode,
    env: Mapping[str, float],
    metrics: Mapping[str, Expr],
) -> float:
    assert node.expr is not None
    value = evaluate(parse(node.expr), env, metrics)
    if value is None or isinstance(value, bool):
        return 0.0
    return max(float(value), 0.0)


def _children_shares(
    parent_value: float,
    children: Iterable[MetricNode],
    env: Mapping[str, float],
    metrics: Mapping[str, Expr],
) -> dict[str, float]:
    """Values of one level's children, partitioning ``parent_value``:
    estimates rescale proportionally if they overshoot the parent, and
    the (unique, AN006-checked) residual absorbs the rest."""
    estimated: dict[str, float] = {}
    residual_name: str | None = None
    for child in children:
        if child.expr is None:
            residual_name = child.name
        else:
            estimated[child.name] = _node_value(child, env, metrics)
    total = sum(estimated.values())
    if total > parent_value and total > 0.0:
        scale = parent_value / total
        estimated = {name: v * scale for name, v in estimated.items()}
        total = parent_value
    shares = dict(estimated)
    if residual_name is not None:
        shares[residual_name] = max(parent_value - total, 0.0)
    return shares


def classify_env(
    env: Mapping[str, float], tree: MetricTree | None = None
) -> dict[str, Any]:
    """Walk the tree against one count environment; returns the manifest
    ``classification`` block: the dominant path, per-level shares, and
    the implication of the deepest dominant node."""
    tree = tree or default_tree()
    metrics = tree.parsed_metrics()
    levels: list[dict[str, Any]] = []
    path: list[str] = []
    implication = ""
    node, value = tree.root, 1.0
    while node.children:
        shares = _children_shares(value, node.children, env, metrics)
        dominant = max(
            node.children,
            key=lambda child: (shares[child.name], -_order(node, child)),
        )
        share = shares[dominant.name]
        levels.append(
            {
                "level": len(levels) + 1,
                "within": node.name,
                "dominant": dominant.name,
                "share": share,
                "shares": {k: round(v, 6) for k, v in shares.items()},
            }
        )
        path.append(dominant.name)
        if dominant.implication:
            implication = dominant.implication
        if not dominant.children or share < DESCEND_THRESHOLD:
            break
        node, value = dominant, share
    return {
        "tree": tree.name,
        "model": tree.model,
        "path": "/".join(path),
        "levels": levels,
        "implication": implication,
    }


def _order(parent: MetricNode, child: MetricNode) -> int:
    return parent.children.index(child)


def counts_from_result(result: Any) -> dict[Event, int]:
    """Merge one run's ground-truth counts across threads and domains."""
    totals: dict[Event, int] = {}
    for thread in result.threads.values():
        for domain in (thread.events_user, thread.events_kernel):
            for event, count in domain.items():
                totals[event] = totals.get(event, 0) + count
    return totals


def counts_from_records(records: Iterable[Any]) -> dict[str, int] | None:
    """Sum the per-run event-count totals captured on EngineRunRecords
    (None when no record carries counts — e.g. replays cached by an older
    version)."""
    totals: dict[str, int] = {}
    seen = False
    for record in records:
        counts = getattr(record, "counts", None)
        if not counts:
            continue
        seen = True
        for name, count in counts.items():
            totals[name] = totals.get(name, 0) + count
    return totals if seen else None


def classify_result(result: Any, tree: MetricTree | None = None) -> dict[str, Any]:
    """Classify one RunResult's dominant bottleneck."""
    return classify_env(env_from_counts(counts_from_result(result)), tree)


def classify_counts(
    counts: Mapping[Event, int], tree: MetricTree | None = None
) -> dict[str, Any]:
    return classify_env(env_from_counts(counts), tree)


def classify_named_counts(
    counts: Mapping[str, int], tree: MetricTree | None = None
) -> dict[str, Any]:
    """Classify name-keyed count totals (the EngineRunRecord flavour);
    absent model events are true zeros, like :func:`env_from_counts`."""
    env = {e.value: float(counts.get(e.value, 0)) for e in Event}
    return classify_env(env, tree)


def implications_report(classification: Mapping[str, Any]) -> str:
    """Render a classification as the E12-style implications table."""
    rows = []
    for level in classification["levels"]:
        rows.append(
            [
                level["level"],
                level["within"],
                level["dominant"],
                f"{level['share']:.1%}",
            ]
        )
    table = render_table(
        ["level", "within", "dominant", "share"],
        rows,
        title=(
            f"top-down classification ({classification['tree']}, "
            f"{classification['model']} model): "
            f"{classification['path'] or 'n/a'}"
        ),
    )
    if classification.get("implication"):
        table += f"\nimplication: {classification['implication']}"
    return table
