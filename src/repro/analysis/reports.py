"""Run-result export: structured JSON and a human-readable run report."""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.cpi_stack import thread_cpi_stack, user_kernel_breakdown
from repro.analysis.sync_stats import sync_profile
from repro.common.tables import render_table
from repro.hw.events import Domain
from repro.sim.results import RunResult


def result_to_dict(result: RunResult) -> dict[str, Any]:
    """A JSON-serializable snapshot of a run (threads, cores, kernel
    activity, locks, samples). Region per-invocation logs are summarized,
    not dumped, to keep exports bounded."""
    return {
        "wall_cycles": result.wall_cycles,
        "frequency_hz": result.config.machine.frequency.hz,
        "n_cores": len(result.cores),
        "threads": [
            {
                "tid": t.tid,
                "name": t.name,
                "user_cycles": t.user_cycles,
                "kernel_cycles": t.kernel_cycles,
                "wall_cycles": t.wall_cycles,
                "context_switches": t.n_context_switches,
                "migrations": t.n_migrations,
                "syscalls": t.n_syscalls,
                "read_restarts": t.read_restarts,
                "events_user": {e.value: n for e, n in t.events_user.items()},
                "events_kernel": {e.value: n for e, n in t.events_kernel.items()},
                "regions": {
                    name: {
                        "invocations": rt.invocations,
                        "user_cycles": rt.user_cycles,
                        "kernel_cycles": rt.kernel_cycles,
                    }
                    for name, rt in t.regions.items()
                },
            }
            for t in sorted(result.threads.values(), key=lambda t: t.tid)
        ],
        "cores": [
            {
                "core_id": c.core_id,
                "final_time": c.final_time,
                "busy_cycles": c.busy_cycles,
                "user_cycles": c.user_cycles,
                "kernel_cycles": c.kernel_cycles,
                "utilization": c.utilization,
            }
            for c in result.cores
        ],
        "kernel": {
            "context_switches": result.kernel.n_context_switches,
            "timer_ticks": result.kernel.n_timer_ticks,
            "pmis": result.kernel.n_pmis,
            "counter_overflows": result.kernel.n_counter_overflows,
            "samples": result.kernel.n_samples,
            "futex_waits": result.kernel.n_futex_waits,
            "futex_wakes": result.kernel.n_futex_wakes,
            "steals": result.kernel.n_steals,
            "syscalls": dict(result.kernel.n_syscalls),
        },
        "locks": {
            name: {
                "acquires": st.n_acquires,
                "contended": st.n_contended,
                "futex_sleeps": st.n_futex_sleeps,
                "total_hold_cycles": st.total_hold,
                "total_wait_cycles": st.total_wait,
                "mean_hold_cycles": st.mean_hold,
            }
            for name, st in sorted(result.locks.items())
        },
        "n_samples": len(result.samples),
    }


def result_to_json(result: RunResult, indent: int = 2) -> str:
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def run_report(result: RunResult, top_locks: int = 5) -> str:
    """A multi-section text report of a finished run."""
    freq = result.config.machine.frequency
    sections = []

    breakdown = user_kernel_breakdown(result)
    sections.append(
        f"run: {result.wall_cycles:,} cycles "
        f"({freq.cycles_to_ms(result.wall_cycles):.2f} ms) on "
        f"{len(result.cores)} cores; kernel share "
        f"{breakdown.kernel_fraction:.1%}; "
        f"{result.kernel.n_context_switches} switches, "
        f"{result.kernel.syscall_total()} syscalls, "
        f"{result.kernel.n_pmis} PMIs"
    )

    rows = []
    for t in sorted(result.threads.values(), key=lambda t: -t.cpu_cycles):
        stack = thread_cpi_stack(t, Domain.USER)
        rows.append(
            [
                t.name,
                t.user_cycles,
                t.kernel_cycles,
                round(stack.cpi, 2) if stack.instructions else "-",
                t.n_context_switches,
            ]
        )
    sections.append(
        render_table(
            ["thread", "user cy", "kernel cy", "cpi", "switches"],
            rows,
            title="threads",
        )
    )

    profile = sync_profile(result)
    if profile.total_acquires:
        lock_rows = []
        ranked = sorted(
            profile.locks.values(), key=lambda s: -s.total_hold_cycles
        )[:top_locks]
        for summary in ranked:
            lock_rows.append(
                [
                    summary.name,
                    summary.n_acquires,
                    f"{summary.contention_rate:.1%}",
                    round(summary.mean_hold_cycles),
                    round(summary.mean_wait_cycles),
                ]
            )
        sections.append(
            render_table(
                ["lock", "acquires", "contended", "mean hold", "mean wait"],
                lock_rows,
                title=f"hottest locks (of {len(profile.locks)})",
            )
        )

    return "\n\n".join(sections)
