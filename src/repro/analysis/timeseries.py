"""Behavior-over-time analysis from boundary checkpoints.

The paper's motivating use of cheap precise reads is watching *how an
application's microarchitectural behaviour evolves* — reading a few
counters at natural program boundaries (transaction end, event-loop turn)
costs ~100 ns with LiMiT, so even high-frequency boundaries add ~0.1%
overhead while yielding an exact time series.

This module turns a session's read records (taken at such checkpoints)
into per-interval samples and windowed series of derived metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.core.limit import LimitSession
from repro.hw.events import Event


@dataclass(frozen=True)
class IntervalSample:
    """Event deltas between two consecutive checkpoints of one thread."""

    tid: int
    start: int               #: simulated time of the opening checkpoint
    end: int                 #: simulated time of the closing checkpoint
    deltas: dict[Event, int]

    @property
    def midpoint(self) -> int:
        return (self.start + self.end) // 2

    @property
    def ipc(self) -> float:
        cycles = self.deltas.get(Event.CYCLES, 0)
        return self.deltas.get(Event.INSTRUCTIONS, 0) / cycles if cycles else 0.0

    def mpki(self, miss_event: Event) -> float:
        insn = self.deltas.get(Event.INSTRUCTIONS, 0)
        return 1000.0 * self.deltas.get(miss_event, 0) / insn if insn else 0.0


def interval_samples(session: LimitSession) -> list[IntervalSample]:
    """Pair up consecutive checkpoint reads per thread.

    Expects the session's counters to have been read together (read_all) at
    each checkpoint; intervals are formed between consecutive checkpoints.
    """
    n_counters = len(session.specs)
    if n_counters == 0:
        raise ReproError("session has no counters")
    per_thread: dict[int, list] = {}
    for record in session.records:
        per_thread.setdefault(record.tid, []).append(record)

    samples: list[IntervalSample] = []
    for tid, records in per_thread.items():
        records.sort(key=lambda r: (r.time, r.slot))
        # group into checkpoints of n_counters consecutive records
        checkpoints = [
            records[i: i + n_counters]
            for i in range(0, len(records) - n_counters + 1, n_counters)
        ]
        for prev, curr in zip(checkpoints, checkpoints[1:]):
            deltas = {}
            for a, b in zip(prev, curr):
                if a.event is not b.event:
                    raise ReproError(
                        "checkpoint records misaligned; read counters with "
                        "read_all() at every checkpoint"
                    )
                deltas[a.event] = b.value - a.value
            samples.append(
                IntervalSample(
                    tid=tid,
                    start=prev[-1].time,
                    end=curr[-1].time,
                    deltas=deltas,
                )
            )
    samples.sort(key=lambda s: (s.start, s.tid))
    return samples


@dataclass(frozen=True)
class WindowPoint:
    """Aggregated metrics over one time window (all threads merged)."""

    window_start: int
    window_end: int
    n_intervals: int
    ipc: float
    mpki: dict[Event, float]


def windowed_series(
    samples: list[IntervalSample],
    window_cycles: int,
    miss_events: tuple[Event, ...] = (Event.LLC_MISSES,),
) -> list[WindowPoint]:
    """Bucket interval samples into fixed windows by interval midpoint and
    compute aggregate IPC / MPKI per window. Empty windows are skipped."""
    if window_cycles <= 0:
        raise ReproError("window must be positive")
    if not samples:
        return []
    horizon = max(s.end for s in samples)
    points: list[WindowPoint] = []
    buckets: dict[int, list[IntervalSample]] = {}
    for sample in samples:
        buckets.setdefault(sample.midpoint // window_cycles, []).append(sample)
    for index in sorted(buckets):
        window = buckets[index]
        cycles = sum(s.deltas.get(Event.CYCLES, 0) for s in window)
        insns = sum(s.deltas.get(Event.INSTRUCTIONS, 0) for s in window)
        mpki = {}
        for event in miss_events:
            misses = sum(s.deltas.get(event, 0) for s in window)
            mpki[event] = 1000.0 * misses / insns if insns else 0.0
        points.append(
            WindowPoint(
                window_start=index * window_cycles,
                window_end=min(horizon, (index + 1) * window_cycles),
                n_intervals=len(window),
                ipc=insns / cycles if cycles else 0.0,
                mpki=mpki,
            )
        )
    return points


def spikes(
    points: list[WindowPoint],
    event: Event,
    factor: float = 2.0,
) -> list[WindowPoint]:
    """Windows whose MPKI exceeds ``factor`` x the median — phase changes
    (GC pauses, working-set shifts) stand out of the steady state."""
    values = sorted(p.mpki.get(event, 0.0) for p in points)
    if not values:
        return []
    median = values[len(values) // 2]
    if median == 0:
        return [p for p in points if p.mpki.get(event, 0.0) > 0]
    return [p for p in points if p.mpki.get(event, 0.0) > factor * median]
