"""Execution-timeline analysis from the engine's event trace.

When a run is configured with ``trace=True`` the engine records scheduling
and synchronization events on its :class:`~repro.obs.trace.TraceBus`. This
module turns that stream into per-thread timelines (run/ready/blocked
intervals), summary statistics (scheduling latency, time-state breakdowns)
and an ASCII Gantt rendering — the kind of visualization one builds on top
of precise measurement to *see* where a parallel program's time goes.

The bus records are :class:`~repro.obs.trace.TraceEvent` named tuples
``(time, core, tid, kind, arg)``; this module indexes them positionally so
it also accepts plain 5-tuples (e.g. traces loaded from old JSON dumps).
For richer consumers — Perfetto export, JSONL round-trips, kind-filtered
summaries — see :mod:`repro.obs.export` and ``python -m repro.trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.sim.results import RunResult


@dataclass(frozen=True)
class Interval:
    """One contiguous state interval of a thread."""

    state: str     #: 'run' | 'ready' | 'blocked'
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class ThreadTimeline:
    """All intervals of one thread, in time order."""

    tid: int
    name: str
    intervals: list[Interval] = field(default_factory=list)

    def total(self, state: str) -> int:
        return sum(i.length for i in self.intervals if i.state == state)

    @property
    def run_cycles(self) -> int:
        return self.total("run")

    @property
    def ready_cycles(self) -> int:
        """Cycles runnable but waiting for a core (scheduling latency)."""
        return self.total("ready")

    @property
    def blocked_cycles(self) -> int:
        return self.total("blocked")

    @property
    def span(self) -> tuple[int, int]:
        if not self.intervals:
            return (0, 0)
        return (self.intervals[0].start, self.intervals[-1].end)


def build_timelines(result: RunResult) -> dict[int, ThreadTimeline]:
    """Reconstruct per-thread timelines from a traced run.

    Raises ReproError if the run was not traced.
    """
    if not result.trace:
        raise ReproError(
            "run has no trace; construct the SimConfig with trace=True"
        )
    timelines: dict[int, ThreadTimeline] = {}
    # per-tid: (state, since)
    state: dict[int, tuple[str, int]] = {}

    def timeline(tid: int) -> ThreadTimeline:
        tl = timelines.get(tid)
        if tl is None:
            name = result.threads[tid].name if tid in result.threads else f"tid{tid}"
            tl = ThreadTimeline(tid=tid, name=name)
            timelines[tid] = tl
        return tl

    def close(tid: int, now: int, new_state: str | None) -> None:
        prev = state.get(tid)
        if prev is not None:
            prev_state, since = prev
            if now > since:
                timeline(tid).intervals.append(Interval(prev_state, since, now))
        if new_state is None:
            state.pop(tid, None)
        else:
            state[tid] = (new_state, now)

    for record in result.trace:
        time, _core, tid, kind = record[0], record[1], record[2], record[3]
        if kind == "ready":
            close(tid, time, "ready")
        elif kind == "switch_in":
            close(tid, time, "run")
        elif kind == "switch_out":
            # requeued preemptions emit a 'ready' right after; blocked
            # threads stay in 'blocked' until their wake 'ready'
            close(tid, time, "blocked")
        elif kind == "exit":
            close(tid, time, None)
        # lock/pmi records don't change the run state
    # close any dangling intervals at the run horizon
    horizon = result.wall_cycles
    for tid in list(state):
        close(tid, horizon, None)
    return timelines


@dataclass(frozen=True)
class SchedulingStats:
    """Aggregate scheduling behaviour of a traced run."""

    mean_ready_cycles: float    #: average runnable-but-waiting time
    max_ready_cycles: int
    run_fraction: float         #: run / (run + ready + blocked)


def scheduling_stats(timelines: dict[int, ThreadTimeline]) -> SchedulingStats:
    ready = [tl.ready_cycles for tl in timelines.values()]
    run = sum(tl.run_cycles for tl in timelines.values())
    total = sum(
        tl.run_cycles + tl.ready_cycles + tl.blocked_cycles
        for tl in timelines.values()
    )
    return SchedulingStats(
        mean_ready_cycles=sum(ready) / len(ready) if ready else 0.0,
        max_ready_cycles=max(ready, default=0),
        run_fraction=run / total if total else 0.0,
    )


_GANTT_CHARS = {"run": "#", "ready": "-", "blocked": "."}


def render_gantt(
    timelines: dict[int, ThreadTimeline],
    width: int = 72,
    horizon: int | None = None,
) -> str:
    """ASCII Gantt chart: one row per thread, '#'=running, '-'=ready,
    '.'=blocked, ' '=not yet started / finished."""
    if not timelines:
        return "(no threads)"
    if horizon is None:
        horizon = max((tl.span[1] for tl in timelines.values()), default=1)
    horizon = max(horizon, 1)
    label_w = max(len(tl.name) for tl in timelines.values())
    lines = []
    for tid in sorted(timelines):
        tl = timelines[tid]
        row = [" "] * width
        for interval in tl.intervals:
            a = min(width - 1, interval.start * width // horizon)
            b = min(width - 1, max(a, (interval.end - 1) * width // horizon))
            char = _GANTT_CHARS.get(interval.state, "?")
            for i in range(a, b + 1):
                # running beats ready beats blocked when intervals collide
                # on one cell after quantization
                if row[i] == " " or char == "#" or (char == "-" and row[i] == "."):
                    row[i] = char
        lines.append(f"{tl.name.ljust(label_w)} |{''.join(row)}|")
    legend = f"{'#'}=run  {'-'}=ready  {'.'}=blocked   (horizon {horizon:,} cy)"
    return "\n".join(lines + [legend])
