"""Bottleneck identification — the paper's titular application.

Combines the other analyses into a ranked diagnosis: given a run (measured
precisely), report where the cycles go and which architectural resource is
the limiter — memory hierarchy, branch prediction, synchronization, kernel
time, or raw compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cpi_stack import build_cpi_stack, user_kernel_breakdown
from repro.analysis.sync_stats import sync_profile
from repro.sim.results import RunResult


@dataclass(frozen=True)
class Bottleneck:
    """One diagnosed bottleneck."""

    kind: str          #: 'memory' | 'branch' | 'tlb' | 'sync_wait' | 'kernel' | 'compute'
    severity: float    #: fraction of cycles attributed (0..1)
    detail: str


@dataclass(frozen=True)
class Diagnosis:
    """Full ranked diagnosis of one run."""

    bottlenecks: list[Bottleneck]
    kernel_fraction: float
    sync_hold_fraction: float
    sync_wait_fraction: float
    cpi: float

    @property
    def primary(self) -> Bottleneck:
        return self.bottlenecks[0]


_STACK_KINDS = {
    "llc_misses": ("memory", "last-level cache misses (DRAM latency bound)"),
    "l2_misses": ("l2", "L2 misses hitting in LLC"),
    "branch_misses": ("branch", "branch mispredictions (pipeline refills)"),
    "dtlb_misses": ("tlb", "data-TLB misses (page walks)"),
    "itlb_misses": ("tlb", "instruction-TLB misses"),
    "remote_accesses": ("numa", "cross-socket memory accesses (NUMA latency)"),
}


def diagnose(result: RunResult, prefix: str = "") -> Diagnosis:
    """Rank the architectural bottlenecks of (a thread group of) a run."""
    threads = [t for t in result.threads.values() if t.name.startswith(prefix)]
    if not threads:
        raise ValueError(f"no threads match prefix {prefix!r}")

    # merge user-domain counts across the group
    merged: dict = {}
    for t in threads:
        for event, n in t.events_user.items():
            merged[event] = merged.get(event, 0) + n
    stack = build_cpi_stack(merged)
    breakdown = user_kernel_breakdown(result, prefix)
    sync = sync_profile(result)

    total_cpu = sum(t.cpu_cycles for t in threads)
    candidates: list[Bottleneck] = []
    fractions = stack.fractions()
    user_share = breakdown.user_cycles / total_cpu if total_cpu else 0.0
    for comp, frac in fractions.items():
        if comp == "base":
            continue
        kind, what = _STACK_KINDS.get(comp, (comp, comp))
        candidates.append(
            Bottleneck(kind=kind, severity=frac * user_share, detail=what)
        )
    if breakdown.kernel_fraction > 0:
        candidates.append(
            Bottleneck(
                kind="kernel",
                severity=breakdown.kernel_fraction,
                detail=(
                    f"{breakdown.kernel_fraction:.0%} of cpu cycles in the "
                    "kernel (syscalls, scheduling, interrupts)"
                ),
            )
        )
    if sync.wait_fraction > 0:
        candidates.append(
            Bottleneck(
                kind="sync_wait",
                severity=sync.wait_fraction,
                detail=(
                    f"{sync.wait_fraction:.1%} of cpu cycles waiting on locks "
                    f"({sync.total_acquires} acquisitions)"
                ),
            )
        )
    base_frac = fractions.get("base", 1.0) * user_share
    candidates.append(
        Bottleneck(
            kind="compute",
            severity=base_frac,
            detail="cycles not attributable to stalls (issue-bound work)",
        )
    )
    candidates.sort(key=lambda b: b.severity, reverse=True)
    return Diagnosis(
        bottlenecks=candidates,
        kernel_fraction=breakdown.kernel_fraction,
        sync_hold_fraction=sync.hold_fraction,
        sync_wait_fraction=sync.wait_fraction,
        cpi=stack.cpi,
    )


def describe(diagnosis: Diagnosis, top: int = 3) -> str:
    """Human-readable multi-line summary of a diagnosis."""
    lines = [
        f"CPI {diagnosis.cpi:.2f}; kernel {diagnosis.kernel_fraction:.1%}; "
        f"lock-hold {diagnosis.sync_hold_fraction:.1%}; "
        f"lock-wait {diagnosis.sync_wait_fraction:.1%}",
        "ranked bottlenecks:",
    ]
    for b in diagnosis.bottlenecks[:top]:
        lines.append(f"  {b.severity:6.1%}  {b.kind:<9}  {b.detail}")
    return "\n".join(lines)
