"""Measurement-accuracy scoring: tool observations vs ground truth.

Central to experiments E3 (sampling precision) and E4 (read atomicity):
given what a tool reported and what the simulator knows actually happened,
quantify the error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class ErrorSummary:
    """Distribution summary of signed measurement errors."""

    n: int
    n_wrong: int              #: measurements with non-zero error
    max_abs: int
    mean_abs: float
    rms: float

    @property
    def wrong_fraction(self) -> float:
        return self.n_wrong / self.n if self.n else 0.0

    @property
    def all_exact(self) -> bool:
        return self.n_wrong == 0


def summarize_errors(errors: Iterable[int]) -> ErrorSummary:
    errs = list(errors)
    n = len(errs)
    if n == 0:
        return ErrorSummary(n=0, n_wrong=0, max_abs=0, mean_abs=0.0, rms=0.0)
    abs_errs = [abs(e) for e in errs]
    return ErrorSummary(
        n=n,
        n_wrong=sum(1 for e in abs_errs if e),
        max_abs=max(abs_errs),
        mean_abs=sum(abs_errs) / n,
        rms=math.sqrt(sum(e * e for e in errs) / n),
    )


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / truth; inf when truth == 0 and estimate != 0."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / truth


@dataclass(frozen=True)
class AttributionScore:
    """How well a statistical profile matches the true per-region profile."""

    n_regions: int
    n_resolved: int             #: regions the tool attributed anything to
    mean_relative_error: float  #: over resolved regions
    worst_relative_error: float

    @property
    def resolution(self) -> float:
        """Fraction of true regions the tool saw at all."""
        return self.n_resolved / self.n_regions if self.n_regions else 0.0


def score_attribution(
    estimates: dict[str, float], truths: dict[str, float]
) -> AttributionScore:
    """Score per-region estimates against per-region ground truth.

    Regions absent from ``estimates`` count as unresolved; their error does
    not pollute the mean (resolution captures the miss), matching how the
    paper discusses sampling's blindness to short regions.
    """
    n_regions = len(truths)
    rel_errors = []
    n_resolved = 0
    for region, truth in truths.items():
        est = estimates.get(region, 0.0)
        if est > 0:
            n_resolved += 1
            rel_errors.append(relative_error(est, truth))
    return AttributionScore(
        n_regions=n_regions,
        n_resolved=n_resolved,
        mean_relative_error=(
            sum(rel_errors) / len(rel_errors) if rel_errors else float("inf")
        ),
        worst_relative_error=max(rel_errors, default=float("inf")),
    )


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    rank = max(1, math.ceil(p / 100 * len(ordered)))
    return ordered[rank - 1]
