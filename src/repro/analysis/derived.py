"""Derived microarchitectural metrics from raw event counts.

The quantities architects actually discuss — IPC, MPKI, miss ratios,
branch misprediction rates — derived from either ground-truth counts or a
measurement session's observed values. All functions accept a plain
``{Event: count}`` mapping so they work on both.

Undefined vs zero: a ratio whose denominator count is absent or zero has
no value — "no data" is not a measurement of 0.0. Every helper returns
``None`` in that case (surfaced as ``"undefined"`` by
:meth:`MetricSummary.as_dict`), so reports and the static checker
(:mod:`repro.analysis.check`, rule AN003) can tell an instrumentation gap
from a genuinely zero rate. A *numerator* that is absent with a valid
denominator is a true zero: the event simply never fired.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.events import Event


def _get(counts, event: Event) -> int:
    return counts.get(event, 0)


def _ratio(numerator: float, denominator: float) -> float | None:
    return numerator / denominator if denominator else None


def ipc(counts) -> float | None:
    """Instructions per cycle (None without a cycle count)."""
    return _ratio(_get(counts, Event.INSTRUCTIONS), _get(counts, Event.CYCLES))


def cpi(counts) -> float | None:
    """Cycles per instruction (None without an instruction count)."""
    return _ratio(_get(counts, Event.CYCLES), _get(counts, Event.INSTRUCTIONS))


def mpki(counts, miss_event: Event) -> float | None:
    """Misses per kilo-instruction for any miss event (None without
    an instruction count)."""
    insn = _get(counts, Event.INSTRUCTIONS)
    return _ratio(1000.0 * _get(counts, miss_event), insn)


def llc_miss_ratio(counts) -> float | None:
    """LLC misses / LLC references (None without references)."""
    refs = _get(counts, Event.LLC_REFERENCES)
    return _ratio(_get(counts, Event.LLC_MISSES), refs)


def branch_miss_rate(counts) -> float | None:
    """Mispredictions / branches (None without a branch count)."""
    branches = _get(counts, Event.BRANCHES)
    return _ratio(_get(counts, Event.BRANCH_MISSES), branches)


def stall_fraction(counts) -> float | None:
    """Stalled fraction of cycles (None without a cycle count)."""
    return _ratio(_get(counts, Event.STALL_CYCLES), _get(counts, Event.CYCLES))


#: JSON-friendly stand-in for a metric with no defined value.
UNDEFINED = "undefined"


@dataclass(frozen=True)
class MetricSummary:
    """The standard derived-metric bundle for one count set.

    Fields are ``None`` when the metric is undefined for these counts
    (missing denominator event), never silently 0.0.
    """

    ipc: float | None
    llc_mpki: float | None
    l2_mpki: float | None
    branch_miss_rate: float | None
    dtlb_mpki: float | None
    stall_fraction: float | None

    def as_dict(self) -> dict[str, float | str]:
        def cell(value: float | None) -> float | str:
            return UNDEFINED if value is None else value

        return {
            "ipc": cell(self.ipc),
            "llc_mpki": cell(self.llc_mpki),
            "l2_mpki": cell(self.l2_mpki),
            "branch_miss_rate": cell(self.branch_miss_rate),
            "dtlb_mpki": cell(self.dtlb_mpki),
            "stall_fraction": cell(self.stall_fraction),
        }


def summarize(counts) -> MetricSummary:
    """Compute the standard bundle from an event-count mapping."""
    return MetricSummary(
        ipc=ipc(counts),
        llc_mpki=mpki(counts, Event.LLC_MISSES),
        l2_mpki=mpki(counts, Event.L2_MISSES),
        branch_miss_rate=branch_miss_rate(counts),
        dtlb_mpki=mpki(counts, Event.DTLB_MISSES),
        stall_fraction=stall_fraction(counts),
    )


def deltas_to_counts(events, start: list[int], end: list[int]) -> dict[Event, int]:
    """Turn two read_all() snapshots into an event-count mapping.

    >>> from repro.hw.events import Event
    >>> deltas_to_counts([Event.CYCLES], [10], [110])
    {Event.CYCLES: 100}
    """
    if not (len(events) == len(start) == len(end)):
        raise ValueError("events/start/end must have matching lengths")
    return {event: e - s for event, s, e in zip(events, start, end)}
