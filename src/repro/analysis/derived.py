"""Derived microarchitectural metrics from raw event counts.

The quantities architects actually discuss — IPC, MPKI, miss ratios,
branch misprediction rates — derived from either ground-truth counts or a
measurement session's observed values. All functions accept a plain
``{Event: count}`` mapping so they work on both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.events import Event


def _get(counts, event: Event) -> int:
    return counts.get(event, 0)


def ipc(counts) -> float:
    """Instructions per cycle."""
    cycles = _get(counts, Event.CYCLES)
    return _get(counts, Event.INSTRUCTIONS) / cycles if cycles else 0.0


def cpi(counts) -> float:
    insn = _get(counts, Event.INSTRUCTIONS)
    return _get(counts, Event.CYCLES) / insn if insn else 0.0


def mpki(counts, miss_event: Event) -> float:
    """Misses per kilo-instruction for any miss event."""
    insn = _get(counts, Event.INSTRUCTIONS)
    return 1000.0 * _get(counts, miss_event) / insn if insn else 0.0


def llc_miss_ratio(counts) -> float:
    """LLC misses / LLC references."""
    refs = _get(counts, Event.LLC_REFERENCES)
    return _get(counts, Event.LLC_MISSES) / refs if refs else 0.0


def branch_miss_rate(counts) -> float:
    """Mispredictions / branches."""
    branches = _get(counts, Event.BRANCHES)
    return _get(counts, Event.BRANCH_MISSES) / branches if branches else 0.0


def stall_fraction(counts) -> float:
    cycles = _get(counts, Event.CYCLES)
    return _get(counts, Event.STALL_CYCLES) / cycles if cycles else 0.0


@dataclass(frozen=True)
class MetricSummary:
    """The standard derived-metric bundle for one count set."""

    ipc: float
    llc_mpki: float
    l2_mpki: float
    branch_miss_rate: float
    dtlb_mpki: float
    stall_fraction: float

    def as_dict(self) -> dict[str, float]:
        return {
            "ipc": self.ipc,
            "llc_mpki": self.llc_mpki,
            "l2_mpki": self.l2_mpki,
            "branch_miss_rate": self.branch_miss_rate,
            "dtlb_mpki": self.dtlb_mpki,
            "stall_fraction": self.stall_fraction,
        }


def summarize(counts) -> MetricSummary:
    """Compute the standard bundle from an event-count mapping."""
    return MetricSummary(
        ipc=ipc(counts),
        llc_mpki=mpki(counts, Event.LLC_MISSES),
        l2_mpki=mpki(counts, Event.L2_MISSES),
        branch_miss_rate=branch_miss_rate(counts),
        dtlb_mpki=mpki(counts, Event.DTLB_MISSES),
        stall_fraction=stall_fraction(counts),
    )


def deltas_to_counts(events, start: list[int], end: list[int]) -> dict[Event, int]:
    """Turn two read_all() snapshots into an event-count mapping.

    >>> from repro.hw.events import Event
    >>> deltas_to_counts([Event.CYCLES], [10], [110])
    {Event.CYCLES: 100}
    """
    if not (len(events) == len(start) == len(end)):
        raise ValueError("events/start/end must have matching lengths")
    return {event: e - s for event, s, e in zip(events, start, end)}
