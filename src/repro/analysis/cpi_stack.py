"""CPI stacks and user/kernel breakdowns from event counts.

Given exact (or tool-observed) event counts, decompose cycles-per-
instruction into a base component plus miss-event penalties — the classic
way precise counters turn into *architectural bottleneck* diagnoses, which
is the paper's titular use case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.events import Domain, Event
from repro.sim.results import RunResult, ThreadResult

#: Approximate cycle penalties per event on a Nehalem-class core. These are
#: attribution weights for the stack, not simulation inputs.
DEFAULT_PENALTIES: dict[Event, float] = {
    Event.LLC_MISSES: 180.0,       # local memory access
    Event.L2_MISSES: 28.0,         # LLC hit
    Event.BRANCH_MISSES: 16.0,     # pipeline refill
    Event.DTLB_MISSES: 30.0,       # page walk
    Event.ITLB_MISSES: 30.0,
    Event.REMOTE_ACCESSES: 120.0,  # extra latency of cross-socket memory
}


@dataclass
class CpiStack:
    """A decomposition of observed cycles for one measurement scope."""

    cycles: int
    instructions: int
    components: dict[str, float] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def base_cpi(self) -> float:
        """CPI not attributed to any miss event."""
        attributed = sum(self.components.values())
        if not self.instructions:
            return 0.0
        return max(0.0, (self.cycles - attributed) / self.instructions)

    def component_cpi(self, name: str) -> float:
        if not self.instructions:
            return 0.0
        return self.components.get(name, 0.0) / self.instructions

    def fractions(self) -> dict[str, float]:
        """Cycle fraction per component, plus 'base'."""
        if not self.cycles:
            return {}
        out = {name: v / self.cycles for name, v in self.components.items()}
        out["base"] = max(0.0, 1.0 - sum(out.values()))
        return out

    def dominant_component(self) -> str:
        """The largest non-base component, or 'base'."""
        fracs = self.fractions()
        if not fracs:
            return "base"
        return max(fracs, key=lambda k: fracs[k])


def build_cpi_stack(
    counts: dict[Event, int],
    penalties: dict[Event, float] | None = None,
) -> CpiStack:
    """Build a CPI stack from an event-count dict (must include CYCLES and
    INSTRUCTIONS for a meaningful result)."""
    penalties = penalties or DEFAULT_PENALTIES
    cycles = counts.get(Event.CYCLES, 0)
    instructions = counts.get(Event.INSTRUCTIONS, 0)
    components: dict[str, float] = {}
    for event, penalty in penalties.items():
        n = counts.get(event, 0)
        if n:
            # never attribute more than the observed cycles
            components[event.value] = min(float(cycles), n * penalty)
    stack = CpiStack(cycles=cycles, instructions=instructions)
    # scale down proportionally if attribution exceeds total cycles
    total_attr = sum(components.values())
    if total_attr > cycles > 0:
        scale = cycles / total_attr
        components = {k: v * scale for k, v in components.items()}
    stack.components = components
    return stack


def thread_cpi_stack(
    thread: ThreadResult, domain: Domain | None = Domain.USER
) -> CpiStack:
    """CPI stack of one thread from ground truth."""
    if domain is Domain.USER:
        counts = thread.events_user
    elif domain is Domain.KERNEL:
        counts = thread.events_kernel
    else:
        counts = {}
        for src in (thread.events_user, thread.events_kernel):
            for event, n in src.items():
                counts[event] = counts.get(event, 0) + n
    return build_cpi_stack(counts)


@dataclass(frozen=True)
class UserKernelBreakdown:
    """The E8 artifact: where cpu cycles go, per thread group."""

    group: str
    user_cycles: int
    kernel_cycles: int
    idle_wall_cycles: int      #: wall - cpu for the group's threads

    @property
    def cpu_cycles(self) -> int:
        return self.user_cycles + self.kernel_cycles

    @property
    def kernel_fraction(self) -> float:
        return self.kernel_cycles / self.cpu_cycles if self.cpu_cycles else 0.0


def user_kernel_breakdown(result: RunResult, prefix: str = "") -> UserKernelBreakdown:
    """Aggregate user/kernel split over threads whose name starts with
    ``prefix`` (empty prefix = whole run)."""
    threads = [t for t in result.threads.values() if t.name.startswith(prefix)]
    user = sum(t.user_cycles for t in threads)
    kernel = sum(t.kernel_cycles for t in threads)
    wall = sum(t.wall_cycles for t in threads)
    return UserKernelBreakdown(
        group=prefix or "all",
        user_cycles=user,
        kernel_cycles=kernel,
        idle_wall_cycles=max(0, wall - user - kernel),
    )
