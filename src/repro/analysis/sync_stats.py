"""Synchronization statistics — the analysis behind case studies E6/E7.

Summarises per-lock ground truth (and tool observations) into the
quantities the paper reports: acquisition rates, hold/wait distributions,
contention rates, and the fraction of execution spent in or waiting on
critical sections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import Frequency, DEFAULT_FREQUENCY
from repro.kernel.locks import LockStats
from repro.sim.results import RunResult, merge_histogram

#: Histogram bin edges for critical-section lengths, in cycles at 2.4 GHz:
#: <240 (=100ns), <2.4k (1us), <24k (10us), <240k (100us), >=240k.
CS_HISTOGRAM_EDGES = [240, 2_400, 24_000, 240_000]
CS_HISTOGRAM_LABELS = ["<100ns", "<1us", "<10us", "<100us", ">=100us"]


@dataclass(frozen=True)
class LockSummary:
    """One lock's headline statistics."""

    name: str
    n_acquires: int
    contention_rate: float
    futex_rate: float          #: fraction of acquisitions that slept
    mean_hold_cycles: float
    mean_wait_cycles: float
    total_hold_cycles: int
    total_wait_cycles: int


@dataclass(frozen=True)
class SyncProfile:
    """Whole-run synchronization profile."""

    locks: dict[str, LockSummary]
    total_acquires: int
    acquires_per_mcycle: float      #: acquisition frequency
    hold_fraction: float            #: of total cpu cycles spent holding locks
    wait_fraction: float            #: of total cpu cycles spent waiting
    hold_histogram: list[int]       #: per CS_HISTOGRAM_EDGES bucket
    wait_histogram: list[int]

    @property
    def mean_hold_cycles(self) -> float:
        total = sum(s.total_hold_cycles for s in self.locks.values())
        n = sum(s.n_acquires for s in self.locks.values())
        return total / n if n else 0.0


def summarize_lock(name: str, stats: LockStats) -> LockSummary:
    return LockSummary(
        name=name,
        n_acquires=stats.n_acquires,
        contention_rate=stats.contention_rate,
        futex_rate=(
            stats.n_futex_sleeps / stats.n_acquires if stats.n_acquires else 0.0
        ),
        mean_hold_cycles=stats.mean_hold,
        mean_wait_cycles=stats.mean_wait,
        total_hold_cycles=stats.total_hold,
        total_wait_cycles=stats.total_wait,
    )


def sync_profile(result: RunResult, prefix: str = "") -> SyncProfile:
    """Build the synchronization profile of a run (optionally restricted to
    locks whose name starts with ``prefix``)."""
    summaries: dict[str, LockSummary] = {}
    all_holds: list[int] = []
    all_waits: list[int] = []
    for name, stats in result.locks.items():
        if not name.startswith(prefix):
            continue
        summaries[name] = summarize_lock(name, stats)
        all_holds.extend(stats.hold_cycles)
        all_waits.extend(stats.wait_cycles)
    total_acquires = sum(s.n_acquires for s in summaries.values())
    cpu = result.total_cpu_cycles()
    total_hold = sum(s.total_hold_cycles for s in summaries.values())
    total_wait = sum(s.total_wait_cycles for s in summaries.values())
    return SyncProfile(
        locks=summaries,
        total_acquires=total_acquires,
        acquires_per_mcycle=(
            total_acquires / (cpu / 1_000_000) if cpu else 0.0
        ),
        hold_fraction=total_hold / cpu if cpu else 0.0,
        wait_fraction=total_wait / cpu if cpu else 0.0,
        hold_histogram=merge_histogram(all_holds, CS_HISTOGRAM_EDGES),
        wait_histogram=merge_histogram(all_waits, CS_HISTOGRAM_EDGES),
    )


def short_section_fraction(
    profile: SyncProfile, threshold_cycles: int = 2_400
) -> float:
    """Fraction of critical sections shorter than ``threshold_cycles``
    (default 1 us at 2.4 GHz) — the paper's 'locks are short' headline."""
    counts = profile.hold_histogram
    total = sum(counts)
    if total == 0:
        return 0.0
    short = 0
    edge_acc = 0
    for i, edge in enumerate(CS_HISTOGRAM_EDGES):
        if edge <= threshold_cycles:
            short += counts[i]
            edge_acc = edge
    if edge_acc != threshold_cycles:
        # threshold between edges: conservative (counts fully below it only)
        pass
    return short / total


def format_cs_length(cycles: float, frequency: Frequency = DEFAULT_FREQUENCY) -> str:
    ns = frequency.cycles_to_ns(cycles)
    if ns < 1000:
        return f"{ns:.0f}ns"
    return f"{ns / 1000:.1f}us"
