"""A/B comparison of two runs — the perturbation-study workhorse.

Given a baseline run and a treatment run of the *same* workload (same
seeds, different instrumentation / machine / kernel config), compute the
slowdown, per-domain cycle inflation, scheduling-behaviour deltas and
per-lock perturbation, and render them as a table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.common.tables import render_table
from repro.sim.results import RunResult


def _ratio(b: float, a: float) -> float:
    return b / a if a else float("inf") if b else 1.0


@dataclass(frozen=True)
class LockDelta:
    """Perturbation of one lock between two runs."""

    name: str
    hold_inflation: float       #: treatment mean hold / baseline mean hold
    contention_delta: float     #: treatment rate - baseline rate
    acquires_match: bool


@dataclass(frozen=True)
class RunComparison:
    """Structured diff of two runs."""

    wall_ratio: float
    user_ratio: float
    kernel_ratio: float
    switches_ratio: float
    syscalls_ratio: float
    lock_deltas: dict[str, LockDelta]

    @property
    def slowdown(self) -> float:
        return self.wall_ratio

    def worst_lock_inflation(self) -> float:
        return max(
            (d.hold_inflation for d in self.lock_deltas.values()), default=1.0
        )


def compare_runs(baseline: RunResult, treatment: RunResult) -> RunComparison:
    """Compare a treatment run against its baseline.

    Raises ReproError if the runs clearly aren't the same workload (thread
    name sets differ).
    """
    base_names = {t.name for t in baseline.threads.values()}
    treat_names = {t.name for t in treatment.threads.values()}
    if base_names != treat_names:
        raise ReproError(
            "runs have different thread sets; comparison would be "
            f"meaningless (only in baseline: {sorted(base_names - treat_names)[:3]}, "
            f"only in treatment: {sorted(treat_names - base_names)[:3]})"
        )

    lock_deltas = {}
    for name, base_stats in baseline.locks.items():
        treat_stats = treatment.locks.get(name)
        if treat_stats is None:
            continue
        lock_deltas[name] = LockDelta(
            name=name,
            hold_inflation=_ratio(treat_stats.mean_hold, base_stats.mean_hold),
            contention_delta=(
                treat_stats.contention_rate - base_stats.contention_rate
            ),
            acquires_match=treat_stats.n_acquires == base_stats.n_acquires,
        )
    return RunComparison(
        wall_ratio=_ratio(treatment.wall_cycles, baseline.wall_cycles),
        user_ratio=_ratio(
            treatment.total_user_cycles(), baseline.total_user_cycles()
        ),
        kernel_ratio=_ratio(
            treatment.total_kernel_cycles(), baseline.total_kernel_cycles()
        ),
        switches_ratio=_ratio(
            treatment.kernel.n_context_switches,
            baseline.kernel.n_context_switches,
        ),
        syscalls_ratio=_ratio(
            treatment.kernel.syscall_total(), baseline.kernel.syscall_total()
        ),
        lock_deltas=lock_deltas,
    )


def render_comparison(
    comparison: RunComparison,
    baseline_label: str = "baseline",
    treatment_label: str = "treatment",
    top_locks: int = 5,
) -> str:
    """Text rendering of a comparison."""
    rows = [
        ["wall time", f"{comparison.wall_ratio:.3f}x"],
        ["user cycles", f"{comparison.user_ratio:.3f}x"],
        ["kernel cycles", f"{comparison.kernel_ratio:.3f}x"],
        ["context switches", f"{comparison.switches_ratio:.2f}x"],
        ["syscalls", f"{comparison.syscalls_ratio:.2f}x"],
    ]
    blocks = [
        render_table(
            ["metric", f"{treatment_label} / {baseline_label}"],
            rows,
            title="run comparison",
        )
    ]
    if comparison.lock_deltas:
        ranked = sorted(
            comparison.lock_deltas.values(),
            key=lambda d: d.hold_inflation,
            reverse=True,
        )[:top_locks]
        blocks.append(
            render_table(
                ["lock", "hold inflation", "contention delta"],
                [
                    [
                        d.name,
                        f"{d.hold_inflation:.2f}x",
                        f"{d.contention_delta:+.1%}",
                    ]
                    for d in ranked
                ],
                title="most-perturbed locks",
            )
        )
    return "\n\n".join(blocks)
