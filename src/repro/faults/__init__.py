"""repro.faults — deterministic fault injection for the PMU/read stack.

See :mod:`repro.faults.plan` for the plan model / DSL and
:mod:`repro.faults.injector` for the decision engine. ``docs/robustness.md``
documents the taxonomy and the detect-vs-miss semantics.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ALIGN_SLICE,
    AMPLIFY_SKID,
    BAILOUT_POINTS,
    BEFORE_CHECK,
    BETWEEN_LOADS,
    DELAY_SWAP,
    DROP_PMI,
    DUP_SWAP,
    FORCE_BAILOUT,
    FaultPlan,
    FaultSpec,
    KINDS,
    PREEMPT_IN_READ,
    READ_POINTS,
    REPEAT_PMI,
    SHRINK_COUNTER,
    amplify_skid,
    delay_swap,
    drop_pmi,
    dup_swap,
    force_bailout,
    preempt_in_read,
    repeat_pmi,
    shrink_counter,
)

__all__ = [
    "ALIGN_SLICE",
    "AMPLIFY_SKID",
    "BAILOUT_POINTS",
    "BEFORE_CHECK",
    "BETWEEN_LOADS",
    "DELAY_SWAP",
    "DROP_PMI",
    "DUP_SWAP",
    "FORCE_BAILOUT",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "PREEMPT_IN_READ",
    "READ_POINTS",
    "REPEAT_PMI",
    "SHRINK_COUNTER",
    "amplify_skid",
    "delay_swap",
    "drop_pmi",
    "dup_swap",
    "force_bailout",
    "preempt_in_read",
    "repeat_pmi",
    "shrink_counter",
]
