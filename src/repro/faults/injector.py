"""Fault-injection decision engine.

:class:`FaultInjector` owns the *decision* side of fault injection: given a
:class:`~repro.faults.plan.FaultPlan` it answers "does a fault of kind K fire
here?" (:meth:`fire`) and keeps the injected/detected/missed bookkeeping the
manifests report. It deliberately knows nothing about the engine — all state
mutation (forcing a switch-out, re-arming a PMI, narrowing a counter) happens
at the engine's hook points, which consult the injector and then act. ``core``
and ``thread`` arguments are duck-typed: the injector only reads ``core.now``,
``thread.name`` and ``thread.tid``.

Decision determinism: selection depends only on the plan and on simulated
state (cycle counts, match ordinals, a :class:`~repro.common.rng.RandomStream`
seeded from ``plan.seed``), never on tracing, wall time, or host identity.

Detect-vs-miss semantics (the numbers ``fault_summary()`` reports):

* *detected* — the protocol noticed the hazard: a safe read whose restart
  check failed after an injected preemption, or a dropped PMI whose latched
  overflow was later recovered (redelivery or virtualization fold).
* *missed* — the hazard produced (or would produce) a silent mismeasurement:
  an unsafe read preempted mid-sequence, or a safe read that completed
  *without* restarting despite an injected preemption (a protocol bug —
  e17 asserts this count stays zero).
* Timing-only kinds (skid amplification, swap delay/duplication, width
  shrink, forced bailouts, repeated PMIs) count as injected only: they are
  perturbations the protocol must absorb, not hazards it must flag.
"""

from __future__ import annotations

from repro.common.rng import RandomStream
from repro.faults.plan import (
    FORCE_BAILOUT,
    FaultPlan,
    FaultSpec,
    PREEMPT_IN_READ,
    SERVICE_KINDS,
    SHRINK_COUNTER,
)


class FaultInjector:
    """Stateful per-run decision engine for one :class:`FaultPlan`."""

    __slots__ = (
        "plan",
        "_specs",
        "_by_kind",
        "_match_counts",
        "_fired_counts",
        "_rngs",
        "injected",
        "detected",
        "missed",
        "_dropped_pending",
        "_read_hazards",
        "_service_pending",
        "reads_armed",
        "tick_armed",
    )

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._specs = tuple(plan.specs)
        by_kind: dict[str, list[int]] = {}
        for i, spec in enumerate(self._specs):
            by_kind.setdefault(spec.kind, []).append(i)
        self._by_kind = {k: tuple(v) for k, v in by_kind.items()}
        self._match_counts = [0] * len(self._specs)
        self._fired_counts = [0] * len(self._specs)
        self._rngs: dict[int, RandomStream] = {}
        self.injected: dict[str, int] = {}
        self.detected = 0
        self.missed = 0
        # Per-core count of dropped-PMI overflows not yet recovered.
        self._dropped_pending: dict[int, int] = {}
        # tid -> outstanding injected read-preemption awaiting its safe-read
        # restart-check verdict.
        self._read_hazards: dict[int, int] = {}
        # kind -> fired service faults the workload has not yet resolved
        # (absorbed by a policy or flushed to missed at run teardown).
        self._service_pending: dict[str, int] = {}
        # Arming flags the engine checks on its fast paths: whenever read
        # faults are armed the composite-read fast path must bail (so traced
        # and untraced runs take the same stage-machine path), and whenever a
        # tick-triggered fault is armed macro stepping must bail (macro steps
        # skip _timer_tick).
        self.reads_armed = any(
            s.kind == PREEMPT_IN_READ
            or (s.kind == FORCE_BAILOUT and s.point in ("", "fast_read"))
            for s in self._specs
        )
        self.tick_armed = any(s.kind == SHRINK_COUNTER for s in self._specs)

    # -- the one decision entry point --------------------------------------

    def fire(
        self,
        kind: str,
        core,
        thread=None,
        protocol: str = "",
        point: str = "",
    ) -> FaultSpec | None:
        """Return the spec that fires a ``kind`` fault here, or ``None``.

        Specs are consulted in plan order; filters (window / thread /
        protocol / point) decide whether a spec *matches* at all, and only
        matches advance its occurrence counter. A matching spec then fires
        according to nth / every / max_injections / probability; the first
        spec to fire wins.
        """
        indices = self._by_kind.get(kind)
        if not indices:
            return None
        now = core.now
        name = thread.name if thread is not None else ""
        for i in indices:
            spec = self._specs[i]
            if spec.window is not None and not (
                spec.window[0] <= now < spec.window[1]
            ):
                continue
            if spec.thread and spec.thread != name:
                continue
            # A set selector must match the hook's report; FaultSpec
            # validation guarantees protocol/point are only set on kinds
            # whose hooks supply them, so there is no "caller passed
            # nothing" case to special-case here.
            if spec.protocol and spec.protocol != protocol:
                continue
            if spec.point and spec.point != point:
                continue
            self._match_counts[i] += 1
            n = self._match_counts[i]
            if spec.nth is not None:
                if n != spec.nth:
                    continue
            elif n % spec.every != 0:
                continue
            if (
                spec.max_injections is not None
                and self._fired_counts[i] >= spec.max_injections
            ):
                continue
            if spec.probability < 1.0:
                rng = self._rngs.get(i)
                if rng is None:
                    rng = RandomStream(self.plan.seed, "fault", i, spec.kind)
                    self._rngs[i] = rng
                if not rng.bernoulli(spec.probability):
                    continue
            self._fired_counts[i] += 1
            self.injected[kind] = self.injected.get(kind, 0) + 1
            if kind in SERVICE_KINDS:
                # Service faults open a ledger entry the workload must
                # close (resolve_service_fault) — an unresolved entry at
                # teardown is a miss: the resilience policies never saw it.
                self._service_pending[kind] = (
                    self._service_pending.get(kind, 0) + 1
                )
            return spec
        return None

    # -- detect / miss bookkeeping ------------------------------------------

    def note_read_hazard(self, tid: int, protocol: str) -> None:
        """An injected preemption landed inside a read critical section."""
        if protocol == "safe":
            self._read_hazards[tid] = self._read_hazards.get(tid, 0) + 1
        else:
            # Unsafe reads have no restart check: the mismeasurement is
            # silent by construction.
            self.missed += 1

    def resolve_safe_check(self, tid: int, check_passed: bool) -> None:
        """The safe read's restart check ran for ``tid``.

        ``check_passed`` means the read saw no interruption and completed.
        With an injected preemption outstanding that is a *miss* (the
        protocol failed to notice); a failed check (restart) is a *detect*.
        """
        pending = self._read_hazards.pop(tid, 0)
        if not pending:
            return
        if check_passed:
            self.missed += pending
        else:
            self.detected += pending

    def resolve_service_fault(self, kind: str, absorbed: bool = True) -> None:
        """The workload handled one fired service fault of ``kind``.

        ``absorbed`` means a resilience policy accounted for the fault
        (retry succeeded, request was shed/timed out explicitly, breaker
        short-circuited, outage was served after restart); ``False`` means
        the fault escaped the policies (silent corruption of a response,
        an unhandled error path) and counts as a miss.
        """
        pending = self._service_pending.get(kind, 0)
        if pending <= 0:
            return
        if pending == 1:
            del self._service_pending[kind]
        else:
            self._service_pending[kind] = pending - 1
        if absorbed:
            self.detected += 1
        else:
            self.missed += 1

    def flush_service_pending(self) -> int:
        """Convert every unresolved service fault into a miss (run teardown).

        Returns how many were flushed; E20's full-policy arm asserts zero.
        """
        n = sum(self._service_pending.values())
        if n:
            self.missed += n
            self._service_pending.clear()
        return n

    def note_dropped_pmi(self, core_id: int) -> None:
        self._dropped_pending[core_id] = self._dropped_pending.get(core_id, 0) + 1

    def note_overflow_recovered(self, core_id: int) -> int:
        """Latched overflows were applied on ``core_id``; any outstanding
        dropped PMIs there are now recovered (detected). Returns how many."""
        n = self._dropped_pending.pop(core_id, 0)
        if n:
            self.detected += n
        return n

    # -- reporting ----------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def summary(self) -> dict:
        return {
            "injected": self.total_injected,
            "detected": self.detected,
            "missed": self.missed,
            "by_kind": dict(sorted(self.injected.items())),
        }
