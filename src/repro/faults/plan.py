"""The fault-injection plan model: *what* to break, *when*, and *how*.

A :class:`FaultPlan` is a frozen, picklable, deterministically-repr'd value
(it rides inside :class:`~repro.common.config.SimConfig`, so it is part of
the result-cache key) holding an ordered tuple of :class:`FaultSpec`\\ s.
Each spec pairs a *trigger predicate* over simulation state — a cycle
window, a thread name, a read protocol/point, nth-occurrence / every-kth
selection, an optional seeded probability — with one *fault kind* and its
kind-specific ``arg``.

The specs only *describe* faults; all mechanics live in
:mod:`repro.faults.injector` (decision bookkeeping) and the engine's hook
points (state mutation). Determinism contract: given the same plan and the
same simulated execution, the same injections fire at the same simulated
cycles — regardless of tracing, process boundaries or host machine
(probabilistic specs draw from a :class:`~repro.common.rng.RandomStream`
derived from ``plan.seed``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

# -- fault kinds ------------------------------------------------------------
#: Forced preemption inside the read critical section (storms targeting the
#: safe/unsafe read protocols at a chosen vulnerable point).
PREEMPT_IN_READ = "preempt_in_read"
#: An overflow PMI delivery is lost. The hardware latch survives, so the
#: overflow is recovered at redelivery (``arg`` cycles later) or at the next
#: virtualization fold — the safe-read restart check sees it either way.
DROP_PMI = "drop_pmi"
#: A spurious second PMI right after a real one: extra handler cycles and,
#: mid-read, a spurious interruption flag (forcing a harmless restart).
REPEAT_PMI = "repeat_pmi"
#: PMI skid amplification: multiply the overflow-to-interrupt delay by
#: ``arg`` (>= 2), or with ``arg == ALIGN_SLICE`` stretch the skid so the
#: PMI lands on exactly the same cycle as the end of the current timeslice
#: (the PMI-meets-virtualization-swap collision).
AMPLIFY_SKID = "amplify_skid"
#: Delayed virtualization swap: the switch-out save path stalls ``arg``
#: extra kernel cycles while the outgoing thread's counters are still live.
DELAY_SWAP = "delay_swap"
#: Duplicated virtualization swap: the per-counter save path runs twice on
#: switch-out (the second fold must be idempotent — deprogrammed counters
#: read zero — or counts would be double-folded).
DUP_SWAP = "dup_swap"
#: Counter-width reduction mid-run: every hardware counter narrows to
#: ``arg`` bits at the next timer tick inside the trigger window, latching
#: the truncated high bits as overflows (so virtualization recovers them).
SHRINK_COUNTER = "shrink_counter"
#: Force the engine's fast paths (macro stepping / composite reads / spin
#: batching) to bail to their slow paths — fingerprint-invariant by the
#: fast paths' equivalence contract, used to diff fast vs slow under faults.
FORCE_BAILOUT = "force_bailout"

# -- service-level fault kinds (the resilience tier, PR 9) -------------------
#: Latency spike: every request served by the targeted tier while the spec
#: fires costs ``arg`` extra service cycles (slow dependency, GC pause, cold
#: cache). The tier's ``point`` selector names the tier ("" = any tier).
TIER_LATENCY = "tier_latency"
#: Error burst: calls *into* the targeted tier fail while the spec fires.
#: The caller sees the failure and must absorb it (retry / shed / breaker);
#: the detect ledger tracks whether it did.
TIER_ERROR = "tier_error"
#: Tier crash + restart: a worker of the targeted tier stops serving for
#: ``arg`` cycles (the outage window), then resumes — upstream queues back
#: up and admission/shedding must absorb the backlog.
TIER_CRASH = "tier_crash"

#: The workload-level (service chain) fault kinds. Unlike the PMU/kernel
#: kinds above they fire at *workload* hook points — the service chain in
#: :mod:`repro.workloads.service` consults the injector via
#: ``ThreadContext.service_fault`` — and their ``point`` field carries the
#: targeted *tier name* instead of a read/bailout point.
SERVICE_KINDS: frozenset[str] = frozenset({TIER_LATENCY, TIER_ERROR, TIER_CRASH})

KINDS: frozenset[str] = (
    frozenset(
        {
            PREEMPT_IN_READ,
            DROP_PMI,
            REPEAT_PMI,
            AMPLIFY_SKID,
            DELAY_SWAP,
            DUP_SWAP,
            SHRINK_COUNTER,
            FORCE_BAILOUT,
        }
    )
    | SERVICE_KINDS
)

# -- read-protocol vulnerable points ----------------------------------------
#: Between the accumulator load and the rdpmc — the classic LiMiT hazard: an
#: unsafe read preempted here silently undercounts by the pre-switch
#: hardware value; a safe read restarts.
BETWEEN_LOADS = "between_loads"
#: Between the read-end marker and the evaluation of the interruption flag —
#: the two halves of the safe read's restart check. Only reachable for the
#: safe protocol; the check must still catch the preemption.
BEFORE_CHECK = "before_check"

READ_POINTS: tuple[str, ...] = (BETWEEN_LOADS, BEFORE_CHECK)

#: Fast paths a FORCE_BAILOUT spec may target via its ``point`` field
#: ("" targets all three).
BAILOUT_POINTS: tuple[str, ...] = ("macro", "fast_read", "spin")

#: AMPLIFY_SKID arg sentinel: land the PMI on the current slice boundary.
ALIGN_SLICE = -1


@dataclass(frozen=True)
class FaultSpec:
    """One trigger predicate plus one fault action.

    Selection fields (all optional, AND-ed together):

    * ``window`` — fire only while ``start <= core.now < end``;
    * ``thread`` — fire only for this thread name ("" = any);
    * ``protocol`` — for read faults, "safe" / "unsafe" ("" = both);
    * ``point`` — read vulnerable point or bailout target ("" = default);
    * ``nth`` — fire on exactly the nth matching occurrence (1-based),
      otherwise ``every`` fires on every kth match;
    * ``max_injections`` — stop after this many firings;
    * ``probability`` — seeded coin flip on each otherwise-firing match.
    """

    kind: str
    window: tuple[int, int] | None = None
    thread: str = ""
    protocol: str = ""
    point: str = ""
    nth: int | None = None
    every: int = 1
    max_injections: int | None = None
    probability: float = 1.0
    arg: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; known: {sorted(KINDS)}"
            )
        if self.window is not None:
            start, end = self.window
            if start < 0 or end <= start:
                raise ConfigError(f"bad fault window {self.window!r}")
        if self.every < 1:
            raise ConfigError(f"fault 'every' must be >= 1, got {self.every}")
        if self.nth is not None and self.nth < 1:
            raise ConfigError(f"fault 'nth' must be >= 1, got {self.nth}")
        if self.max_injections is not None and self.max_injections < 1:
            raise ConfigError("fault max_injections must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.protocol not in ("", "safe", "unsafe"):
            raise ConfigError(f"bad fault protocol {self.protocol!r}")
        if self.protocol and self.kind != PREEMPT_IN_READ:
            # Only the read-hazard hook reports a protocol; a protocol
            # selector on any other kind would never match and the spec
            # would be silently inert.
            raise ConfigError(
                f"fault kind {self.kind!r} takes no protocol selector"
            )
        if self.kind == PREEMPT_IN_READ:
            if self.point not in ("",) + READ_POINTS:
                raise ConfigError(
                    f"bad read point {self.point!r}; known: {READ_POINTS}"
                )
        elif self.kind == FORCE_BAILOUT:
            if self.point not in ("",) + BAILOUT_POINTS:
                raise ConfigError(
                    f"bad bailout point {self.point!r}; known: {BAILOUT_POINTS}"
                )
        elif self.kind in SERVICE_KINDS:
            # ``point`` is a tier name here ("" = any tier). Whether the
            # name actually matches a tier in the workload is a *static*
            # question repro.lint answers (ML012); the spec itself only
            # rejects names that could never be tier identifiers.
            if self.point and not self.point.replace("_", "").isalnum():
                raise ConfigError(
                    f"bad tier selector {self.point!r} for {self.kind!r}: "
                    "tier names are alphanumeric/underscore identifiers"
                )
        elif self.point:
            raise ConfigError(f"fault kind {self.kind!r} takes no point")
        if self.kind == SHRINK_COUNTER and not 8 <= self.arg <= 63:
            raise ConfigError(
                f"shrink_counter arg is the new width, must be in [8, 63], "
                f"got {self.arg}"
            )
        if self.kind == AMPLIFY_SKID and self.arg != ALIGN_SLICE and self.arg < 2:
            raise ConfigError(
                "amplify_skid arg must be a multiplier >= 2 or ALIGN_SLICE"
            )
        if self.kind in (DROP_PMI, DELAY_SWAP) and self.arg < 0:
            raise ConfigError(f"{self.kind} arg (cycles) must be >= 0")
        if self.kind in (TIER_LATENCY, TIER_CRASH) and self.arg < 1:
            raise ConfigError(
                f"{self.kind} arg (cycles) must be >= 1, got {self.arg}"
            )
        if self.kind == TIER_ERROR and self.arg != 0:
            raise ConfigError("tier_error takes no arg")
        if (
            self.kind == PREEMPT_IN_READ
            and self.protocol != "unsafe"
            and self.every == 1
            and self.nth is None
            and self.max_injections is None
            and self.probability >= 1.0
        ):
            # Every restart of a safe read re-enters the vulnerable window,
            # so a fire-on-every-occurrence storm preempts the retry too and
            # the read can never complete (it would run into MAX_RESTARTS).
            raise ConfigError(
                "unbounded every-occurrence preemption storm against the "
                "safe read protocol cannot terminate; bound it with "
                "every>=2, nth, max_injections, or probability<1 "
                "(or target protocol='unsafe')"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs plus the seed for probabilistic ones."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)


# -- spec builders (the plan DSL used by e17 and docs/robustness.md) --------


def preempt_in_read(
    point: str = BETWEEN_LOADS, protocol: str = "", **sel
) -> FaultSpec:
    """Forced preemption at a read-protocol vulnerable point."""
    return FaultSpec(PREEMPT_IN_READ, point=point, protocol=protocol, **sel)


def drop_pmi(redelivery: int = 2_000, **sel) -> FaultSpec:
    """Lose a PMI delivery; the latched overflow redelivers ``redelivery``
    cycles later (0 = only recovered at the next virtualization fold)."""
    return FaultSpec(DROP_PMI, arg=redelivery, **sel)


def repeat_pmi(**sel) -> FaultSpec:
    """Spuriously repeat a just-serviced PMI."""
    return FaultSpec(REPEAT_PMI, **sel)


def amplify_skid(factor: int = 16, **sel) -> FaultSpec:
    """Multiply PMI skid by ``factor`` (or pass ``ALIGN_SLICE``)."""
    return FaultSpec(AMPLIFY_SKID, arg=factor, **sel)


def delay_swap(cycles: int = 600, **sel) -> FaultSpec:
    """Stall the switch-out save path by ``cycles`` kernel cycles."""
    return FaultSpec(DELAY_SWAP, arg=cycles, **sel)


def dup_swap(**sel) -> FaultSpec:
    """Run the switch-out save path twice."""
    return FaultSpec(DUP_SWAP, **sel)


def shrink_counter(width: int, max_injections: int | None = 1, **sel) -> FaultSpec:
    """Narrow every hardware counter to ``width`` bits (default: once)."""
    return FaultSpec(SHRINK_COUNTER, arg=width, max_injections=max_injections, **sel)


def force_bailout(point: str = "", **sel) -> FaultSpec:
    """Force fast-path bailouts ("" = macro + fast_read + spin)."""
    return FaultSpec(FORCE_BAILOUT, point=point, **sel)


def tier_latency(tier: str = "", extra: int = 50_000, **sel) -> FaultSpec:
    """Latency spike: +``extra`` service cycles per request at ``tier``."""
    return FaultSpec(TIER_LATENCY, point=tier, arg=extra, **sel)


def tier_error(tier: str = "", **sel) -> FaultSpec:
    """Error burst: calls into ``tier`` fail while the spec fires."""
    return FaultSpec(TIER_ERROR, point=tier, **sel)


def tier_crash(tier: str = "", outage: int = 2_000_000, **sel) -> FaultSpec:
    """Crash/restart: a ``tier`` worker stops serving for ``outage`` cycles."""
    return FaultSpec(TIER_CRASH, point=tier, arg=outage, **sel)
