"""Hazard passes over a walked program + its :class:`SimConfig`.

Each pass scans the per-thread op timelines produced by
:mod:`repro.lint.walker` (plus the config the run would use) and emits
:class:`~repro.lint.findings.Finding` objects. The catalog (rule ids,
severities, rationale, fix hints) is documented in docs/static-analysis.md;
the E18 experiment demonstrates that every *error*-class hazard here
corresponds to a reproducible mismeasurement (or hard failure) under the
E17 fault injector.

Rule index
----------
* ML001 unbalanced-read-window   — PmcReadBegin/End imbalance or nesting
* ML002 unbalanced-region        — RegionEnd underflow / unclosed regions
* ML003 unsafe-read-preemptible  — unprotected read where a preemption
                                   window is reachable
* ML004 counter-overflow-risk    — worst-case events per accrual window
                                   reach the hardware counter capacity
* ML005 read-in-critical-section — restartable counter read while holding
                                   a userspace lock
* ML006 cross-thread-slot-alias  — read of a slot this thread never opened
* ML007 counter-slot-exhaustion  — more concurrent counters than the PMU has
* ML008 reads-without-limit-patch— userspace counter access with the LiMiT
                                   kernel patch disabled
* ML009 fault-spec-unmatchable   — fault plan entries that can never fire
* ML010 walk-failed              — the program crashed under the stub walk
* ML011 walk-truncated           — op budget exhausted; prefix analyzed
* ML012 tier-fault-unmatchable   — service-level fault spec targets a tier
                                   this program never runs
"""

from __future__ import annotations

from typing import Any

from repro.common.config import SimConfig
from repro.hw.events import CYCLES_PPM, Event, events_in
from repro.lint.findings import ERROR, INFO, WARNING, Finding, LintReport
from repro.lint.walker import ProgramWalk, ThreadWalk
from repro.sim import ops as op

#: Ops that read counters from userspace (require the LiMiT kernel patch).
_USER_READ_OPS = (
    op.Rdpmc,
    op.RdpmcDestructive,
    op.LoadVAccum,
    op.PmcSafeRead,
    op.PmcUnsafeRead,
)

#: Ops that perform a *complete* counter read (the read-in-critical-section
#: and aliasing passes look at these).
_READ_OPS = (
    op.Rdpmc,
    op.RdpmcDestructive,
    op.PmcSafeRead,
    op.PmcUnsafeRead,
)


def _preemption_sources(walk: ProgramWalk) -> list[str]:
    """Why a thread of this program can lose the CPU (or take a PMI)
    mid-window. Empty list = no preemption source exists in this config."""
    config = walk.config
    sources: list[str] = []
    if len(walk.threads) > config.machine.n_cores:
        sources.append(
            f"{len(walk.threads)} threads contend for "
            f"{config.machine.n_cores} core(s)"
        )
    plan = config.fault_plan
    if plan is not None and any(
        spec.kind == "preempt_in_read" for spec in plan.specs
    ):
        sources.append("the fault plan injects read-window preemptions")
    if _overflow_risks(walk):
        sources.append("counters can overflow (PMIs interrupt the window)")
    if any(
        isinstance(o, op.Syscall)
        and o.name == "pmc_open"
        and o.args
        and getattr(o.args[0], "mode", "count") == "sample"
        for t in walk.threads
        for o in t.ops
    ):
        sources.append("sampling counters deliver PMIs")
    return sources


def _worst_rates(thread: ThreadWalk) -> dict[Event, int]:
    """Worst-case (max over compute phases) event rate per event, in ppm."""
    worst: dict[Event, int] = {}
    for o in thread.ops:
        if isinstance(o, op.Compute):
            for event, ppm in o.rates.items():
                if ppm > worst.get(event, 0):
                    worst[event] = ppm
    return worst


def _opened_events(thread: ThreadWalk) -> set[Event]:
    opened: set[Event] = set()
    for o in thread.ops:
        if isinstance(o, op.Syscall) and o.name == "pmc_open" and o.args:
            spec = o.args[0]
            event = getattr(spec, "event", None)
            if isinstance(event, Event):
                opened.add(event)
    return opened


def _total_compute_cycles(thread: ThreadWalk) -> int:
    return sum(o.cycles for o in thread.ops if isinstance(o, op.Compute))


def _overflow_risks(walk: ProgramWalk) -> list[tuple[ThreadWalk, Event, int, int]]:
    """(thread, event, worst events per accrual window, window) tuples where
    a hardware counter can reach its overflow threshold.

    The accrual window is how long a counter can count without being folded
    to zero by virtualization: one timeslice when context switches happen
    (more runnable threads than cores), else the thread's entire run. The
    per-window worst case reuses the engine's closed-form accrual
    (:func:`repro.hw.events.events_in`) at the thread's peak rate.
    """
    config = walk.config
    pmu = config.machine.pmu
    # A shrink_counter fault narrows the hardware width at runtime, so the
    # plan's width participates in the worst case (E17's width-shrink arm).
    plan = config.fault_plan
    shrink_widths = [
        spec.arg
        for spec in (plan.specs if plan is not None else ())
        if spec.kind == "shrink_counter"
    ]
    if pmu.wide_counters and not shrink_widths:
        return []
    width = pmu.effective_width if not pmu.wide_counters else 64
    if shrink_widths:
        width = min(width, *shrink_widths)
    threshold = 1 << width
    switching = len(walk.threads) > config.machine.n_cores
    out: list[tuple[ThreadWalk, Event, int, int, int]] = []
    for thread in walk.threads:
        opened = _opened_events(thread)
        if not opened:
            continue
        window = (
            config.kernel.timeslice_cycles
            if switching
            else max(_total_compute_cycles(thread), 1)
        )
        rates = _worst_rates(thread)
        for event in sorted(opened, key=lambda e: e.value):
            ppm = CYCLES_PPM if event is Event.CYCLES else rates.get(event, 0)
            worst = events_in(0, window, ppm)
            if worst >= threshold:
                out.append((thread, event, worst, window, width))
    return out


# ---------------------------------------------------------------------------
# passes
# ---------------------------------------------------------------------------


def _pass_walk_health(walk: ProgramWalk, report: LintReport) -> None:
    for t in walk.threads:
        if t.walk_error:
            report.add(Finding(
                rule="ML010",
                severity=ERROR,
                message=(
                    f"program crashed during the static walk: {t.walk_error}"
                ),
                fix_hint=(
                    "the generator raised under stub op results; if it "
                    "depends on engine-only state, restructure it to use op "
                    "results and ctx.rng only"
                ),
                thread=t.name,
                op_index=t.walk_error_op,
            ))
        if t.truncated:
            report.add(Finding(
                rule="ML011",
                severity=INFO,
                message=(
                    f"walk stopped after {len(t.ops)} ops; hazards past the "
                    "prefix are not analyzed"
                ),
                fix_hint="raise max_ops or lint a smaller configuration",
                thread=t.name,
                op_index=len(t.ops),
            ))


def _pass_read_windows(walk: ProgramWalk, report: LintReport) -> None:
    """ML001: manual PmcReadBegin/End must be balanced and unnested."""
    for t in walk.threads:
        depth = 0
        nested = underflow = 0
        first_nested: int | None = None
        first_underflow: int | None = None
        for i, o in enumerate(t.ops):
            if isinstance(o, op.PmcReadBegin):
                depth += 1
                if depth > 1:
                    nested += 1
                    if first_nested is None:
                        first_nested = i
            elif isinstance(o, op.PmcReadEnd):
                if depth == 0:
                    underflow += 1
                    if first_underflow is None:
                        first_underflow = i
                else:
                    depth -= 1
        if nested:  # one finding per thread, not one per loop iteration
            report.add(Finding(
                rule="ML001",
                severity=ERROR,
                message=(
                    "nested measurement window: PmcReadBegin inside an "
                    "open read window (a nested begin silently clears the "
                    "outer window's interrupted flag)"
                    + (f"; {nested} occurrence(s)" if nested > 1 else "")
                ),
                fix_hint="close the outer window with PmcReadEnd before "
                         "opening another",
                thread=t.name,
                op_index=first_nested,
            ))
        if underflow:
            report.add(Finding(
                rule="ML001",
                severity=ERROR,
                message=(
                    "PmcReadEnd without a matching PmcReadBegin"
                    + (f"; {underflow} occurrence(s)" if underflow > 1 else "")
                ),
                fix_hint="open the window with PmcReadBegin first",
                thread=t.name,
                op_index=first_underflow,
            ))
        if depth > 0:
            report.add(Finding(
                rule="ML001",
                severity=ERROR,
                message=f"{depth} read window(s) never closed: every later "
                        "context switch marks the thread interrupted and the "
                        "read result is never validated",
                fix_hint="close the window with PmcReadEnd and honour its "
                         "restart verdict (or use PmcSafeRead)",
                thread=t.name,
            ))


def _pass_regions(walk: ProgramWalk, report: LintReport) -> None:
    """ML002: region begin/end balance (the engine hard-faults underflow)."""
    for t in walk.threads:
        depth = 0
        for i, o in enumerate(t.ops):
            if isinstance(o, op.RegionBegin):
                depth += 1
            elif isinstance(o, op.RegionEnd):
                if depth == 0:
                    report.add(Finding(
                        rule="ML002",
                        severity=ERROR,
                        message="RegionEnd with no open region "
                                "(SimulationError at runtime)",
                        fix_hint="match every RegionEnd with a RegionBegin",
                        thread=t.name,
                        op_index=i,
                    ))
                else:
                    depth -= 1
        if depth > 0:
            report.add(Finding(
                rule="ML002",
                severity=WARNING,
                message=f"{depth} region(s) still open at thread exit; their "
                        "durations are never recorded",
                fix_hint="close regions with RegionEnd before the program ends",
                thread=t.name,
            ))


def _manual_unsafe_windows(t: ThreadWalk) -> list[int]:
    """Op indices of LoadVAccum..Rdpmc pairs outside any protected window —
    a hand-rolled unsafe read."""
    out: list[int] = []
    depth = 0
    pending_load: int | None = None
    for i, o in enumerate(t.ops):
        if isinstance(o, op.PmcReadBegin):
            depth += 1
            pending_load = None
        elif isinstance(o, op.PmcReadEnd):
            depth = max(0, depth - 1)
            pending_load = None
        elif isinstance(o, op.LoadVAccum):
            if depth == 0:
                pending_load = i
        elif isinstance(o, op.Rdpmc):
            if depth == 0 and pending_load is not None:
                out.append(pending_load)
            pending_load = None
        elif not isinstance(o, op.Compute):
            # any other op (syscall, lock, sleep...) breaks the pattern
            pending_load = None
    return out


def _pass_unsafe_reads(walk: ProgramWalk, report: LintReport) -> None:
    """ML003: unprotected reads where a preemption window is reachable."""
    sources = _preemption_sources(walk)
    for t in walk.threads:
        sites: list[tuple[int, str]] = []
        for i, o in enumerate(t.ops):
            if isinstance(o, op.PmcUnsafeRead):
                sites.append((i, "PmcUnsafeRead"))
        for i in _manual_unsafe_windows(t):
            sites.append((i, "unprotected LoadVAccum+Rdpmc sequence"))
        # One finding per site *kind* per thread: a read in a loop is one
        # hazard, not six hundred.
        grouped: dict[str, tuple[int, int]] = {}
        for i, what in sorted(sites):
            first, n = grouped.get(what, (i, 0))
            grouped[what] = (first, n + 1)
        for what, (i, n) in sorted(grouped.items(), key=lambda kv: kv[1][0]):
            if n > 1:
                what = f"{what} ({n} sites)"
            if sources:
                report.add(Finding(
                    rule="ML003",
                    severity=ERROR,
                    message=(
                        f"{what} can be interrupted mid-window "
                        f"({'; '.join(sources)}): a context switch between "
                        "the accumulator load and the rdpmc silently "
                        "undercounts"
                    ),
                    fix_hint="use the safe read protocol (PmcSafeRead / "
                             "LimitSession.read_safe)",
                    thread=t.name,
                    op_index=i,
                ))
            else:
                report.add(Finding(
                    rule="ML003",
                    severity=INFO,
                    message=(
                        f"{what} is only correct because no preemption "
                        "source exists in this exact config; any config "
                        "change (more threads, narrower counters, sampling) "
                        "makes it silently undercount"
                    ),
                    fix_hint="prefer PmcSafeRead even on idle configs",
                    thread=t.name,
                    op_index=i,
                ))


def _pass_overflow(walk: ProgramWalk, report: LintReport) -> None:
    """ML004: counters that can reach capacity inside one accrual window."""
    risks = _overflow_risks(walk)
    for thread, event, worst, window, width in risks:
        has_unprotected = any(
            isinstance(o, op.PmcUnsafeRead) for o in thread.ops
        ) or bool(_manual_unsafe_windows(thread))
        if has_unprotected:
            severity, extra = ERROR, (
                "; combined with this thread's unprotected reads every wrap "
                f"inside the window silently undercounts by 2^{width}"
            )
        else:
            severity, extra = WARNING, (
                "; the safe protocol recovers each wrap via the overflow "
                "PMI, at the cost of PMI pressure and read restarts"
            )
        report.add(Finding(
            rule="ML004",
            severity=severity,
            message=(
                f"{event.value} counter can overflow: worst case "
                f"{worst} events in a {window}-cycle accrual window vs "
                f"2^{width} = {1 << width} capacity{extra}"
            ),
            fix_hint="widen the counters (wide_counters=True), shorten the "
                     "timeslice, or lower the event rate",
            thread=thread.name,
        ))


def _pass_reads_in_critical_sections(
    walk: ProgramWalk, report: LintReport
) -> None:
    """ML005: counter reads while holding a userspace lock."""
    contended = len(walk.threads) > 1
    for t in walk.threads:
        held: list[str] = []
        flagged: set[str] = set()  # one finding per (lock) per thread
        for i, o in enumerate(t.ops):
            if isinstance(o, op.LockAcquire):
                held.append(o.lock)
            elif isinstance(o, op.LockRelease):
                if o.lock in held:
                    held.remove(o.lock)
            elif isinstance(o, _READ_OPS) and held:
                key = held[-1]
                if key in flagged:
                    continue
                flagged.add(key)
                severity = WARNING if contended else INFO
                restart = (
                    "a restarting safe read"
                    if isinstance(o, op.PmcSafeRead)
                    else "the read sequence"
                )
                report.add(Finding(
                    rule="ML005",
                    severity=severity,
                    message=(
                        f"counter read while holding lock {key!r}: under "
                        f"preemption pressure {restart} extends the critical "
                        "section, inflating every waiter's measurement "
                        "(observer effect)"
                    ),
                    fix_hint="read before acquiring / after releasing, or "
                             "accept and document the perturbation",
                    thread=t.name,
                    op_index=i,
                ))


def _replay_slots(t: ThreadWalk) -> list[tuple[int, Any, set[int]]]:
    """(op_index, read op, open-slot-set-at-that-point) for every read."""
    open_slots: set[int] = set()
    out: list[tuple[int, Any, set[int]]] = []
    for i, (o, result) in enumerate(zip(t.ops, t.results)):
        if isinstance(o, op.Syscall):
            if o.name == "pmc_open" and isinstance(result, int):
                open_slots.add(result)
            elif o.name == "pmc_close" and o.args:
                open_slots.discard(o.args[0])
        elif isinstance(o, _READ_OPS + (op.LoadVAccum,)):
            out.append((i, o, set(open_slots)))
    return out


def _pass_slot_usage(walk: ProgramWalk, report: LintReport) -> None:
    """ML006 aliasing + ML007 exhaustion, from replayed slot tables."""
    n_counters = walk.config.machine.pmu.n_counters
    for t in walk.threads:
        # exhaustion: pmc_open results past the physical table (one finding
        # per thread; the fake over-allocated indices come from the walker)
        over_opens = [
            i
            for i, (o, result) in enumerate(zip(t.ops, t.results))
            if isinstance(o, op.Syscall) and o.name == "pmc_open"
            and isinstance(result, int) and result >= n_counters
        ]
        if over_opens:
            report.add(Finding(
                rule="ML007",
                severity=ERROR,
                message=(
                    f"thread opens more than {n_counters} concurrent "
                    "counters"
                    + (f" ({len(over_opens)} opens past the table)"
                       if len(over_opens) > 1 else "")
                    + "; the PMU does not multiplex (CounterError at "
                    "runtime)"
                ),
                fix_hint="close counters before opening more, or "
                         "configure a PMU with more slots",
                thread=t.name,
                op_index=over_opens[0],
            ))
        flagged_slots: dict[int, tuple[int, int]] = {}  # index -> (op, n)
        for i, o, open_slots in _replay_slots(t):
            index = getattr(o, "index", None)
            if index is None or index in open_slots:
                continue
            first, n = flagged_slots.get(index, (i, 0))
            flagged_slots[index] = (first, n + 1)
        for index, (i, n) in sorted(
            flagged_slots.items(), key=lambda kv: kv[1][0]
        ):
            opened_elsewhere = any(
                index in {
                    r for oo, r in zip(ot.ops, ot.results)
                    if isinstance(oo, op.Syscall) and oo.name == "pmc_open"
                    and isinstance(r, int)
                }
                for ot in walk.threads
                if ot is not t
            )
            sites = f" ({n} reads)" if n > 1 else ""
            if opened_elsewhere:
                message = (
                    f"read of counter slot {index} that this thread never "
                    f"opened{sites} (a sibling thread did): counters are "
                    "virtualized per thread, so this reads a different "
                    "thread's (or an unallocated) counter"
                )
                hint = ("open the session on every thread that reads it "
                        "(session.setup per thread)")
            else:
                message = (
                    f"read of counter slot {index} that is not open at "
                    f"this point{sites} (CounterError at runtime)"
                )
                hint = "open the counter first (Syscall('pmc_open', ...))"
            report.add(Finding(
                rule="ML006",
                severity=ERROR,
                message=message,
                fix_hint=hint,
                thread=t.name,
                op_index=i,
            ))


def _pass_limit_patch(walk: ProgramWalk, report: LintReport) -> None:
    """ML008: userspace counter access with the kernel patch off."""
    if walk.config.kernel.limit_patch:
        return
    for t in walk.threads:
        for i, o in enumerate(t.ops):
            if isinstance(o, _USER_READ_OPS):
                report.add(Finding(
                    rule="ML008",
                    severity=ERROR,
                    message=(
                        f"{type(o).__name__} with kernel.limit_patch=False: "
                        "userspace rdpmc is disabled, the read faults with "
                        "CounterError"
                    ),
                    fix_hint="enable kernel.limit_patch or use a "
                             "kernel-mediated baseline session",
                    thread=t.name,
                    op_index=i,
                ))
                break  # one finding per thread is enough


def _pass_fault_plan(walk: ProgramWalk, report: LintReport) -> None:
    """ML009: fault plan entries that contradict the program/config."""
    plan = walk.config.fault_plan
    if plan is None or not plan.specs:
        return
    names = set(walk.thread_names())
    for i, spec in enumerate(plan.specs):
        if spec.thread and spec.thread not in names:
            report.add(Finding(
                rule="ML009",
                severity=WARNING,
                message=(
                    f"fault spec #{i} ({spec.kind}) targets thread "
                    f"{spec.thread!r}, which this program never starts — "
                    "the spec can never fire"
                ),
                fix_hint=f"target one of: {sorted(names)}",
            ))
        if spec.window is not None and spec.window[0] >= walk.config.max_cycles:
            report.add(Finding(
                rule="ML009",
                severity=WARNING,
                message=(
                    f"fault spec #{i} ({spec.kind}) window starts at "
                    f"{spec.window[0]}, beyond max_cycles="
                    f"{walk.config.max_cycles} — the spec can never fire"
                ),
                fix_hint="move the window inside the run's cycle budget",
            ))


def _pass_service_faults(walk: ProgramWalk, report: LintReport) -> None:
    """ML012: service-level fault specs whose tier selector can't match.

    Service-chain workloads name tier threads ``svc:<tier>:w<i>`` (the
    convention :mod:`repro.workloads.service` establishes), and a
    service-level fault spec selects its target tier via ``point``. A
    selector naming a tier no thread of this program serves — or any
    service-kind spec against a program with no service tiers at all —
    can never fire, and the E20-style detect/miss ledger will silently
    show zero injections instead of flagging the typo.
    """
    from repro.faults.plan import SERVICE_KINDS

    plan = walk.config.fault_plan
    if plan is None or not plan.specs:
        return
    service_specs = [
        (i, spec) for i, spec in enumerate(plan.specs)
        if spec.kind in SERVICE_KINDS
    ]
    if not service_specs:
        return
    tiers = {
        parts[1]
        for parts in (name.split(":") for name in walk.thread_names())
        if len(parts) >= 3 and parts[0] == "svc" and parts[1] != "gen"
    }
    for i, spec in service_specs:
        if not tiers:
            report.add(Finding(
                rule="ML012",
                severity=WARNING,
                message=(
                    f"fault spec #{i} ({spec.kind}) is service-level, but "
                    "this program starts no service tiers (no 'svc:<tier>:*' "
                    "threads) — the spec can never fire"
                ),
                fix_hint="drop the spec or run it against a service-chain "
                         "workload",
            ))
        elif spec.point and spec.point not in tiers:
            report.add(Finding(
                rule="ML012",
                severity=WARNING,
                message=(
                    f"fault spec #{i} ({spec.kind}) targets tier "
                    f"{spec.point!r}, which this program never runs — "
                    "the spec can never fire"
                ),
                fix_hint=f"target one of: {sorted(tiers)}",
            ))


_PASSES = (
    _pass_walk_health,
    _pass_read_windows,
    _pass_regions,
    _pass_unsafe_reads,
    _pass_overflow,
    _pass_reads_in_critical_sections,
    _pass_slot_usage,
    _pass_limit_patch,
    _pass_fault_plan,
    _pass_service_faults,
)


def analyze_walk(walk: ProgramWalk) -> LintReport:
    """Run every hazard pass over a walked program."""
    report = LintReport()
    report.note_checked("threads", len(walk.threads))
    report.note_checked("ops", walk.n_ops())
    report.walk_truncated = sum(1 for t in walk.threads if t.truncated)
    report.walk_max_ops = walk.max_ops
    for rule_pass in _PASSES:
        rule_pass(walk, report)
    return report


def lint_program(
    specs,
    config: SimConfig | None = None,
    max_ops: int | None = None,
) -> LintReport:
    """Walk + analyze a workload: the one-call program/config front end.

    The walk *executes factory code* with stub results; lint a freshly
    built workload (not one whose session objects a live run will reuse)
    — see :mod:`repro.lint.gate` for the fabric integration that does.
    """
    from repro.lint.walker import DEFAULT_MAX_OPS, walk_program

    walk = walk_program(
        specs, config, max_ops=max_ops or DEFAULT_MAX_OPS
    )
    return analyze_walk(walk)
