"""``python -m repro.lint``: run the static analyzers from the shell.

Usage::

    python -m repro.lint                      # self + registry + workloads
                                              #   + analysis declarations
    python -m repro.lint self                 # AST rules over src/repro
    python -m repro.lint registry             # experiment metadata rules
    python -m repro.lint workloads            # walk the workload catalog
    python -m repro.lint workloads mysql apache --cores 2
    python -m repro.lint analysis             # AN rules over the declared
                                              #   metrics/trees/assumptions
    python -m repro.lint --strict             # warnings also fail
    python -m repro.lint --suppress ML005,SA001
    python -m repro.lint --json report.json   # machine-readable report

Exit code 0 when the (possibly suppressed) report passes, 1 when it fails
— the same verdict the fabric gate enforces before dispatch.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.lint.findings import LintReport
from repro.lint.meta import check_registry
from repro.lint.rules import lint_program
from repro.lint.selfcheck import selfcheck_tree


def _lint_workloads(
    names: list[str], cores: int, scale: float, report: LintReport
) -> None:
    from repro.cli import build_workload_specs
    from repro.common.config import MachineConfig, SimConfig

    config = SimConfig(machine=MachineConfig(n_cores=cores))
    for name in names:
        specs = build_workload_specs(name, scale)
        sub = lint_program(specs, config)
        report.merge(sub)
        report.note_checked("workloads")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static measurement-hazard and determinism analysis.",
    )
    parser.add_argument(
        "target",
        nargs="?",
        choices=("all", "self", "registry", "workloads", "analysis"),
        default="all",
        help="which analyzer front end to run (default: all)",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="workload names for the 'workloads' target (default: whole catalog)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too (the gate's --lint-strict verdict)",
    )
    parser.add_argument(
        "--suppress",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to drop (counted, never silent)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=4,
        metavar="N",
        help="machine cores assumed when walking workloads (default: 4)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        metavar="X",
        help="workload scale for the walk (default: 0.1; hazards are "
        "scale-independent, small walks are fast)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the report as JSON (schema repro.lint/report/v1)",
    )
    args = parser.parse_args(argv)
    if args.names and args.target != "workloads":
        parser.error("workload names require the 'workloads' target")

    report = LintReport()
    if args.target in ("all", "self"):
        report.merge(selfcheck_tree())
    if args.target in ("all", "registry"):
        report.merge(check_registry())
    if args.target in ("all", "workloads"):
        from repro.cli import _workload_catalog

        names = args.names or sorted(_workload_catalog())
        _lint_workloads(names, args.cores, args.scale, report)
    if args.target in ("all", "analysis"):
        from repro.analysis.check import check_analysis
        from repro.common.config import MachineConfig, SimConfig

        report.merge(
            check_analysis(
                SimConfig(machine=MachineConfig(n_cores=args.cores))
            )
        )

    suppress = tuple(r.strip() for r in args.suppress.split(",") if r.strip())
    if suppress:
        report = report.suppress(suppress)

    print(report.render())
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
    return 0 if report.ok(strict=args.strict) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
