"""Process-local lint gate for the run fabric: fail closed before dispatch.

:func:`install` arms the gate; from then on every :func:`repro.fabric.run_many`
batch is statically analyzed *before* any worker process is spawned or any
cache entry served. A batch containing a hazardous program raises
:class:`~repro.common.errors.LintError` — no run executes, matching the
"reject before the expensive fabric-scheduled run is launched" contract.

The gate lints by rebuilding each job's workload from its dotted path (the
same resolution :func:`repro.fabric.jobs.execute_job` performs inside the
worker), so the *walked* session/profiler objects are fresh throwaways and
the live objects a run will use are never touched. That also means the gate
sees exactly what the worker will execute — not a stale copy the caller
linted earlier.

State is process-local (like :func:`repro.fabric.configure`); the runner
ships :func:`state` to pool workers and calls :func:`restore` there so
experiments gate identically inline and pooled. Reports accumulate per
process and are drained into manifests via :func:`drain_reports`.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import LintError
from repro.lint.findings import LintReport
from repro.lint.rules import lint_program

_mode: str = "off"  # "off" | "on" | "strict"
_suppress: tuple[str, ...] = ()

#: (label, report dict) per gated batch since the last drain.
_session_reports: list[dict[str, Any]] = []


def install(strict: bool = False, suppress: tuple[str, ...] = ()) -> None:
    """Arm the gate for this process (idempotent; strict wins over on)."""
    global _mode, _suppress
    _mode = "strict" if strict else "on"
    _suppress = tuple(suppress)


def uninstall() -> None:
    global _mode, _suppress
    _mode = "off"
    _suppress = ()


def active() -> bool:
    return _mode != "off"


def state() -> tuple[str, tuple[str, ...]]:
    """Picklable gate state, for re-arming worker processes."""
    return (_mode, _suppress)


def restore(mode: str, suppress: tuple[str, ...] = ()) -> None:
    """Worker-side counterpart of :func:`state`."""
    global _mode, _suppress
    _mode = mode
    _suppress = tuple(suppress)


def drain_reports() -> list[dict[str, Any]]:
    """Return (and clear) the per-batch gate reports from this process."""
    global _session_reports
    reports, _session_reports = _session_reports, []
    return reports


def lint_job(job: Any) -> LintReport:
    """Statically analyze one :class:`~repro.fabric.jobs.RunJob`.

    Builds a fresh workload instance from the job's dotted path + kwargs
    and walks it against the job's config.
    """
    from repro.fabric.jobs import resolve

    factory = resolve(job.workload)
    trial = factory(**job.kwargs)
    specs = trial.build() if hasattr(trial, "build") else trial
    report = lint_program(specs, job.config)
    if _suppress:
        report = report.suppress(_suppress)
    return report


def check_jobs(jobs: list[Any]) -> LintReport:
    """Gate a batch: lint every job, raise LintError if any fails.

    All jobs are linted (not just the first offender) so the error names
    every hazardous program in the batch at once.
    """
    merged = LintReport()
    bad: list[str] = []
    strict = _mode == "strict"
    for job in jobs:
        label = job.label or job.workload
        report = lint_job(job)
        merged.merge(report)
        if not report.ok(strict=strict):
            bad.append(f"{label}: {report.summary_line()}")
    merged.note_checked("programs", len(jobs))
    _session_reports.append({
        "mode": _mode,
        "n_jobs": len(jobs),
        "ok": not bad,
        **merged.as_dict(),
    })
    if bad:
        raise LintError(
            f"lint gate ({_mode}) rejected {len(bad)} of {len(jobs)} "
            "job(s) before dispatch:\n"
            + "\n".join(f"  {line}" for line in bad)
            + "\n"
            + "\n".join("  " + f.render() for f in merged.findings)
        )
    return merged
