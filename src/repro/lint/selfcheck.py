"""Repo self-analyzer: AST rules over ``src/repro`` itself.

The simulator's contract is bit-exact determinism (same config + seed =>
same fingerprint) and a single audited path to the virtual PMU. These rules
keep the *source tree* honest about both, without executing anything:

* SA001 ``wall-clock-in-sim-path`` — nondeterminism sources (``time.time``,
  ``datetime.now``/``utcnow``, module-level unseeded ``random.*``,
  ``uuid.uuid4``, ``os.urandom``) inside determinism-critical packages.
  ``time.perf_counter`` is exempt: it feeds self-telemetry (wall-clock
  metrics) and never simulator state, and :func:`repro.obs` fingerprints
  exclude telemetry. Orchestration layers that legitimately live in
  wall-clock time (``obs``, ``fabric``, ``bench``, ``cli``) are out of
  scope by design.
* SA002 ``unregistered-trace-kind`` — ``*.emit(...)`` with a string-literal
  event kind not registered in :data:`repro.obs.trace.KINDS`. Unregistered
  kinds break manifest consumers and the Perfetto exporter silently.
* SA003 ``direct-pmu-access`` — constructing raw counter-access ops
  (``Rdpmc``, ``RdpmcDestructive``, ``LoadVAccum``, ``PmcUnsafeRead``)
  outside the read-protocol layer (``repro.core``) and the op definitions
  themselves (``repro.sim``). Everything else must go through
  :mod:`repro.core.read_protocol` / the session classes so hazards stay
  analyzable (and E17's injector stays able to exercise them).

Suppression: append ``# lint: allow[SA001]`` (or a comma-separated list,
``# lint: allow[SA001,SA003]``) to the offending line. Suppressions are
counted in the report, never silent.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.lint.findings import ERROR, Finding, LintReport

#: Top-level ``repro.*`` packages whose behaviour must be a pure function of
#: (config, seed). Wall-clock layers — obs (telemetry), fabric (process
#: orchestration), bench, cli, the runner's timing — are intentionally absent.
DETERMINISM_PACKAGES = (
    "sim",
    "core",
    "kernel",
    "hw",
    "faults",
    "common",
    "lint",
)

#: (module, attr) call targets that introduce nondeterminism. ``random``
#: module-level functions draw from the unseeded global Random instance;
#: seeded ``repro.common.rng.RandomStream`` is the sanctioned source.
_NONDET_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"),
    ("uuid", "uuid4"),
    ("uuid", "uuid1"),
    ("random", "random"),
    ("random", "randint"),
    ("random", "randrange"),
    ("random", "uniform"),
    ("random", "choice"),
    ("random", "choices"),
    ("random", "shuffle"),
    ("random", "sample"),
    ("random", "gauss"),
    ("random", "getrandbits"),
    ("random", "seed"),
}

#: Raw counter-access op constructors only repro.core/repro.sim may call.
_RAW_PMU_OPS = frozenset(
    {"Rdpmc", "RdpmcDestructive", "LoadVAccum", "PmcUnsafeRead"}
)

#: Packages allowed to construct raw PMU ops: the protocol layer and the
#: op/engine definitions.
_PMU_ALLOWED_PACKAGES = ("core", "sim")

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9, ]+)\]")


def _suppressions(source: str) -> dict[int, set[str]]:
    """line number -> rule ids suppressed on that line."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            out[lineno] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return out


def _call_target(node: ast.Call) -> tuple[str, str] | None:
    """Resolve a call to (base, attr): ``time.time()`` -> ("time", "time").

    Handles one extra attribute hop for ``datetime.datetime.now()``.
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    base = func.value
    if isinstance(base, ast.Name):
        return (base.id, attr)
    if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
        # datetime.datetime.now() / datetime.date.today()
        return (base.attr, attr)
    return None


def _package_of(rel_path: Path) -> str:
    """Top-level package of a file under src/repro ('' for repro/x.py)."""
    parts = rel_path.parts
    return parts[0] if len(parts) > 1 else ""


class _SourceVisitor(ast.NodeVisitor):
    def __init__(
        self,
        rel_name: str,
        package: str,
        trace_kinds: frozenset[str],
        suppressed: dict[int, set[str]],
        report: LintReport,
    ) -> None:
        self.rel_name = rel_name
        self.package = package
        self.trace_kinds = trace_kinds
        self.suppressed = suppressed
        self.report = report

    def _add(self, rule: str, line: int, message: str, fix_hint: str) -> None:
        if rule in self.suppressed.get(line, set()):
            self.report.suppressed += 1
            return
        self.report.add(Finding(
            rule=rule,
            severity=ERROR,
            message=message,
            fix_hint=fix_hint,
            file=self.rel_name,
            line=line,
        ))

    def visit_Call(self, node: ast.Call) -> None:
        target = _call_target(node)

        # SA001: nondeterminism in determinism-critical packages.
        if (
            target in _NONDET_CALLS
            and self.package in DETERMINISM_PACKAGES
        ):
            base, attr = target  # type: ignore[misc]
            self._add(
                "SA001",
                node.lineno,
                f"{base}.{attr}() in determinism-critical package "
                f"repro.{self.package}: results must be a pure function of "
                "(config, seed)",
                "use repro.common.rng.RandomStream for randomness and "
                "simulated cycles for time; wall-clock telemetry belongs in "
                "repro.obs (time.perf_counter is exempt)",
            )

        # SA002: string-literal trace kind not registered in obs KINDS.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and len(node.args) >= 4
        ):
            kind_arg = node.args[3]
            if (
                isinstance(kind_arg, ast.Constant)
                and isinstance(kind_arg.value, str)
                and kind_arg.value not in self.trace_kinds
            ):
                self._add(
                    "SA002",
                    node.lineno,
                    f"trace emit with unregistered event kind "
                    f"{kind_arg.value!r}: manifest consumers and the "
                    "Perfetto exporter only understand registered kinds",
                    "add the kind to repro.obs.trace.KIND_DESCRIPTIONS "
                    "(or use an existing tr.* constant)",
                )

        # SA003: raw PMU op construction outside the protocol layer.
        ctor = ""
        if isinstance(node.func, ast.Name) and node.func.id in _RAW_PMU_OPS:
            ctor = node.func.id
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _RAW_PMU_OPS
        ):
            ctor = node.func.attr
        if ctor and self.package not in _PMU_ALLOWED_PACKAGES:
            self._add(
                "SA003",
                node.lineno,
                f"direct PMU access: {ctor}(...) constructed outside "
                "repro.core/repro.sim bypasses the audited read protocol",
                "go through repro.core.read_protocol (safe_read / "
                "unsafe_read) or a session class",
            )

        self.generic_visit(node)


def _trace_kinds() -> frozenset[str]:
    from repro.obs.trace import KINDS

    return KINDS


def selfcheck_file(
    path: Path, root: Path, trace_kinds: frozenset[str] | None = None
) -> LintReport:
    """Run the SA rules over one source file."""
    report = LintReport()
    rel = path.relative_to(root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(rel))
    except SyntaxError as exc:
        report.add(Finding(
            rule="SA000",
            severity=ERROR,
            message=f"file does not parse: {exc.msg}",
            fix_hint="fix the syntax error",
            file=str(rel),
            line=exc.lineno or 0,
        ))
        return report
    visitor = _SourceVisitor(
        rel_name=str(rel),
        package=_package_of(rel),
        trace_kinds=trace_kinds if trace_kinds is not None else _trace_kinds(),
        suppressed=_suppressions(source),
        report=report,
    )
    visitor.visit(tree)
    report.note_checked("files")
    return report


def selfcheck_tree(root: Path | None = None) -> LintReport:
    """Run the SA rules over every Python file under ``src/repro``.

    ``root`` is the ``repro`` package directory; by default it is located
    from this module's own position in the tree.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    report = LintReport()
    kinds = _trace_kinds()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        report.merge(selfcheck_file(path, root, trace_kinds=kinds))
    return report
