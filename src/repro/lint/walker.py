"""Static program walking: enumerate a workload's ops without simulating.

A simulated program is a Python generator that yields ops and receives each
op's result back (:mod:`repro.sim.ops`). The walker drives those generators
to completion with *stub* results — no engine, no scheduler, no timing — and
records, per thread, the exact op sequence the program would issue plus the
result fed back for each op. That per-thread op timeline is the CFG the
hazard passes in :mod:`repro.lint.rules` analyze.

Stub result discipline (what makes walking sound for this DSL):

* counter reads return strictly increasing integers, so measurement deltas
  (``end - start``) are positive and library loops that retry on
  non-positive deltas terminate;
* ``PmcReadEnd`` always reports "not interrupted", so safe-read restart
  loops exit after one attempt (the walk sees the *shape* of the protocol,
  not its dynamic restart count);
* ``Syscall("pmc_open")`` allocates from a per-thread slot table mirroring
  :class:`repro.kernel.vpmu.VirtualPmu` (first free of ``pmu.n_counters``),
  so slot indices match what the engine would hand out;
* ``SpawnThread`` allocates the next tid and queues the spawned factory for
  walking, exactly like the engine's clone path.

The walk executes workload *factory* code, so it can run arbitrary Python —
callers that lint shared session objects should build a fresh workload for
the walk (the fabric gate does; see :mod:`repro.lint.gate`). Programs whose
generators raise under stub results produce a ``walk_error`` note instead of
crashing the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.config import SimConfig
from repro.common.rng import RandomStream
from repro.sim import ops as op
from repro.sim.program import ThreadSpec

#: Per-thread op budget; programs longer than this are analyzed on the
#: walked prefix and marked truncated (an INFO finding, never silent).
DEFAULT_MAX_OPS = 200_000


class _StubThread:
    """Duck-typed stand-in for the engine's SimThread.

    Measurement libraries only touch the ground-truth audit fields
    (``last_rdpmc_truth``, ``last_kernel_read_truth``) on the object
    :meth:`ThreadContext.thread` returns; everything else raising
    AttributeError is deliberate — it surfaces programs that depend on
    engine internals the static walk cannot provide.
    """

    __slots__ = ("tid", "name", "last_rdpmc_truth", "last_kernel_read_truth")

    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        self.last_rdpmc_truth: int | None = None
        self.last_kernel_read_truth: dict[int, int] = {}


class _StubPerfTable:
    """Stand-in for the engine's perf-fd table: every fd backs slot 0."""

    class _Entry:
        __slots__ = ("slot",)

        def __init__(self) -> None:
            self.slot = 0

    def get(self, fd: int) -> "_StubPerfTable._Entry":
        return self._Entry()


class _StubEngine:
    """Minimal engine facade for libraries that reach through the context
    (the perf_read baseline maps fds back to slots via ``ctx._engine``)."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.perf = _StubPerfTable()


class LintContext:
    """ThreadContext-compatible handle handed to factories during a walk."""

    def __init__(self, name: str, tid: int, config: SimConfig) -> None:
        self.name = name
        self.tid = tid
        self.rng = RandomStream(config.seed, "thread", name, tid)
        self.scratch: dict[str, Any] = {}
        self._config = config
        self._engine = _StubEngine(config)
        self._stub_thread = _StubThread(tid, name)
        self._fake_now = 0

    def now(self) -> int:
        # Advances on each query so duration math stays positive.
        self._fake_now += 1_000
        return self._fake_now

    def thread(self) -> _StubThread:
        return self._stub_thread

    def service_fault(self, kind: str, tier: str):
        """Static walks carry no fault plan, so service faults never fire;
        whether a plan's tier selectors could ever match is a separate
        static question (rule ML012 in :mod:`repro.lint.rules`)."""
        return None

    def service_fault_resolved(self, kind: str, absorbed: bool = True) -> None:
        return None

    @property
    def frequency(self):
        return self._config.machine.frequency

    @property
    def costs(self):
        return self._config.machine.costs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LintContext {self.name!r} tid={self.tid}>"


@dataclass
class ThreadWalk:
    """One thread's statically enumerated op timeline."""

    name: str
    tid: int
    spawned_by: str = ""          #: parent thread name ("" for initial specs)
    ops: list[Any] = field(default_factory=list)
    results: list[Any] = field(default_factory=list)
    truncated: bool = False
    #: exception repr if the generator raised under stub results, else ""
    walk_error: str = ""
    walk_error_op: int = 0        #: op index at which the error surfaced
    #: the generator factory this walk drove, kept so callers can *replay*
    #: the thread (compiled-tier prediction forks, lazy clone-time lowering)
    factory: Any = None
    #: the spawn_tid_base this walk ran under — replays must reuse it, or a
    #: re-walk's SpawnThread results would diverge from the recorded prefix
    spawn_tid_base: int = 0

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class ProgramWalk:
    """The full static walk of a workload: every thread, in tid order."""

    config: SimConfig
    threads: list[ThreadWalk] = field(default_factory=list)
    #: per-thread op budget the walk ran under (reports surface it so a
    #: truncated analysis names the limit that cut it short)
    max_ops: int = DEFAULT_MAX_OPS

    def thread_names(self) -> list[str]:
        return [t.name for t in self.threads]

    def n_ops(self) -> int:
        return sum(len(t) for t in self.threads)


class _SlotTable:
    """Mirror of VirtualPmu allocation: first-free slot of n physical."""

    def __init__(self, n_slots: int) -> None:
        self.slots: list[Any] = [None] * n_slots
        self.overflowed = 0

    def allocate(self, spec: Any) -> int:
        for i, slot in enumerate(self.slots):
            if slot is None:
                self.slots[i] = spec
                return i
        # Keep walking past the error the engine would raise: hand out a
        # fake out-of-range index; the slot-exhaustion rule flags it.
        self.overflowed += 1
        return len(self.slots) - 1 + self.overflowed

    def free(self, index: int) -> None:
        if 0 <= index < len(self.slots):
            self.slots[index] = None


#: Op types whose stub result is the monotone fake counter.
_STUB_MONOTONE = (
    op.Rdtsc,
    op.Rdpmc,
    op.RdpmcDestructive,
    op.LoadVAccum,
    op.PmcSafeRead,
    op.PmcUnsafeRead,
)


def _stub_code(current: Any) -> int:
    """Stub-result strategy for one op: 0 = None, 1 = syscall stubs,
    2 = monotone counter value, 3 = "not interrupted", 4 = spawn. The
    isinstance fallback keeps historical semantics for op subclasses
    defined outside :mod:`repro.sim.ops`."""
    if isinstance(current, op.Syscall):
        return 1
    if isinstance(current, _STUB_MONOTONE):
        return 2
    if isinstance(current, op.PmcReadEnd):
        return 3
    if isinstance(current, op.SpawnThread):
        return 4
    return 0


#: Type-identity fast path for :func:`_stub_code` — the walk runs once per
#: op of every linted/lowered program, so a per-op isinstance chain is a
#: measurable fraction of lowering time.
_STUB_DISPATCH: dict[type, int] = {
    cls: _stub_code(object.__new__(cls))
    for cls in vars(op).values()
    if isinstance(cls, type) and issubclass(cls, op.Op) and cls is not op.Op
}


def _walk_thread(
    walk: ThreadWalk,
    factory: Any,
    ctx: LintContext,
    config: SimConfig,
    max_ops: int,
    spawn_queue: list[tuple[str, Any, str]],
    spawn_tid_base: int,
    force_results: dict[int, Any] | None = None,
) -> None:
    """Drive one generator to completion with stub results.

    ``spawn_tid_base`` is the tid the first thread this walk spawns will
    receive (everything already pending gets its tid first), so programs
    that keep the SpawnThread result for a later JoinThread see the same
    tids the engine would assign.

    ``force_results`` overrides the stub result at specific op indices
    (index -> value). The stub machinery still runs for those ops, so the
    walk's internal state (slot tables, fake counters, handles) evolves
    identically to an unforced walk — only the value fed back differs.
    This is how the compiled tier forks a prediction at a two-valued op:
    replay the thread with the alternative result forced at that index.
    """
    slots = _SlotTable(config.machine.pmu.n_counters)
    fake_counter = 0   # monotone source for read/rdtsc results
    fake_fd = 2        # perf/mux handle source (first handle is 3)
    next_result: Any = None
    ops_list = walk.ops
    results_list = walk.results
    dispatch_get = _STUB_DISPATCH.get
    n = 0
    try:
        gen = factory(ctx)
        send = gen.send  # a fresh generator's send(None) == next(gen)
        while True:
            try:
                current = send(next_result)
            except StopIteration:
                break
            ops_list.append(current)
            n += 1
            if n > max_ops:
                walk.truncated = True
                gen.close()
                break
            # -- stub result per op kind --------------------------------
            code = dispatch_get(type(current))
            if code is None:
                code = _stub_code(current)
            if code == 0:
                next_result = None
            elif code == 1:  # Syscall
                if current.name == "pmc_open":
                    spec = current.args[0] if current.args else None
                    next_result = slots.allocate(spec)
                elif current.name == "pmc_close":
                    if current.args:
                        slots.free(current.args[0])
                    next_result = None
                elif current.name in ("perf_open", "mux_open"):
                    fake_fd += 1  # handles must be distinct ints
                    next_result = fake_fd
                elif current.name == "papi_read":
                    # kernel group read: one monotone value per index
                    indices = current.args[0] if current.args else ()
                    values = []
                    for _ in indices:
                        fake_counter += 1_000
                        values.append(fake_counter)
                    next_result = tuple(values)
                elif current.name == "perf_read":
                    fake_counter += 1_000
                    next_result = fake_counter
                elif current.name == "mux_read":
                    # The engine deposits ground truths in ctx.scratch right
                    # before delivering the triples; mirror that contract
                    # with empty lists (zip() then yields no estimates).
                    ctx.scratch["_mux_truth"] = []
                    next_result = []
                else:
                    next_result = 0
            elif code == 2:  # monotone counter/timestamp reads
                fake_counter += 1_000
                next_result = fake_counter
            elif code == 3:  # PmcReadEnd
                next_result = True   # "not interrupted": restart loops exit
            else:            # SpawnThread
                next_result = spawn_tid_base + len(spawn_queue)
                spawn_queue.append((current.name, current.factory, walk.name))
            if force_results is not None and n - 1 in force_results:
                next_result = force_results[n - 1]
            results_list.append(next_result)
    except Exception as exc:  # noqa: BLE001 - reported as a finding
        walk.walk_error = f"{type(exc).__name__}: {exc}"
        walk.walk_error_op = len(walk.ops)


def walk_program(
    specs: list[ThreadSpec],
    config: SimConfig | None = None,
    max_ops: int = DEFAULT_MAX_OPS,
    first_tid: int = 0,
) -> ProgramWalk:
    """Statically enumerate every thread's ops for a workload.

    ``specs`` is the same list :func:`repro.sim.engine.run_program` takes.
    Spawned threads (via :class:`~repro.sim.ops.SpawnThread`) are walked
    too, in spawn order, with tids assigned in creation order (initial
    specs first, then spawns as they are issued — the engine's order for
    programs that spawn up front; interleaved mid-run spawns may differ,
    which affects only finding labels, never hazard detection).

    ``first_tid`` is the tid given to the first walked thread. Lint keeps
    the historical 0 base; the compiled-tier lowering pass passes the
    engine's 1 base so each walk context draws from the *same* seeded
    ``RandomStream(seed, "thread", name, tid)`` the engine will construct,
    making predicted op streams exact for result-independent programs.
    """
    from repro.obs import runtime as obs_runtime

    config = config or SimConfig()
    program = ProgramWalk(config=config, max_ops=max_ops)
    pending: list[tuple[str, Any, str]] = [
        (spec.name, spec.factory, "") for spec in specs
    ]
    next_tid = first_tid
    # The walk executes real workload generators, which may feed windowed
    # observations to the ambient collector; a throwaway scope absorbs
    # them so a static walk can never pollute live measurements.
    with obs_runtime.collect(label="lint-walk"):
        _walk_all(program, pending, config, max_ops, next_tid)
    return program


def _walk_all(
    program: ProgramWalk,
    pending: list[tuple[str, Any, str]],
    config: SimConfig,
    max_ops: int,
    next_tid: int,
) -> None:
    while pending:
        name, factory, spawned_by = pending.pop(0)
        tid = next_tid
        next_tid += 1
        walk = ThreadWalk(
            name=name,
            tid=tid,
            spawned_by=spawned_by,
            factory=factory,
            spawn_tid_base=next_tid + len(pending),
        )
        ctx = LintContext(name, tid, config)
        spawn_queue: list[tuple[str, Any, str]] = []
        _walk_thread(
            walk,
            factory,
            ctx,
            config,
            max_ops,
            spawn_queue,
            spawn_tid_base=walk.spawn_tid_base,
        )
        pending.extend(spawn_queue)
        program.threads.append(walk)
