"""Static analysis for the LiMiT reproduction: measurement-hazard linting.

Two front ends share one findings model (:mod:`repro.lint.findings`):

* the **program/config analyzer** (:func:`lint_program`) walks the op DSL
  without executing and runs hazard passes (the ML rules) — unbalanced read
  windows, unsafe reads under reachable preemption, counter-overflow risk,
  reads inside critical sections, cross-thread slot aliasing, slot
  exhaustion, configs that disable the kernel patch their programs need,
  unmatchable fault plans;
* the **repo self-analyzer** (:func:`selfcheck_tree`) runs AST rules (the
  SA rules) over ``src/repro`` itself — nondeterminism in sim paths,
  unregistered trace-event kinds, direct PMU access bypassing the read
  protocol — plus registry-metadata cross-checks (the MR rules).

The fabric gate (:mod:`repro.lint.gate`) applies the program analyzer to
every :class:`~repro.fabric.jobs.RunJob` batch before dispatch, fail-closed
(``runner --lint`` / ``--lint-strict``). ``python -m repro.lint`` runs
everything from the shell. See docs/static-analysis.md for the rule catalog.
"""

from repro.lint.findings import (
    ERROR,
    INFO,
    REPORT_SCHEMA,
    SEVERITIES,
    WARNING,
    Finding,
    LintReport,
)
from repro.lint.meta import check_registry
from repro.lint.rules import analyze_walk, lint_program
from repro.lint.selfcheck import selfcheck_file, selfcheck_tree
from repro.lint.walker import (
    DEFAULT_MAX_OPS,
    LintContext,
    ProgramWalk,
    ThreadWalk,
    walk_program,
)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "REPORT_SCHEMA",
    "Finding",
    "LintReport",
    "DEFAULT_MAX_OPS",
    "LintContext",
    "ProgramWalk",
    "ThreadWalk",
    "walk_program",
    "analyze_walk",
    "lint_program",
    "selfcheck_file",
    "selfcheck_tree",
    "check_registry",
]
