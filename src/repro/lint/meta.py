"""Registry-metadata consistency checks (the MR rules).

Experiments self-describe (``EXP_ID``, ``TITLE``, ``PAPER_CLAIM``,
``run(quick=...)``) and the registry trusts them. These rules catch the ways
that trust goes stale: a module renamed without its id, a dict-comprehension
collision silently dropping an experiment, metadata emptied by a refactor, a
``run`` signature the runner can no longer call.
"""

from __future__ import annotations

import inspect
import re

from repro.lint.findings import ERROR, WARNING, Finding, LintReport

_ID_RE = re.compile(r"^E(\d+)$")


def check_registry() -> LintReport:
    """Cross-check every registered experiment module against its metadata."""
    from repro.experiments import registry

    report = LintReport()
    modules = registry._MODULES
    seen: dict[str, str] = {}
    for module in modules:
        mod_name = module.__name__.rsplit(".", 1)[-1]
        mod_file = module.__name__.replace(".", "/") + ".py"
        exp_id = getattr(module, "EXP_ID", "")
        report.note_checked("experiments")

        m = _ID_RE.match(exp_id or "")
        if not m:
            report.add(Finding(
                rule="MR001",
                severity=ERROR,
                message=f"EXP_ID {exp_id!r} is not of the form 'E<n>'",
                fix_hint="set EXP_ID = 'E<n>' matching the module name",
                file=mod_file,
            ))
            continue

        # module file e<nn>_* must encode the same number as EXP_ID
        prefix = mod_name.split("_", 1)[0]
        if not (prefix.startswith("e") and prefix[1:].isdigit()
                and int(prefix[1:]) == int(m.group(1))):
            report.add(Finding(
                rule="MR001",
                severity=ERROR,
                message=(
                    f"module {mod_name} declares EXP_ID {exp_id!r}: the "
                    "file name and the id disagree"
                ),
                fix_hint="rename the module or fix EXP_ID so they match",
                file=mod_file,
            ))

        if exp_id in seen:
            report.add(Finding(
                rule="MR002",
                severity=ERROR,
                message=(
                    f"duplicate EXP_ID {exp_id!r} (also declared by "
                    f"{seen[exp_id]}): the registry dict silently keeps "
                    "only one of them"
                ),
                fix_hint="give each experiment a unique id",
                file=mod_file,
            ))
        seen[exp_id] = mod_name

        for attr in ("TITLE", "PAPER_CLAIM"):
            value = getattr(module, attr, "")
            if not isinstance(value, str) or not value.strip():
                report.add(Finding(
                    rule="MR003",
                    severity=WARNING,
                    message=f"{attr} is missing or empty",
                    fix_hint=f"describe the experiment in {attr}",
                    file=mod_file,
                ))

        run = getattr(module, "run", None)
        if run is None:
            report.add(Finding(
                rule="MR004",
                severity=ERROR,
                message="module has no run() entry point",
                fix_hint="define run(quick: bool = False)",
                file=mod_file,
            ))
        else:
            try:
                sig = inspect.signature(run)
                accepts_quick = "quick" in sig.parameters or any(
                    p.kind is inspect.Parameter.VAR_KEYWORD
                    for p in sig.parameters.values()
                )
            except (TypeError, ValueError):  # pragma: no cover - builtins
                accepts_quick = True
            if not accepts_quick:
                report.add(Finding(
                    rule="MR004",
                    severity=ERROR,
                    message=(
                        "run() does not accept quick=...: the runner's "
                        "--quick mode cannot call it"
                    ),
                    fix_hint="add a quick: bool = False keyword",
                    file=mod_file,
                ))

    if len(seen) != len(registry.REGISTRY):
        report.add(Finding(
            rule="MR002",
            severity=ERROR,
            message=(
                f"{len(modules)} modules registered but the registry holds "
                f"{len(registry.REGISTRY)} entries (id collision)"
            ),
            fix_hint="deduplicate EXP_IDs",
            file="repro/experiments/registry.py",
        ))
    return report
