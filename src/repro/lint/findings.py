"""Typed lint findings and the report container.

Every hazard either front end detects — the program/config analyzer walking
the op DSL (:mod:`repro.lint.walker` + :mod:`repro.lint.rules`) or the repo
self-analyzer running AST rules over ``src/repro`` (:mod:`repro.lint.selfcheck`)
— becomes one :class:`Finding`: a rule id, a severity, a span naming where the
hazard lives (thread + op index for program findings, file + line for source
findings), a human message and a concrete fix hint.

Findings aggregate into a :class:`LintReport`, which renders for terminals,
serialises for run manifests (schema ``repro.lint/report/v1``, exported
through :func:`repro.obs.export.write_manifest`) and answers the only
question gates ask: :meth:`LintReport.ok`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Severity ladder. ``error`` findings describe programs/configs/source that
#: will mismeasure, crash, or break determinism; ``warning`` findings describe
#: measurement-quality hazards (observer effects, PMI pressure); ``info``
#: findings are advisory notes (e.g. an unsafe read that happens to be
#: unreachable by any preemption source in this config).
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES: tuple[str, ...] = (ERROR, WARNING, INFO)

#: Manifest schema identifier for serialized reports.
REPORT_SCHEMA = "repro.lint/report/v1"


@dataclass(frozen=True)
class Finding:
    """One static-analysis hazard.

    Exactly one of the two span flavours is populated: program findings
    carry ``thread``/``op_index`` (the op ordinal inside that thread's
    walked timeline), source findings carry ``file``/``line``.
    """

    rule: str            #: stable rule id, e.g. "ML003" (see docs/static-analysis.md)
    severity: str        #: one of ERROR / WARNING / INFO
    message: str         #: what is wrong, in one sentence
    fix_hint: str = ""   #: the concrete change that clears the finding
    thread: str = ""     #: program findings: thread name
    op_index: int | None = None  #: program findings: op ordinal in the walk
    file: str = ""       #: source findings: repo-relative path
    line: int = 0        #: source findings: 1-based line number

    def span(self) -> str:
        """Human-readable location of the hazard."""
        if self.file:
            return f"{self.file}:{self.line}"
        if self.thread:
            where = f"op {self.op_index}" if self.op_index is not None else "program"
            return f"thread {self.thread!r} ({where})"
        return "config"

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "span": self.span(),
        }
        if self.fix_hint:
            out["fix_hint"] = self.fix_hint
        if self.thread:
            out["thread"] = self.thread
            if self.op_index is not None:
                out["op_index"] = self.op_index
        if self.file:
            out["file"] = self.file
            out["line"] = self.line
        return out

    def render(self) -> str:
        hint = f"\n    fix: {self.fix_hint}" if self.fix_hint else ""
        return (
            f"{self.severity.upper():<7} {self.rule} {self.span()}: "
            f"{self.message}{hint}"
        )


@dataclass
class LintReport:
    """All findings of one analysis run, plus what was analyzed.

    ``suppressed`` counts findings dropped by rule-id suppression so the
    report is honest about what it is *not* showing.
    """

    findings: list[Finding] = field(default_factory=list)
    checked: dict[str, int] = field(default_factory=dict)  #: unit -> count
    suppressed: int = 0
    #: threads whose static walk hit the op budget (analysis covered only
    #: a prefix of their timeline), and the budget that cut them short
    walk_truncated: int = 0
    walk_max_ops: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        for unit, n in other.checked.items():
            self.checked[unit] = self.checked.get(unit, 0) + n
        self.suppressed += other.suppressed
        self.walk_truncated += other.walk_truncated
        self.walk_max_ops = max(self.walk_max_ops, other.walk_max_ops)

    def note_checked(self, unit: str, n: int = 1) -> None:
        self.checked[unit] = self.checked.get(unit, 0) + n

    # -- verdicts ----------------------------------------------------------

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def ok(self, strict: bool = False) -> bool:
        """Gate verdict: errors always fail; strict also fails warnings."""
        if self.errors():
            return False
        if strict and self.warnings():
            return False
        return True

    # -- output ------------------------------------------------------------

    def suppress(self, rules: Iterable[str]) -> "LintReport":
        """Return a copy with findings of the given rule ids removed."""
        drop = set(rules)
        kept = [f for f in self.findings if f.rule not in drop]
        out = LintReport(
            findings=kept,
            checked=dict(self.checked),
            suppressed=self.suppressed + (len(self.findings) - len(kept)),
            walk_truncated=self.walk_truncated,
            walk_max_ops=self.walk_max_ops,
        )
        return out

    def summary_line(self) -> str:
        n_err = len(self.errors())
        n_warn = len(self.warnings())
        n_info = len(self.findings) - n_err - n_warn
        units = ", ".join(f"{n} {unit}" for unit, n in sorted(self.checked.items()))
        sup = f", {self.suppressed} suppressed" if self.suppressed else ""
        trunc = ""
        if self.walk_truncated:
            trunc = (
                f" [walk truncated {self.walk_truncated} thread(s) at the "
                f"{self.walk_max_ops}-op budget; hazards past each prefix "
                "unchecked]"
            )
        return (
            f"{n_err} error(s), {n_warn} warning(s), {n_info} info "
            f"[checked {units or 'nothing'}{sup}]{trunc}"
        )

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """Manifest block (schema ``repro.lint/report/v1``)."""
        return {
            "schema": REPORT_SCHEMA,
            "findings": [f.as_dict() for f in self.findings],
            "by_rule": self.by_rule(),
            "n_errors": len(self.errors()),
            "n_warnings": len(self.warnings()),
            "checked": dict(self.checked),
            "suppressed": self.suppressed,
            "walk": {
                "truncated_threads": self.walk_truncated,
                "max_ops": self.walk_max_ops,
            },
            "ok": self.ok(),
        }
