"""Workload infrastructure: instrumentation plumbing and rate profiles.

A *workload* builds a list of ThreadSpecs. Every workload accepts an
:class:`Instrumentation` bundle describing which measurement machinery to
attach — sessions to open, a gprof-style profiler, and how (whether) to
instrument locks. This is what lets the experiments run the *same*
application code uninstrumented, LiMiT-instrumented, and PAPI-instrumented,
and compare both the measurements and the perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Protocol, Sequence

from repro.core.locks import InstrumentedLock, PlainLock
from repro.hw.events import EventRates
from repro.sim.program import ThreadContext, ThreadSpec


class _Session(Protocol):  # anything with setup/teardown generators
    def setup(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        ...  # pragma: no cover

    def teardown(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        ...  # pragma: no cover


@dataclass
class Instrumentation:
    """What measurement machinery a workload run should carry.

    * ``sessions`` — opened on every thread at start, closed at exit.
    * ``profiler`` — a gprof-style InstrumentingProfiler to attach (adds
      hook cost to every region entry/exit).
    * ``lock_reader`` — if set, workload locks become InstrumentedLocks
      using this reader (a LiMiT or PAPI session, or RdtscReader).
    * ``lock_reader_index`` — which of the reader's counters to use.
    * ``region_profiler`` — a PreciseRegionProfiler; when set, workloads
      route fine-grained regions through it (see :func:`run_region`).
    """

    sessions: Sequence[_Session] = ()
    profiler: Any | None = None
    lock_reader: Any | None = None
    lock_reader_index: int = 0
    region_profiler: Any | None = None
    #: session whose counters are read at workload boundaries (transaction
    #: end, request end, event-loop turn) via :meth:`checkpoint` — the
    #: behavior-over-time instrumentation pattern. Include it in
    #: ``sessions`` too so it gets opened per thread.
    checkpoint_session: Any | None = None
    _locks: dict[str, Any] = field(default_factory=dict)

    def thread_setup(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        for session in self.sessions:
            yield from session.setup(ctx)
        if self.profiler is not None:
            yield from self.profiler.attach(ctx)

    def thread_teardown(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        if self.profiler is not None:
            yield from self.profiler.detach(ctx)
        for session in self.sessions:
            yield from session.teardown(ctx)

    def checkpoint(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Read the checkpoint session's counters (no-op when unset)."""
        if self.checkpoint_session is not None:
            yield from self.checkpoint_session.read_all(ctx)

    def lock(self, name: str):
        """Shared (possibly instrumented) lock object for ``name``."""
        lock = self._locks.get(name)
        if lock is None:
            if self.lock_reader is not None:
                lock = InstrumentedLock(
                    name, self.lock_reader, self.lock_reader_index
                )
            else:
                lock = PlainLock(name)
            self._locks[name] = lock
        return lock

    def lock_observations(self) -> dict[str, Any]:
        """name -> LockObservation for every instrumented lock."""
        return {
            name: lock.observation
            for name, lock in self._locks.items()
            if isinstance(lock, InstrumentedLock)
        }


#: No instrumentation at all — the unperturbed baseline arm.
def plain() -> Instrumentation:
    return Instrumentation()


def run_region(
    instr: Instrumentation,
    ctx: ThreadContext,
    name: str,
    body: Generator[Any, Any, Any],
) -> Generator[Any, Any, Any]:
    """Run ``body`` as the named region, measured per-invocation when the
    instrumentation bundle carries a region profiler.

    Without a profiler this is a bare RegionBegin/End pair (ground-truth
    labelling only, zero simulated cost unless a gprof-style profiler is
    attached to the thread).
    """
    from repro.sim.ops import RegionBegin, RegionEnd

    if instr.region_profiler is not None:
        return (yield from instr.region_profiler.measure(ctx, name, body))
    yield RegionBegin(name)
    try:
        result = yield from body
    finally:
        yield RegionEnd()
    return result


class Workload:
    """Base class: subclasses implement :meth:`build`."""

    name = "workload"

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Rate profiles for application phases (IPC / miss-rate shapes chosen to
# give the workload classes their characteristic CPI structure).
# ---------------------------------------------------------------------------

#: SQL parsing / query optimisation: branchy, icache-hungry.
PARSE_RATES = EventRates.profile(
    ipc=1.1, llc_mpki=1.2, l2_mpki=6.0, branch_frac=0.24, branch_miss_rate=0.06,
    dtlb_mpki=0.4, stall_frac=0.3,
)

#: B-tree / row access: pointer chasing, cache-miss dominated.
ROW_ACCESS_RATES = EventRates.profile(
    ipc=0.7, llc_mpki=8.0, l2_mpki=22.0, branch_frac=0.18, branch_miss_rate=0.04,
    dtlb_mpki=2.5, load_frac=0.35, stall_frac=0.5,
)

#: Tight compute (expression evaluation, checksums).
COMPUTE_RATES = EventRates.profile(
    ipc=1.9, llc_mpki=0.2, l2_mpki=1.0, branch_frac=0.10, branch_miss_rate=0.01,
    stall_frac=0.08,
)

#: HTTP parsing / string handling.
HTTP_PARSE_RATES = EventRates.profile(
    ipc=1.3, llc_mpki=0.8, l2_mpki=4.0, branch_frac=0.26, branch_miss_rate=0.07,
    stall_frac=0.25,
)

#: JavaScript interpreter dispatch: very branchy, poor prediction.
JS_INTERP_RATES = EventRates.profile(
    ipc=0.9, llc_mpki=2.0, l2_mpki=9.0, branch_frac=0.30, branch_miss_rate=0.09,
    dtlb_mpki=1.0, stall_frac=0.4,
)

#: Garbage collection: memory sweeping.
GC_RATES = EventRates.profile(
    ipc=0.8, llc_mpki=12.0, l2_mpki=30.0, branch_frac=0.12, branch_miss_rate=0.03,
    load_frac=0.4, store_frac=0.2, stall_frac=0.55,
)
