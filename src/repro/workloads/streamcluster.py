"""A streamcluster/barnes-style barrier-synchronized parallel kernel.

PARSEC-class data-parallel structure: N workers iterate over phases, each
computing its share of the points and meeting at a barrier before the next
phase. A designated coordinator does a short serial reduction between
phases. Exercises the Barrier primitive and produces the classic
barrier-imbalance behaviour (per-phase time = slowest worker), which makes
it the natural workload for studying load imbalance with precise per-phase
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.hw.events import EventRates
from repro.sim.ops import Compute, RegionBegin, RegionEnd
from repro.sim.program import ThreadContext, ThreadSpec
from repro.sim.sync import Barrier
from repro.workloads.base import Instrumentation, Workload

#: distance computation: FP heavy with streaming loads
KERNEL_RATES = EventRates.profile(
    ipc=1.6, llc_mpki=6.0, l2_mpki=12.0, branch_frac=0.1,
    branch_miss_rate=0.02, load_frac=0.4, stall_frac=0.25,
)

REDUCE_RATES = EventRates.profile(ipc=1.2, llc_mpki=2.0, branch_frac=0.15)


@dataclass
class StreamclusterConfig:
    """Tunable shape of the barrier-parallel kernel."""

    n_workers: int = 4
    n_phases: int = 20
    #: mean compute per worker per phase
    phase_mean_cycles: int = 80_000
    #: load imbalance: worker i's share is scaled by 1 + imbalance * i / N
    imbalance: float = 0.3
    #: serial reduction by worker 0 between phases
    reduce_mean_cycles: int = 8_000

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigError("need at least one worker")
        if self.n_phases < 1:
            raise ConfigError("need at least one phase")
        if self.imbalance < 0:
            raise ConfigError("imbalance must be non-negative")


class StreamclusterWorkload(Workload):
    """Phase-parallel compute with barriers and a serial reduction."""

    name = "streamcluster"

    def __init__(self, config: StreamclusterConfig | None = None) -> None:
        self.config = config or StreamclusterConfig()
        self._barrier = Barrier("streamcluster", self.config.n_workers)

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config
        barrier = self._barrier

        def make_worker(rank: int):
            share = 1.0 + cfg.imbalance * rank / max(1, cfg.n_workers - 1)

            def worker(ctx: ThreadContext):
                yield from instr.thread_setup(ctx)
                rng = ctx.rng
                for _ in range(cfg.n_phases):
                    yield RegionBegin("phase")
                    yield Compute(
                        max(1, round(rng.exp_cycles(cfg.phase_mean_cycles) * share)),
                        KERNEL_RATES,
                    )
                    yield RegionEnd()
                    yield RegionBegin("barrier")
                    yield from barrier.arrive(ctx)
                    yield RegionEnd()
                    if rank == 0 and cfg.reduce_mean_cycles:
                        yield RegionBegin("reduce")
                        yield Compute(
                            rng.exp_cycles(cfg.reduce_mean_cycles), REDUCE_RATES
                        )
                        yield RegionEnd()
                    if cfg.n_workers > 1:
                        yield from barrier.arrive(ctx)
                yield from instr.thread_teardown(ctx)

            return worker

        return [
            ThreadSpec(f"streamcluster:worker:{i}", make_worker(i))
            for i in range(cfg.n_workers)
        ]
