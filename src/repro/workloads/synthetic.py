"""Fully parameterised synthetic workloads for tests and sweeps."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.hw.events import EventRates
from repro.sim.ops import Compute
from repro.sim.program import ThreadContext, ThreadSpec
from repro.workloads.base import COMPUTE_RATES, Instrumentation, Workload


@dataclass
class ContentionConfig:
    """Knobs of the lock-contention generator."""

    n_threads: int = 4
    n_locks: int = 1
    iterations: int = 100
    hold_cycles: int = 1_000
    think_cycles: int = 5_000
    rates: EventRates = COMPUTE_RATES
    #: jitter factor: hold/think drawn exponentially around the means when
    #: True, constant otherwise (constant is useful in invariants tests).
    randomize: bool = True

    def __post_init__(self) -> None:
        if self.n_threads < 1 or self.n_locks < 1 or self.iterations < 1:
            raise ConfigError("threads, locks and iterations must be >= 1")


class ContentionWorkload(Workload):
    """N threads hammering M locks with configurable hold/think times."""

    name = "contention"

    def __init__(self, config: ContentionConfig | None = None) -> None:
        self.config = config or ContentionConfig()

    @staticmethod
    def lock_name(i: int) -> str:
        return f"contention:lock:{i}"

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config

        def worker(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            for i in range(cfg.iterations):
                lock = instr.lock(self.lock_name(i % cfg.n_locks))
                think = (
                    rng.exp_cycles(cfg.think_cycles)
                    if cfg.randomize
                    else cfg.think_cycles
                )
                hold = (
                    rng.exp_cycles(cfg.hold_cycles)
                    if cfg.randomize
                    else cfg.hold_cycles
                )
                yield Compute(think, cfg.rates)
                yield from lock.acquire(ctx)
                yield Compute(hold, cfg.rates)
                yield from lock.release(ctx)
            yield from instr.thread_teardown(ctx)

        return [
            ThreadSpec(f"contention:worker:{i}", worker)
            for i in range(cfg.n_threads)
        ]


class BusyWorkload(Workload):
    """Pure compute threads (scheduler / accounting tests)."""

    name = "busy"

    def __init__(
        self,
        n_threads: int = 2,
        cycles_per_thread: int = 1_000_000,
        rates: EventRates = COMPUTE_RATES,
    ) -> None:
        if n_threads < 1 or cycles_per_thread < 1:
            raise ConfigError("need threads and cycles")
        self.n_threads = n_threads
        self.cycles_per_thread = cycles_per_thread
        self.rates = rates

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()

        def worker(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            yield Compute(self.cycles_per_thread, self.rates)
            yield from instr.thread_teardown(ctx)

        return [
            ThreadSpec(f"busy:worker:{i}", worker) for i in range(self.n_threads)
        ]
