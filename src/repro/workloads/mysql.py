"""A generative model of MySQL/InnoDB-style transaction processing.

This is the stand-in for the paper's MySQL case-study binary (which we
cannot run): a pool of worker threads executing transactions composed of a
parse/optimize phase, a handful of *very short* critical sections under
per-table and global locks (the paper's headline finding: locks are
acquired extremely frequently but held very briefly), and a commit phase
with kernel I/O.

The shape parameters (lock hold medians below a microsecond, a few locks
per transaction, a hot log lock) are chosen to match the qualitative
behaviour the paper reports for MySQL under a TPC-C-like load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.sim.ops import Compute, RegionBegin, RegionEnd, Sleep, Syscall
from repro.sim.program import ThreadContext, ThreadSpec
from repro.workloads.base import (
    COMPUTE_RATES,
    Instrumentation,
    PARSE_RATES,
    ROW_ACCESS_RATES,
    Workload,
)


@dataclass
class MysqlConfig:
    """Tunable shape of the MySQL model."""

    n_workers: int = 8
    transactions_per_worker: int = 50
    n_tables: int = 16
    #: median cycles a row-operation critical section holds a table lock
    cs_median_cycles: int = 900
    cs_sigma: float = 0.9
    #: mean cycles of the parse/optimize phase
    parse_mean_cycles: int = 12_000
    #: tables touched per transaction (upper bound; >=1)
    max_tables_per_txn: int = 3
    #: probability a commit does slow (blocking) I/O
    commit_io_prob: float = 0.08
    #: mean cycles of blocking commit I/O
    commit_io_mean_cycles: int = 60_000
    #: zipf skew of table popularity (hot tables get contended)
    table_skew: float = 1.1

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigError("need at least one worker")
        if self.n_tables < 1:
            raise ConfigError("need at least one table")
        if self.max_tables_per_txn < 1:
            raise ConfigError("transactions must touch at least one table")


LOG_LOCK = "mysql:log"


def table_lock(index: int) -> str:
    return f"mysql:table:{index}"


class MysqlWorkload(Workload):
    """Thread-pool transaction processing with fine-grained locking."""

    name = "mysql"

    def __init__(self, config: MysqlConfig | None = None) -> None:
        self.config = config or MysqlConfig()

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config

        def worker(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            log_lock = instr.lock(LOG_LOCK)
            for _ in range(cfg.transactions_per_worker):
                yield RegionBegin("txn")
                # -- parse & optimize --------------------------------------
                yield RegionBegin("parse")
                yield Compute(rng.exp_cycles(cfg.parse_mean_cycles), PARSE_RATES)
                yield RegionEnd()
                # -- execute: row ops under table locks ---------------------
                yield RegionBegin("execute")
                n_tables = rng.randint(1, cfg.max_tables_per_txn)
                # lock in ascending table order to avoid deadlock, as a
                # real storage engine would
                tables = sorted(
                    {rng.zipf_index(cfg.n_tables, cfg.table_skew)
                     for _ in range(n_tables)}
                )
                for table in tables:
                    lock = instr.lock(table_lock(table))
                    yield from lock.acquire(ctx)
                    cs = rng.lognormal_cycles(
                        cfg.cs_median_cycles, cfg.cs_sigma, minimum=60
                    )
                    yield Compute(cs, ROW_ACCESS_RATES)
                    yield from lock.release(ctx)
                    # inter-lock computation outside any critical section
                    yield Compute(rng.exp_cycles(2_500), COMPUTE_RATES)
                yield RegionEnd()
                # -- commit: log append under the hot global lock -----------
                yield RegionBegin("commit")
                yield from log_lock.acquire(ctx)
                yield Compute(rng.exp_cycles(450), COMPUTE_RATES)
                yield from log_lock.release(ctx)
                yield Syscall("work", (rng.exp_cycles(5_000),))  # log write
                if rng.bernoulli(cfg.commit_io_prob):
                    yield Sleep(rng.exp_cycles(cfg.commit_io_mean_cycles))
                yield RegionEnd()
                yield RegionEnd()  # txn
                yield from instr.checkpoint(ctx)
            yield from instr.thread_teardown(ctx)

        return [
            ThreadSpec(f"mysql:worker:{i}", worker) for i in range(cfg.n_workers)
        ]
