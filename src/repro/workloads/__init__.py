"""Generative application models: the paper's case-study workloads."""

from repro.workloads.apache import ACCEPT_LOCK, ApacheConfig, ApacheWorkload
from repro.workloads.apache import LOG_LOCK as APACHE_LOG_LOCK
from repro.workloads.base import (
    COMPUTE_RATES,
    GC_RATES,
    HTTP_PARSE_RATES,
    Instrumentation,
    JS_INTERP_RATES,
    PARSE_RATES,
    ROW_ACCESS_RATES,
    Workload,
    plain,
)
from repro.workloads.firefox import (
    FirefoxConfig,
    FirefoxWorkload,
    JsFunction,
    default_function_catalog,
)
from repro.workloads.microbench import (
    DensitySweepWorkload,
    ReadCostMicrobench,
    ReadCostResult,
)
from repro.workloads.memcached import (
    LRU_LOCK,
    MemcachedConfig,
    MemcachedWorkload,
    shard_lock,
)
from repro.workloads.mysql import LOG_LOCK as MYSQL_LOG_LOCK
from repro.workloads.mysql import MysqlConfig, MysqlWorkload, table_lock
from repro.workloads.pipeline import PipelineConfig, PipelineWorkload
from repro.workloads.spec import (
    KernelSpec,
    SpecKernelWorkload,
    SpecSuiteWorkload,
    kernel_catalog,
)
from repro.workloads.streamcluster import (
    StreamclusterConfig,
    StreamclusterWorkload,
)
from repro.workloads.synthetic import (
    BusyWorkload,
    ContentionConfig,
    ContentionWorkload,
)
from repro.workloads.traffic import TrafficConfig, TrafficWorkload

__all__ = [
    "ACCEPT_LOCK",
    "APACHE_LOG_LOCK",
    "ApacheConfig",
    "ApacheWorkload",
    "BusyWorkload",
    "COMPUTE_RATES",
    "ContentionConfig",
    "ContentionWorkload",
    "DensitySweepWorkload",
    "FirefoxConfig",
    "FirefoxWorkload",
    "GC_RATES",
    "HTTP_PARSE_RATES",
    "Instrumentation",
    "JS_INTERP_RATES",
    "JsFunction",
    "KernelSpec",
    "LRU_LOCK",
    "MYSQL_LOG_LOCK",
    "MemcachedConfig",
    "MemcachedWorkload",
    "MysqlConfig",
    "MysqlWorkload",
    "PARSE_RATES",
    "ROW_ACCESS_RATES",
    "PipelineConfig",
    "PipelineWorkload",
    "ReadCostMicrobench",
    "ReadCostResult",
    "SpecKernelWorkload",
    "SpecSuiteWorkload",
    "StreamclusterConfig",
    "StreamclusterWorkload",
    "TrafficConfig",
    "TrafficWorkload",
    "Workload",
    "default_function_catalog",
    "kernel_catalog",
    "plain",
    "shard_lock",
    "table_lock",
]
