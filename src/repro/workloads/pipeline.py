"""A pbzip2-style pipeline-parallel compressor model.

One reader thread produces blocks into a bounded queue, N compressor
threads drain it (compute-heavy, no locks beyond the queue), and one
writer thread orders and writes results. Exercises the producer/consumer
synchronization primitives (condvars over futex-keyed events) and gives
the analysis layer a workload whose bottleneck moves with the thread
count: reader-bound at high N, compressor-bound at low N.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.hw.events import EventRates
from repro.sim.ops import Compute, RegionBegin, RegionEnd, Sleep, Syscall
from repro.sim.program import ThreadContext, ThreadSpec
from repro.sim.sync import BoundedQueue
from repro.workloads.base import Instrumentation, Workload

#: block compression: high IPC with periodic table misses
COMPRESS_RATES = EventRates.profile(
    ipc=1.7, llc_mpki=1.5, l2_mpki=6.0, branch_frac=0.18,
    branch_miss_rate=0.04, load_frac=0.3, store_frac=0.15, stall_frac=0.2,
)


@dataclass
class PipelineConfig:
    """Tunable shape of the compression pipeline."""

    n_compressors: int = 4
    n_blocks: int = 60
    queue_capacity: int = 8
    #: kernel cycles to read one input block from disk
    read_kernel_cycles: int = 6_000
    #: additional blocking disk latency per read
    read_io_mean_cycles: int = 12_000
    #: mean cycles to compress one block
    compress_mean_cycles: int = 120_000
    #: kernel cycles to write one output block
    write_kernel_cycles: int = 5_000

    def __post_init__(self) -> None:
        if self.n_compressors < 1:
            raise ConfigError("need at least one compressor")
        if self.n_blocks < 1:
            raise ConfigError("need at least one block")


class PipelineWorkload(Workload):
    """reader -> [compressors] -> writer over bounded queues."""

    name = "pipeline"

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self.input_queue: BoundedQueue | None = None
        self.output_queue: BoundedQueue | None = None

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config
        in_q = BoundedQueue("pipeline:in", cfg.queue_capacity)
        out_q = BoundedQueue("pipeline:out", cfg.queue_capacity)
        self.input_queue = in_q
        self.output_queue = out_q
        live_compressors = {"n": cfg.n_compressors}

        def reader(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            for block in range(cfg.n_blocks):
                yield RegionBegin("read")
                yield Syscall("work", (rng.exp_cycles(cfg.read_kernel_cycles),))
                yield Sleep(max(1, rng.exp_cycles(cfg.read_io_mean_cycles)))
                yield RegionEnd()
                yield from in_q.put(ctx, block)
            yield from in_q.close(ctx)
            yield from instr.thread_teardown(ctx)

        def compressor(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            while True:
                block = yield from in_q.get(ctx)
                if block is BoundedQueue.Closed:
                    break
                yield RegionBegin("compress")
                yield Compute(
                    rng.exp_cycles(cfg.compress_mean_cycles), COMPRESS_RATES
                )
                yield RegionEnd()
                yield from out_q.put(ctx, block)
            live_compressors["n"] -= 1
            if live_compressors["n"] == 0:
                yield from out_q.close(ctx)
            yield from instr.thread_teardown(ctx)

        def writer(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            written = 0
            while True:
                block = yield from out_q.get(ctx)
                if block is BoundedQueue.Closed:
                    break
                yield RegionBegin("write")
                yield Syscall("work", (rng.exp_cycles(cfg.write_kernel_cycles),))
                yield RegionEnd()
                written += 1
            ctx.scratch["written"] = written
            yield from instr.thread_teardown(ctx)

        specs = [ThreadSpec("pipeline:reader", reader)]
        specs += [
            ThreadSpec(f"pipeline:compress:{i}", compressor)
            for i in range(cfg.n_compressors)
        ]
        specs.append(ThreadSpec("pipeline:writer", writer))
        return specs
