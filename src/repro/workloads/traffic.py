"""Open-loop traffic generation with in-sim latency measurement.

The missing "counting under production load" workload: worker threads
serve an *open-loop* request stream — arrivals follow a rate schedule
that does not care whether the server keeps up, so queueing delay (the
thing closed-loop load generators famously hide) appears in full in the
measured latencies.

Per-request latency is measured **inside the simulated system** by the
LiMiT machinery, not by the harness: each worker derives a wall-clock
estimate from safe PMC reads of a user+kernel CYCLES counter —

    ``now ≈ base + (cycles_read - cycles₀) + sleep_credit``

— exact while the worker is the only runnable thread on its core (the
counter freezes only while the thread sleeps, and the worker knows its
own sleep durations). Scheduler wake-up latencies drift the estimate
slowly, so every ``resync_every`` requests the clock is disciplined
against one in-sim ``rdtsc`` (NTP-style); the observed drift is itself
recorded as a latency stream, making clock quality a first-class
measurement. Latency = (estimated completion time) − (scheduled arrival
time), so backlog waits count.

Observations flow into the ambient collector's bounded windowed stats —
host-side bookkeeping that perturbs nothing; fingerprints are identical
with streaming on or off. Each worker buffers its ``(latency, at)``
samples locally and flushes them through
:func:`repro.obs.runtime.observe_batch` at clock-resync boundaries (the
same buffering idea LiMiT uses to keep reads cheap), so recording cost
stays off the per-request path. Memory is bounded by the collector's
window retention, never by the request count, which is what lets this
workload emit millions of requests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.core.limit import UnbufferedLimitSession
from repro.hw.events import Event, EventRates
from repro.obs import runtime as obs_runtime
from repro.sim.ops import Compute, Rdtsc, Sleep, Syscall
from repro.sim.program import ThreadContext, ThreadSpec
from repro.workloads.base import Instrumentation, Workload

#: Arrival-rate schedules the generator understands.
SCHEDULES = ("constant", "diurnal", "burst", "overload")

#: Stream names the workload feeds into the windowed collector.
LATENCY_STREAM = "traffic.latency"
DRIFT_STREAM = "traffic.clock_drift"
REQUESTS_COUNTER = "traffic.requests"

#: Flush the per-worker sample buffer at least this often (requests).
OBS_FLUSH_EVERY = 64

#: request handling: parse + lookup + format, moderately cache-hungry
SERVICE_RATES = EventRates.profile(
    ipc=1.2, llc_mpki=3.0, l2_mpki=10.0, branch_frac=0.2,
    branch_miss_rate=0.04, dtlb_mpki=1.0, stall_frac=0.35,
)


@dataclass
class TrafficConfig:
    """Shape of the open-loop traffic generator."""

    n_workers: int = 4
    requests_per_worker: int = 25_000
    #: arrival schedule; see :data:`SCHEDULES`
    schedule: str = "constant"
    #: offered load as a fraction of one worker's service capacity (1.0 is
    #: the saturation knee; above it the backlog grows without bound)
    load: float = 0.6
    #: lognormal service cost (cycles)
    service_median_cycles: int = 14_000
    service_sigma: float = 0.5
    #: kernel cycles for the receive syscall on the request path
    recv_kernel_cycles: int = 1_800
    #: diurnal schedule: sinusoidal rate swing of ±amplitude around the
    #: mean, with this period
    diurnal_period_cycles: int = 300_000_000
    diurnal_amplitude: float = 0.6
    #: burst schedule: rate multiplied by ``burst_factor`` during the
    #: first ``burst_duty`` fraction of every period
    burst_period_cycles: int = 120_000_000
    burst_duty: float = 0.1
    burst_factor: float = 5.0
    #: overload schedule: load ramps linearly from half the configured
    #: value up to ``overload_peak`` × capacity over the ramp
    overload_peak: float = 1.5
    overload_ramp_cycles: int = 600_000_000
    #: discipline the PMC-derived clock against rdtsc every N requests
    #: (0 disables resync)
    resync_every: int = 64

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            raise ConfigError(
                f"unknown schedule {self.schedule!r}; pick from {SCHEDULES}"
            )
        if self.n_workers < 1:
            raise ConfigError("need at least one worker")
        if self.requests_per_worker < 1:
            raise ConfigError("need at least one request per worker")
        if self.load <= 0:
            raise ConfigError("load must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError("diurnal_amplitude must be in [0, 1)")
        if not 0.0 < self.burst_duty < 1.0:
            raise ConfigError("burst_duty must be in (0, 1)")

    @property
    def mean_service_cycles(self) -> float:
        """Expected per-request service cost (lognormal mean + recv)."""
        lognormal_mean = self.service_median_cycles * math.exp(
            self.service_sigma**2 / 2.0
        )
        return lognormal_mean + self.recv_kernel_cycles

    @property
    def mean_interarrival_cycles(self) -> float:
        """Per-worker mean inter-arrival time at multiplier 1."""
        return self.mean_service_cycles / self.load

    def rate_multiplier(self, elapsed: int) -> float:
        """The schedule's arrival-rate multiplier at ``elapsed`` cycles
        since the worker started (1.0 = the configured ``load``)."""
        if self.schedule == "constant":
            return 1.0
        if self.schedule == "diurnal":
            phase = 2.0 * math.pi * elapsed / self.diurnal_period_cycles
            return max(0.05, 1.0 + self.diurnal_amplitude * math.sin(phase))
        if self.schedule == "burst":
            in_burst = (
                elapsed % self.burst_period_cycles
                < self.burst_duty * self.burst_period_cycles
            )
            return self.burst_factor if in_burst else 1.0
        # overload: ramp from 0.5x through the saturation knee to the peak
        frac = min(1.0, elapsed / self.overload_ramp_cycles)
        start = 0.5
        return (start + (self.overload_peak - start) * frac) / self.load


class TrafficWorkload(Workload):
    """Open-loop request serving with PMC-clock latency measurement.

    Builds one worker thread per configured worker; intended to run with
    ``n_workers <= n_cores`` so every worker is alone on its core and the
    PMC-derived clock is near-exact (the drift stream quantifies the
    residual either way).
    """

    name = "traffic"

    def __init__(self, config: TrafficConfig | None = None) -> None:
        self.config = config or TrafficConfig()
        #: the CYCLES session all workers read their clock from; created
        #: in :meth:`build` so each built program owns fresh counters.
        self.session: UnbufferedLimitSession | None = None

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config
        session = UnbufferedLimitSession(
            [Event.CYCLES], count_kernel=True, name="traffic-clock"
        )
        self.session = session
        stream = f"{LATENCY_STREAM}.{cfg.schedule}"
        mean_ia = cfg.mean_interarrival_cycles

        def worker(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            yield from session.setup(ctx)
            rng = ctx.rng
            # Calibrate the PMC clock: one rdtsc anchors ``base``; from
            # here on, time is derived from safe counter reads alone
            # (plus the worker's own ledger of how long it slept).
            c0 = yield from session.read_safe(ctx)
            base = yield Rdtsc()
            sleep_credit = 0
            now_est = base
            arrival = base  # the schedule starts at calibration time
            # Local sample buffer, flushed in batches: keeps recording
            # cost off the per-request path (same window/totals state as
            # per-sample calls — observe_batch is bit-identical).
            samples: list[tuple[int, int]] = []
            for i in range(cfg.requests_per_worker):
                multiplier = cfg.rate_multiplier(arrival - base)
                arrival += rng.exp_cycles(
                    max(1, int(mean_ia / multiplier))
                )
                wait = arrival - now_est
                if wait > 0:
                    # Ahead of schedule: sleep until the arrival instant.
                    yield Sleep(wait)
                    sleep_credit += wait
                # Serve the request (recv + application work).
                yield Syscall(
                    "work", (rng.exp_cycles(cfg.recv_kernel_cycles),)
                )
                yield Compute(
                    rng.lognormal_cycles(
                        cfg.service_median_cycles,
                        cfg.service_sigma,
                        minimum=500,
                    ),
                    SERVICE_RATES,
                )
                cycles = yield from session.read_safe(ctx)
                now_est = base + (cycles - c0) + sleep_credit
                latency = now_est - arrival
                samples.append((latency, now_est))
                if len(samples) >= OBS_FLUSH_EVERY:
                    obs_runtime.observe_batch(
                        stream, samples, counter=REQUESTS_COUNTER
                    )
                    samples.clear()
                if cfg.resync_every and (i + 1) % cfg.resync_every == 0:
                    # Discipline the clock: measure the drift the PMC
                    # estimate accumulated (scheduler wake-up latencies
                    # are invisible to a frozen counter) and fold it in.
                    true_now = yield Rdtsc()
                    drift = true_now - now_est
                    obs_runtime.observe_latency(
                        DRIFT_STREAM, abs(drift), at=max(0, true_now)
                    )
                    base += drift
                    now_est = true_now
                yield from instr.checkpoint(ctx)
            obs_runtime.observe_batch(
                stream, samples, counter=REQUESTS_COUNTER
            )
            yield from session.teardown(ctx)
            yield from instr.thread_teardown(ctx)

        return [
            ThreadSpec(f"traffic:worker:{i}", worker)
            for i in range(cfg.n_workers)
        ]


def quick_config(config: TrafficConfig, requests: int) -> TrafficConfig:
    """A copy of ``config`` resized to ``requests`` per worker (and with
    schedule periods shrunk proportionally so short runs still see whole
    diurnal/burst/ramp shapes)."""
    scale = requests / max(1, config.requests_per_worker)
    return replace(
        config,
        requests_per_worker=requests,
        diurnal_period_cycles=max(
            1_000_000, int(config.diurnal_period_cycles * scale)
        ),
        burst_period_cycles=max(
            1_000_000, int(config.burst_period_cycles * scale)
        ),
        overload_ramp_cycles=max(
            1_000_000, int(config.overload_ramp_cycles * scale)
        ),
    )
