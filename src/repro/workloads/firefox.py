"""A generative model of Firefox's JavaScript engine event loop.

The stand-in for the paper's Firefox case study: a main thread dispatching
a stream of *very short* JS functions (median durations from a fraction of
a microsecond to a few microseconds), occasional garbage-collection pauses,
and a helper thread doing periodic compositing. The point of the case study
is that functions this short are invisible to samplers and hopelessly
perturbed by microsecond-cost reads — only LiMiT-class access can profile
them (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.rng import RandomStream
from repro.sim.ops import Compute, RegionBegin, RegionEnd, Sleep
from repro.sim.program import ThreadContext, ThreadSpec
from repro.workloads.base import (
    COMPUTE_RATES,
    GC_RATES,
    Instrumentation,
    JS_INTERP_RATES,
    Workload,
    run_region,
)

DOM_LOCK = "firefox:dom"


def _compute_body(cycles, rates):
    yield Compute(cycles, rates)


@dataclass(frozen=True)
class JsFunction:
    """One function in the synthetic JS engine's catalog."""

    name: str
    median_cycles: int
    sigma: float
    weight: float        #: relative call frequency


def default_function_catalog(n: int = 24, seed: int = 7) -> list[JsFunction]:
    """A catalog of short functions with a realistic (heavy-tailed) spread
    of durations: most medians land well under 10k cycles (~4 us)."""
    rng = RandomStream(seed, "js-catalog")
    catalog = []
    for i in range(n):
        # medians from ~200 cycles (~80ns) up to ~30k cycles (~12.5us)
        median = round(200 * (1.26 ** i))
        catalog.append(
            JsFunction(
                name=f"js::fn{i:02d}",
                median_cycles=min(median, 30_000),
                sigma=rng.uniform(0.3, 0.8),
                weight=1.0 / (1 + i * 0.35),  # short functions run more often
            )
        )
    return catalog


@dataclass
class FirefoxConfig:
    """Tunable shape of the Firefox model."""

    events: int = 400                    #: event-loop iterations
    functions_per_event: int = 6         #: JS calls per dispatched event
    gc_every_events: int = 60            #: GC pause cadence
    gc_mean_cycles: int = 220_000
    idle_between_events_cycles: int = 2_000
    with_compositor: bool = True
    compositor_frames: int = 40
    compositor_frame_cycles: int = 30_000
    compositor_interval_cycles: int = 120_000
    catalog: list[JsFunction] = field(default_factory=default_function_catalog)

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ConfigError("need at least one event")
        if not self.catalog:
            raise ConfigError("function catalog is empty")


class FirefoxWorkload(Workload):
    """Event loop of many short JS functions plus a compositor thread."""

    name = "firefox"

    def __init__(self, config: FirefoxConfig | None = None) -> None:
        self.config = config or FirefoxConfig()

    def _pick_function(self, rng) -> JsFunction:
        catalog = self.config.catalog
        total = sum(f.weight for f in catalog)
        target = rng.random() * total
        acc = 0.0
        for fn in catalog:
            acc += fn.weight
            if target <= acc:
                return fn
        return catalog[-1]

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config

        def main_thread(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            dom_lock = instr.lock(DOM_LOCK)
            for event_no in range(cfg.events):
                yield RegionBegin("event")
                for _ in range(cfg.functions_per_event):
                    fn = self._pick_function(rng)
                    cycles = rng.lognormal_cycles(
                        fn.median_cycles, fn.sigma, minimum=50
                    )
                    yield from run_region(
                        instr, ctx, fn.name, _compute_body(cycles, JS_INTERP_RATES)
                    )
                # brief DOM mutation under the shared lock
                yield from dom_lock.acquire(ctx)
                yield Compute(rng.lognormal_cycles(400, 0.6, minimum=40), COMPUTE_RATES)
                yield from dom_lock.release(ctx)
                if cfg.gc_every_events and (event_no + 1) % cfg.gc_every_events == 0:
                    yield RegionBegin("gc")
                    yield Compute(rng.exp_cycles(cfg.gc_mean_cycles), GC_RATES)
                    yield RegionEnd()
                yield RegionEnd()  # event
                yield from instr.checkpoint(ctx)
                if cfg.idle_between_events_cycles:
                    yield Sleep(max(1, rng.exp_cycles(cfg.idle_between_events_cycles)))
            yield from instr.thread_teardown(ctx)

        def compositor(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            dom_lock = instr.lock(DOM_LOCK)
            for _ in range(cfg.compositor_frames):
                yield RegionBegin("composite")
                # snapshot layer state under the DOM lock, then rasterise
                yield from dom_lock.acquire(ctx)
                yield Compute(rng.lognormal_cycles(900, 0.5, minimum=80), GC_RATES)
                yield from dom_lock.release(ctx)
                yield Compute(rng.exp_cycles(cfg.compositor_frame_cycles), GC_RATES)
                yield RegionEnd()
                yield Sleep(max(1, rng.exp_cycles(cfg.compositor_interval_cycles)))
            yield from instr.thread_teardown(ctx)

        specs = [ThreadSpec("firefox:main", main_thread)]
        if cfg.with_compositor:
            specs.append(ThreadSpec("firefox:compositor", compositor))
        return specs
