"""A generative model of memcached-style key-value serving.

A cloud-era workload in the spirit of the paper's "implications for
computer architects in the cloud era": worker threads serve a GET-heavy
request mix against a sharded hash table with per-shard locks plus a
global LRU-maintenance lock, over a kernel-heavy network path.

Distinguishing shape versus the MySQL model: far shorter critical
sections (hash probe + pointer splice), much higher request rates, and a
single contended maintenance lock that becomes the scaling bottleneck at
high thread counts — a good target for the bottleneck diagnoser.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.hw.events import EventRates
from repro.sim.ops import Compute, RegionBegin, RegionEnd, Sleep, Syscall
from repro.sim.program import ThreadContext, ThreadSpec
from repro.workloads.base import Instrumentation, Workload

LRU_LOCK = "memcached:lru"


def shard_lock(index: int) -> str:
    return f"memcached:shard:{index}"


#: hash probing: pointer chasing through buckets
PROBE_RATES = EventRates.profile(
    ipc=0.8, llc_mpki=10.0, l2_mpki=25.0, branch_frac=0.15,
    branch_miss_rate=0.03, dtlb_mpki=3.0, load_frac=0.4, stall_frac=0.5,
)

#: protocol parsing / response formatting
PROTO_RATES = EventRates.profile(
    ipc=1.5, llc_mpki=0.5, branch_frac=0.22, branch_miss_rate=0.05,
)


@dataclass
class MemcachedConfig:
    """Tunable shape of the memcached model."""

    n_workers: int = 8
    requests_per_worker: int = 200
    n_shards: int = 8
    get_fraction: float = 0.9          #: GET vs SET mix
    #: kernel cycles for recv/send on the request path
    recv_kernel_cycles: int = 2_200
    send_kernel_cycles: int = 2_000
    #: median cycles holding a shard lock (hash probe / insert)
    shard_cs_median_cycles: int = 350
    #: how often a request touches the LRU maintenance lock
    lru_touch_prob: float = 0.25
    lru_cs_median_cycles: int = 500
    #: probability of waiting for a slow client
    slow_client_prob: float = 0.05
    slow_client_mean_cycles: int = 50_000
    key_skew: float = 0.9              #: zipf skew over shards

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigError("need at least one worker")
        if self.n_shards < 1:
            raise ConfigError("need at least one shard")
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ConfigError("get_fraction must be in [0, 1]")


class MemcachedWorkload(Workload):
    """GET/SET serving over a sharded hash table."""

    name = "memcached"

    def __init__(self, config: MemcachedConfig | None = None) -> None:
        self.config = config or MemcachedConfig()

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config

        def worker(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            lru = instr.lock(LRU_LOCK)
            for _ in range(cfg.requests_per_worker):
                yield RegionBegin("request")
                yield Syscall("work", (rng.exp_cycles(cfg.recv_kernel_cycles),))
                if rng.bernoulli(cfg.slow_client_prob):
                    yield Sleep(rng.exp_cycles(cfg.slow_client_mean_cycles))
                yield Compute(rng.exp_cycles(900), PROTO_RATES)  # parse

                shard = rng.zipf_index(cfg.n_shards, cfg.key_skew)
                lock = instr.lock(shard_lock(shard))
                is_get = rng.bernoulli(cfg.get_fraction)
                yield RegionBegin("get" if is_get else "set")
                yield from lock.acquire(ctx)
                cs = rng.lognormal_cycles(
                    cfg.shard_cs_median_cycles, 0.7, minimum=60
                )
                if not is_get:
                    cs += rng.lognormal_cycles(300, 0.5, minimum=40)
                yield Compute(cs, PROBE_RATES)
                yield from lock.release(ctx)
                yield RegionEnd()

                if rng.bernoulli(cfg.lru_touch_prob):
                    yield from lru.acquire(ctx)
                    yield Compute(
                        rng.lognormal_cycles(cfg.lru_cs_median_cycles, 0.6,
                                             minimum=50),
                        PROBE_RATES,
                    )
                    yield from lru.release(ctx)

                yield Compute(rng.exp_cycles(600), PROTO_RATES)  # format
                yield Syscall("work", (rng.exp_cycles(cfg.send_kernel_cycles),))
                yield RegionEnd()  # request
                yield from instr.checkpoint(ctx)
            yield from instr.thread_teardown(ctx)

        return [
            ThreadSpec(f"memcached:worker:{i}", worker)
            for i in range(cfg.n_workers)
        ]
