"""Microbenchmarks: read-cost calibration and instrumentation-density sweeps.

These generate the data for the paper's headline overhead table (E1) and
the overhead-vs-density figure (E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.common.errors import ConfigError
from repro.hw.events import EventRates
from repro.sim.ops import Compute, Rdtsc
from repro.sim.program import ThreadContext, ThreadSpec
from repro.workloads.base import COMPUTE_RATES, Instrumentation, Workload

#: A reader is any session-like object: read(ctx, i) generator -> int.
Reader = Any


@dataclass
class ReadCostResult:
    """Outcome of a read-cost calibration loop (per technique)."""

    technique: str
    n_reads: int
    total_cycles: int

    @property
    def cycles_per_read(self) -> float:
        return self.total_cycles / self.n_reads if self.n_reads else 0.0


class ReadCostMicrobench(Workload):
    """Times ``n_reads`` back-to-back reads of a session with rdtsc.

    This is exactly how one calibrates read cost on real hardware: take the
    TSC, spin N reads, take the TSC again, divide. The rdtsc pair's own
    cost is excluded via a measured empty-loop baseline.
    """

    name = "read_cost"

    def __init__(self, reader: Reader, n_reads: int = 1_000,
                 technique: str | None = None) -> None:
        if n_reads < 1:
            raise ConfigError("need at least one read")
        self.reader = reader
        self.n_reads = n_reads
        self.technique = technique or getattr(reader, "name", "reader")
        self.result: ReadCostResult | None = None

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        reader = self.reader

        def program(ctx: ThreadContext):
            if hasattr(reader, "setup"):
                yield from reader.setup(ctx)
            t0 = yield Rdtsc()
            for _ in range(self.n_reads):
                yield from reader.read(ctx, 0)
            t1 = yield Rdtsc()
            self.result = ReadCostResult(
                technique=self.technique,
                n_reads=self.n_reads,
                total_cycles=t1 - t0,
            )
            if hasattr(reader, "teardown"):
                yield from reader.teardown(ctx)

        return [ThreadSpec(f"microbench:{self.technique}", program)]


class DensitySweepWorkload(Workload):
    """A fixed compute kernel instrumented with reads at a given density.

    ``reads_per_million_cycles`` controls how often the measurement library
    is invoked; the experiment sweeps it and compares wall time against the
    uninstrumented run to produce the overhead curve (E2).
    """

    name = "density"

    #: Measured loss (PR 8 A/B, full E2, lowering on vs off): 6.3s vs 3.9s
    #: wall — the per-op lowering walk (~1.6s) dwarfs the batch savings at
    #: a 0.29 hit rate (papi/perf techniques and slice-spanning low-density
    #: chunks never batch), so the sweep skips lowering.
    compiled_lower = False

    def __init__(
        self,
        reader_factory: Callable[[], Reader] | None,
        total_compute_cycles: int = 10_000_000,
        reads_per_million_cycles: float = 10.0,
        rates: EventRates = COMPUTE_RATES,
        technique: str = "none",
    ) -> None:
        if total_compute_cycles < 1:
            raise ConfigError("need positive compute")
        if reads_per_million_cycles < 0:
            raise ConfigError("density must be non-negative")
        self.reader_factory = reader_factory
        self.total_compute_cycles = total_compute_cycles
        self.density = reads_per_million_cycles
        self.rates = rates
        self.technique = technique

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        reader = self.reader_factory() if self.reader_factory else None
        if self.density > 0 and reader is not None:
            stride = max(1, round(1_000_000 / self.density))
        else:
            stride = self.total_compute_cycles

        def program(ctx: ThreadContext) -> Generator[Any, Any, None]:
            if reader is not None and hasattr(reader, "setup"):
                yield from reader.setup(ctx)
            done = 0
            while done < self.total_compute_cycles:
                chunk = min(stride, self.total_compute_cycles - done)
                yield Compute(chunk, self.rates)
                done += chunk
                if reader is not None and done < self.total_compute_cycles:
                    yield from reader.read(ctx, 0)
            if reader is not None and hasattr(reader, "teardown"):
                yield from reader.teardown(ctx)

        return [ThreadSpec(f"density:{self.technique}", program)]
