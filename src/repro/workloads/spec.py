"""SPEC-CPU-like single-threaded compute kernels.

Used where the paper needs a quiet, lock-free compute workload: the
instrumentation-density overhead sweep (E2), the profiler comparison (E10)
and CPI-stack demonstrations. Each kernel runs phases with a distinct,
calibrated event-rate signature loosely patterned on the named SPEC
benchmark's published characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.hw.events import EventRates
from repro.sim.ops import Compute
from repro.sim.program import ThreadContext, ThreadSpec
from repro.workloads.base import Instrumentation, Workload, run_region


def _compute_body(cycles: int, rates: EventRates):
    yield Compute(cycles, rates)


@dataclass(frozen=True)
class KernelSpec:
    """One synthetic compute kernel."""

    name: str
    rates: EventRates
    phase_cycles: int
    n_phases: int

    @property
    def total_cycles(self) -> int:
        return self.phase_cycles * self.n_phases


_CATALOG_CACHE: dict[float, dict[str, KernelSpec]] = {}


def kernel_catalog(scale: float = 1.0) -> dict[str, KernelSpec]:
    """The four stock kernels, optionally scaled in length.

    Memoized per scale: KernelSpec (and its EventRates) are immutable, and
    returning the *same* objects across runs lets the engine's id-keyed
    accrual caches hit across a whole experiment sweep.
    """
    cached = _CATALOG_CACHE.get(scale)
    if cached is not None:
        return dict(cached)

    def spec(name, rates, phase_cycles, n_phases):
        return KernelSpec(
            name=name,
            rates=rates,
            phase_cycles=max(1, round(phase_cycles * scale)),
            n_phases=n_phases,
        )

    catalog = {
        "mcf_like": spec(
            "mcf_like",
            EventRates.profile(
                ipc=0.45, llc_mpki=28.0, l2_mpki=60.0, branch_frac=0.2,
                branch_miss_rate=0.04, dtlb_mpki=6.0, load_frac=0.4,
                stall_frac=0.7,
            ),
            50_000,
            40,
        ),
        "gcc_like": spec(
            "gcc_like",
            EventRates.profile(
                ipc=1.1, llc_mpki=3.0, l2_mpki=14.0, branch_frac=0.25,
                branch_miss_rate=0.08, dtlb_mpki=1.2, stall_frac=0.35,
            ),
            50_000,
            40,
        ),
        "libquantum_like": spec(
            "libquantum_like",
            EventRates.profile(
                ipc=1.4, llc_mpki=16.0, l2_mpki=20.0, branch_frac=0.15,
                branch_miss_rate=0.01, load_frac=0.45, store_frac=0.1,
                stall_frac=0.3,
            ),
            50_000,
            40,
        ),
        "povray_like": spec(
            "povray_like",
            EventRates.profile(
                ipc=1.9, llc_mpki=0.3, l2_mpki=1.5, branch_frac=0.12,
                branch_miss_rate=0.02, stall_frac=0.1,
            ),
            50_000,
            40,
        ),
    }
    _CATALOG_CACHE[scale] = catalog
    return dict(catalog)


class SpecKernelWorkload(Workload):
    """Runs one kernel on one thread, phases wrapped as regions."""

    name = "spec"

    def __init__(self, kernel: KernelSpec) -> None:
        if kernel.n_phases < 1:
            raise ConfigError("kernel needs at least one phase")
        self.kernel = kernel

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        kernel = self.kernel

        def program(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            for _ in range(kernel.n_phases):
                yield from run_region(
                    instr,
                    ctx,
                    f"{kernel.name}:phase",
                    _compute_body(kernel.phase_cycles, kernel.rates),
                )
            yield from instr.thread_teardown(ctx)

        return [ThreadSpec(f"spec:{kernel.name}", program)]


class SpecSuiteWorkload(Workload):
    """All catalog kernels, one thread each (a rate-mix suite run)."""

    name = "spec_suite"

    def __init__(self, scale: float = 1.0) -> None:
        self.catalog = kernel_catalog(scale)

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        specs: list[ThreadSpec] = []
        for kernel in self.catalog.values():
            specs.extend(SpecKernelWorkload(kernel).build(instr))
        return specs
