"""A generative model of Apache-style request serving.

The stand-in for the paper's web-server case study: worker threads loop
accepting, parsing, handling and answering requests. The defining feature
is *kernel dominance* — most request time is syscalls (accept/read/write)
— plus a briefly-held shared logging lock. Used by the user/kernel
breakdown experiment (E8) and the critical-section histogram (E7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.sim.ops import Compute, RegionBegin, RegionEnd, Sleep, Syscall
from repro.sim.program import ThreadContext, ThreadSpec
from repro.workloads.base import (
    COMPUTE_RATES,
    HTTP_PARSE_RATES,
    Instrumentation,
    Workload,
)

ACCEPT_LOCK = "apache:accept"
LOG_LOCK = "apache:log"


@dataclass
class ApacheConfig:
    """Tunable shape of the Apache model."""

    n_workers: int = 8
    requests_per_worker: int = 60
    #: kernel cycles of the accept/read/write syscalls
    accept_kernel_cycles: int = 3_800
    read_kernel_cycles: int = 2_600
    write_kernel_cycles: int = 4_200
    #: mean cycles of user-space request parsing
    parse_mean_cycles: int = 3_500
    #: mean cycles of content generation (user space)
    handler_mean_cycles: int = 16_000
    #: probability a request waits for slow client I/O
    slow_client_prob: float = 0.12
    slow_client_mean_cycles: int = 80_000
    #: median cycles the shared log lock is held
    log_cs_median_cycles: int = 350

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigError("need at least one worker")
        if self.requests_per_worker < 1:
            raise ConfigError("need at least one request per worker")


class ApacheWorkload(Workload):
    """Syscall-heavy request loop with a shared accept and log lock."""

    name = "apache"

    def __init__(self, config: ApacheConfig | None = None) -> None:
        self.config = config or ApacheConfig()

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config

        def worker(ctx: ThreadContext):
            yield from instr.thread_setup(ctx)
            rng = ctx.rng
            accept_lock = instr.lock(ACCEPT_LOCK)
            log_lock = instr.lock(LOG_LOCK)
            for _ in range(cfg.requests_per_worker):
                yield RegionBegin("request")
                # -- accept under the accept mutex (pre-fork era Apache) ----
                yield from accept_lock.acquire(ctx)
                yield Syscall("work", (rng.exp_cycles(cfg.accept_kernel_cycles),))
                yield from accept_lock.release(ctx)
                # -- read & parse the request --------------------------------
                yield Syscall("work", (rng.exp_cycles(cfg.read_kernel_cycles),))
                if rng.bernoulli(cfg.slow_client_prob):
                    yield Sleep(rng.exp_cycles(cfg.slow_client_mean_cycles))
                yield RegionBegin("parse")
                yield Compute(rng.exp_cycles(cfg.parse_mean_cycles), HTTP_PARSE_RATES)
                yield RegionEnd()
                # -- generate the response ----------------------------------
                yield RegionBegin("handler")
                yield Compute(rng.exp_cycles(cfg.handler_mean_cycles), COMPUTE_RATES)
                yield RegionEnd()
                # -- send + log ------------------------------------------------
                yield Syscall("work", (rng.exp_cycles(cfg.write_kernel_cycles),))
                yield from log_lock.acquire(ctx)
                yield Compute(
                    rng.lognormal_cycles(cfg.log_cs_median_cycles, 0.7, minimum=40),
                    COMPUTE_RATES,
                )
                yield from log_lock.release(ctx)
                yield RegionEnd()  # request
                yield from instr.checkpoint(ctx)
            yield from instr.thread_teardown(ctx)

        return [
            ThreadSpec(f"apache:worker:{i}", worker) for i in range(cfg.n_workers)
        ]
