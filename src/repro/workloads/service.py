"""Multi-tier service chains with composable resilience policies.

An open-loop request stream flows through a chain of simulated services
(edge -> app -> db by default): every tier is a bounded queue plus a pool
of worker threads, and every hop is governed by the deterministic policy
state machines in :mod:`repro.resilience` — admission control (token
bucket + priority queue-depth gate), per-tier staleness timeouts, bounded
retries under a global retry budget with seeded jittered backoff, and a
count-based circuit breaker with half-open probing. Arms of the E20
policy matrix are just :class:`PolicyConfig` presets over the same chain.

Service-level faults (:data:`repro.faults.plan.TIER_LATENCY` /
``TIER_ERROR`` / ``TIER_CRASH``) target tiers by name through the fault
DSL: tier workers probe :meth:`ThreadContext.service_fault` on the serve
path and resolve every firing back into the injector's detect/miss
ledger, so an E20 run can prove each injected tier fault was absorbed.

Time is measured the LiMiT way, as in :mod:`repro.workloads.traffic`:
each thread derives a wall-clock estimate from safe PMC reads of a
user+kernel CYCLES counter plus its own sleep ledger, disciplined against
``rdtsc`` periodically — and re-anchored after blocking queue waits,
which freeze the counter for a duration the thread cannot know (exactly
the events LiMiT cannot charge to a descheduled thread). End-to-end
latency (generator's scheduled arrival to the last tier's completion
estimate) lands in per-arm windowed latency streams that feed the SLO
burn-rate alerts in :mod:`repro.obs.alerts`.

Thread naming is a contract: generators are ``svc:gen:<i>`` and tier
workers ``svc:<tier>:w<i>`` — lint rule ML012 derives the set of live
tiers from these names to flag fault specs that could never match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError
from repro.core.limit import UnbufferedLimitSession
from repro.faults import plan as fp
from repro.hw.events import Event, EventRates
from repro.obs import runtime as obs_runtime
from repro.resilience import (
    AdmissionGate,
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
    TokenBucket,
)
from repro.sim.ops import Compute, Rdtsc, Sleep, Syscall
from repro.sim.program import ThreadContext, ThreadSpec
from repro.sim.sync import BoundedQueue
from repro.workloads.base import Instrumentation, Workload

#: Stream/counter name prefixes (suffixed with the arm label).
LATENCY_STREAM = "svc.latency"
DRIFT_STREAM = "svc.clock_drift"
REQUESTS_COUNTER = "svc.requests"
SHED_COUNTER = "svc.shed"

#: Flush the last tier's sample buffer at least this often (requests).
OBS_FLUSH_EVERY = 64

#: Tier request handling: parse + lookup + format, moderately cache-hungry.
SERVICE_RATES = EventRates.profile(
    ipc=1.2, llc_mpki=3.0, l2_mpki=10.0, branch_frac=0.2,
    branch_miss_rate=0.04, dtlb_mpki=1.0, stall_frac=0.35,
)

#: Shed reasons ``call_tier`` can record (fixed vocabulary for extract()).
SHED_REASONS = ("breaker", "depth", "throttle", "budget", "queue_full")


@dataclass(frozen=True)
class TierConfig:
    """One service tier: a bounded queue feeding a worker pool."""

    name: str
    workers: int = 2
    queue_capacity: int = 64
    service_median_cycles: int = 8_000
    service_sigma: float = 0.4
    kernel_cycles: int = 1_200

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ConfigError(f"tier name must be an identifier: {self.name!r}")
        if self.name == "gen":
            raise ConfigError("tier name 'gen' is reserved for generators")
        if self.workers < 1:
            raise ConfigError("tier needs at least one worker")
        if self.queue_capacity < 1:
            raise ConfigError("tier queue capacity must be >= 1")
        if self.service_median_cycles < 1 or self.kernel_cycles < 0:
            raise ConfigError("tier service costs must be positive")

    @property
    def mean_service_cycles(self) -> float:
        """Expected per-request cost at this tier (lognormal mean + kernel)."""
        return (
            self.service_median_cycles * math.exp(self.service_sigma**2 / 2.0)
            + self.kernel_cycles
        )


def default_tiers(queue_capacity: int = 64) -> tuple[TierConfig, ...]:
    """The canonical edge -> app -> db chain (db is the bottleneck)."""
    return (
        TierConfig("edge", workers=2, queue_capacity=queue_capacity,
                   service_median_cycles=5_000, kernel_cycles=1_000),
        TierConfig("app", workers=2, queue_capacity=queue_capacity,
                   service_median_cycles=7_000, kernel_cycles=1_200),
        TierConfig("db", workers=2, queue_capacity=queue_capacity,
                   service_median_cycles=12_000, kernel_cycles=1_500),
    )


@dataclass(frozen=True)
class PolicyConfig:
    """Which resilience policies guard the chain (one arm of the matrix)."""

    #: token-bucket admission at the edge (rate auto-sized to capacity)
    admission: bool = True
    #: priority queue-depth shedding at every tier
    shedding: bool = True
    #: drop requests already past their deadline at dequeue
    timeouts: bool = True
    #: attempts per tier call (1 = no retries)
    max_attempts: int = 3
    #: global retry budget as % of calls (None = unbounded retries)
    retry_budget_percent: int | None = 10
    #: circuit breakers guarding calls into each tier
    breaker: bool = True
    backoff_cycles: int = 20_000

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_cycles < 0:
            raise ConfigError("backoff_cycles must be >= 0")

    @classmethod
    def unprotected(cls) -> "PolicyConfig":
        """No policies at all: the arm that collapses under overload."""
        return cls(admission=False, shedding=False, timeouts=False,
                   max_attempts=1, retry_budget_percent=None, breaker=False)

    @classmethod
    def shed_only(cls) -> "PolicyConfig":
        """Depth shedding only (no admission/timeouts/retries/breaker)."""
        return cls(admission=False, shedding=True, timeouts=False,
                   max_attempts=1, retry_budget_percent=None, breaker=False)

    @classmethod
    def full(cls) -> "PolicyConfig":
        """Every policy on: the protected arm."""
        return cls()

    @classmethod
    def budgeted(cls) -> "PolicyConfig":
        """Shedding + budgeted retries, no admission bucket or breaker:
        the control arm for :meth:`budget_off` — identical except the
        retry budget is on, so the storm stays capped."""
        return cls(admission=False, shedding=True, timeouts=True,
                   max_attempts=6, retry_budget_percent=10, breaker=False)

    @classmethod
    def budget_off(cls) -> "PolicyConfig":
        """Shedding + unbudgeted retries: the retry-storm arm. No
        admission bucket (upstream rate limiting is what keeps busy
        signals from ever reaching the retry path — this arm models the
        common deployment where retries are the only 'protection') and
        no retry budget, so every busy signal multiplies offered load
        and the storm sustains itself past the original overload."""
        return cls(admission=False, shedding=True, timeouts=True,
                   max_attempts=6, retry_budget_percent=None, breaker=False)


@dataclass
class ServiceChainConfig:
    """Shape of the multi-tier service-chain workload."""

    tiers: tuple[TierConfig, ...] = field(default_factory=default_tiers)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    #: arm label; suffixes every stream/counter name so policy arms stay
    #: separable inside one merged collector
    label: str = "full"
    n_generators: int = 2
    requests_per_generator: int = 6_000
    #: per-generator mean inter-arrival at rate multiplier 1
    base_interarrival_cycles: int = 24_000
    #: overload schedule: flat at 1.0 for ``calm_cycles``, then a linear
    #: ramp to ``overload_peak`` over ``ramp_cycles``, then held
    calm_cycles: int = 40_000_000
    ramp_cycles: int = 50_000_000
    overload_peak: float = 2.2
    #: end-to-end deadline; completions past it don't count as goodput
    deadline_cycles: int = 240_000
    #: fraction (percent) of requests in the high-priority class 0
    high_priority_pct: int = 20
    #: discipline each thread's PMC clock against rdtsc every N reads
    resync_every: int = 32
    #: seeds the retry policy's jitter stream
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ConfigError("service chain needs at least one tier")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tier names: {names}")
        if not self.label or not self.label.replace("_", "").replace("-", "").isalnum():
            raise ConfigError(f"arm label must be an identifier: {self.label!r}")
        if self.n_generators < 1 or self.requests_per_generator < 1:
            raise ConfigError("need at least one generator and one request")
        if self.base_interarrival_cycles < 1:
            raise ConfigError("base_interarrival_cycles must be >= 1")
        if self.calm_cycles < 0 or self.ramp_cycles < 1:
            raise ConfigError("schedule cycles must be positive")
        if self.overload_peak < 1.0:
            raise ConfigError("overload_peak must be >= 1.0")
        if self.deadline_cycles < 1:
            raise ConfigError("deadline_cycles must be >= 1")
        if not 0 <= self.high_priority_pct <= 100:
            raise ConfigError("high_priority_pct must be in [0, 100]")

    @property
    def n_threads(self) -> int:
        return self.n_generators + sum(t.workers for t in self.tiers)

    def rate_multiplier(self, elapsed: int) -> float:
        """Arrival-rate multiplier at ``elapsed`` cycles since start."""
        if elapsed <= self.calm_cycles:
            return 1.0
        frac = min(1.0, (elapsed - self.calm_cycles) / self.ramp_cycles)
        return 1.0 + (self.overload_peak - 1.0) * frac

    def capacity_per_mcycle(self) -> int:
        """Sustainable chain throughput (requests per Mcycle): the
        bottleneck tier's worker pool divided by its mean service cost."""
        return int(min(
            t.workers * 1_000_000 / t.mean_service_cycles for t in self.tiers
        ))


def quick_chain(config: ServiceChainConfig, requests: int) -> ServiceChainConfig:
    """A copy of ``config`` resized to ``requests`` per generator, with the
    overload schedule shrunk so short runs still traverse calm -> ramp ->
    held-peak (but never below a few collector windows of simulated time,
    so burn-rate alerts keep distinct calm and overload windows)."""
    scale = requests / max(1, config.requests_per_generator)
    return replace(
        config,
        requests_per_generator=requests,
        calm_cycles=max(14_000_000, int(config.calm_cycles * scale)),
        ramp_cycles=max(10_000_000, int(config.ramp_cycles * scale)),
    )


class _PmcClock:
    """A per-thread wall-clock estimate from LiMiT safe counter reads.

    ``now = base + (cycles - c0) + sleep_credit``: exact while the thread
    runs or sleeps for durations it chose itself. Two events break the
    ledger — scheduler wake-up latency (slow drift, folded back in by a
    periodic rdtsc resync) and blocking queue waits (the counter freezes
    for an unknowable duration, so callers :meth:`reanchor` after them).
    Both corrections are recorded on the drift stream, keeping clock
    quality a first-class measurement.
    """

    __slots__ = ("session", "resync_every", "drift_stream",
                 "_c0", "_base", "_credit", "_now", "_reads")

    def __init__(
        self,
        session: UnbufferedLimitSession,
        resync_every: int,
        drift_stream: str,
    ) -> None:
        self.session = session
        self.resync_every = resync_every
        self.drift_stream = drift_stream
        self._c0 = 0
        self._base = 0
        self._credit = 0
        self._now = 0
        self._reads = 0

    def setup(self, ctx: ThreadContext):
        yield from self.session.setup(ctx)
        self._c0 = yield from self.session.read_safe(ctx)
        self._base = yield Rdtsc()
        self._now = self._base

    def now(self) -> int:
        """The last computed estimate (no ops; may be slightly stale)."""
        return self._now

    def sleep(self, ctx: ThreadContext, cycles: int):
        """Sleep with the duration credited to the clock ledger."""
        if cycles > 0:
            yield Sleep(cycles)
            self._credit += cycles

    def read(self, ctx: ThreadContext):
        """Refresh the estimate from one safe PMC read (resyncing against
        rdtsc every ``resync_every`` reads); returns the new estimate."""
        cycles = yield from self.session.read_safe(ctx)
        self._now = self._base + (cycles - self._c0) + self._credit
        self._reads += 1
        if self.resync_every and self._reads % self.resync_every == 0:
            yield from self.reanchor(ctx)
        return self._now

    def reanchor(self, ctx: ThreadContext):
        """Fold accumulated drift back in with one rdtsc (NTP-style)."""
        true_now = yield Rdtsc()
        drift = true_now - self._now
        obs_runtime.observe_latency(
            self.drift_stream, abs(drift), at=max(0, true_now)
        )
        self._base += drift
        self._now = true_now
        return self._now

    def teardown(self, ctx: ThreadContext):
        yield from self.session.teardown(ctx)


class ServiceChainWorkload(Workload):
    """Open-loop traffic through a policy-governed multi-tier chain.

    Builds ``n_generators`` generator threads plus each tier's worker
    pool; intended to run with ``n_threads <= n_cores`` so every thread
    owns a core and its PMC clock is near-exact. Python-side policy and
    counter state is shared across thread closures; every mutation
    happens between yields of programs the engine serializes in
    simulated-time order, so totals are deterministic.
    """

    name = "service_chain"

    def __init__(self, config: ServiceChainConfig | None = None) -> None:
        self.config = config or ServiceChainConfig()
        self.session: UnbufferedLimitSession | None = None
        self.queues: list[BoundedQueue] = []
        #: plain totals for extract(): offered/admitted/completed/goodput,
        #: call/retry counts, and per-tier shed/fault breakdowns
        self.totals: dict[str, int] = {}
        self.tier_totals: dict[str, dict[str, int]] = {}
        self.breakers: dict[str, CircuitBreaker] = {}
        self.budget: RetryBudget | None = None

    # -- instrumented program construction ---------------------------------

    def build(self, instr: Instrumentation | None = None) -> list[ThreadSpec]:
        instr = instr or Instrumentation()
        cfg = self.config
        pol = cfg.policy
        session = UnbufferedLimitSession(
            [Event.CYCLES], count_kernel=True, name="svc-clock"
        )
        self.session = session

        latency_stream = f"{LATENCY_STREAM}.{cfg.label}"
        drift_stream = f"{DRIFT_STREAM}.{cfg.label}"
        requests_counter = f"{REQUESTS_COUNTER}.{cfg.label}"
        shed_counter = f"{SHED_COUNTER}.{cfg.label}"

        tiers = cfg.tiers
        queues = [
            BoundedQueue(f"svc:{t.name}:{cfg.label}", t.queue_capacity)
            for t in tiers
        ]
        self.queues = queues

        totals = {
            "offered": 0, "admitted": 0, "completed": 0, "goodput": 0,
            "calls": 0, "retries": 0,
        }
        self.totals = totals
        tier_totals = {
            t.name: {
                "admitted": 0, "timeout": 0, "errors": 0, "crash_outages": 0,
                "latency_spikes": 0, "retries": 0,
                **{f"shed_{r}": 0 for r in SHED_REASONS},
            }
            for t in tiers
        }
        self.tier_totals = tier_totals

        # Policy state (shared; tier-indexed). The edge token bucket is
        # auto-sized to ~95% of the bottleneck tier's capacity, so under
        # overload the gate holds admitted load just below the knee.
        rate = max(1, cfg.capacity_per_mcycle() * 95 // 100)
        gates: list[AdmissionGate | None] = []
        for i, t in enumerate(tiers):
            bucket = (
                TokenBucket(rate, burst=2 * t.workers * 8)
                if pol.admission and i == 0 else None
            )
            if pol.shedding:
                # Deadline-derived depth gate: admit priority 0 only while
                # the projected queue wait (depth x per-item drain time)
                # fits in half the end-to-end deadline; shed priority 1 a
                # quarter earlier. Tighter than the raw capacity, so the
                # gate trips before dequeue-side timeouts would.
                drain = t.mean_service_cycles / t.workers
                high = max(2, min(
                    t.queue_capacity,
                    int(cfg.deadline_cycles / 2 / drain),
                ))
                thresholds: tuple[int, ...] = (high, max(1, 3 * high // 4))
            else:
                thresholds = ()
            if bucket is None and not thresholds:
                gates.append(None)
            else:
                gates.append(AdmissionGate(bucket, thresholds))
        breakers = {
            t.name: CircuitBreaker(failure_threshold=8,
                                   cooldown_cycles=400_000)
            for t in tiers
        } if pol.breaker else {}
        self.breakers = breakers
        budget = (
            RetryBudget(pol.retry_budget_percent)
            if pol.max_attempts > 1 else None
        )
        self.budget = budget
        retry = RetryPolicy(
            max_attempts=pol.max_attempts,
            backoff_cycles=pol.backoff_cycles,
            seed=cfg.seed,
        )
        # Shutdown cascade bookkeeping: the last generator closes the edge
        # queue; the last worker of tier i to see Closed closes tier i+1.
        live = {"gen": cfg.n_generators}
        live.update({t.name: t.workers for t in tiers})

        def shed(tier_name: str, reason: str, now: int) -> None:
            tier_totals[tier_name][f"shed_{reason}"] += 1
            obs_runtime.count_window(shed_counter, at=max(0, now))

        def call_tier(ctx: ThreadContext, clock: _PmcClock, index: int, req):
            """Caller-side hop into tier ``index``: breaker -> admission ->
            bounded enqueue, with budgeted, jittered retries around the
            *busy* outcomes (depth shed, full queue). Token-bucket
            throttles and breaker short-circuits are terminal — those
            policies exist precisely to say "stop offering load", so
            retrying them would defeat them. Returns True when the
            request was handed off; every drop path is counted."""
            tier = tiers[index]
            q = queues[index]
            t_tot = tier_totals[tier.name]
            breaker = breakers.get(tier.name)
            gate = gates[index]
            if budget is not None:
                budget.note_call()
            attempt = 1
            while True:
                now = clock.now()
                if breaker is not None and not breaker.allow(now):
                    shed(tier.name, "breaker", now)
                    return False
                totals["calls"] += 1
                verdict = "ok"
                if gate is not None:
                    verdict = gate.admit(now, q.depth(), req[1])
                if verdict == "throttle":
                    shed(tier.name, "throttle", now)
                    return False
                full = False
                if verdict == "ok":
                    ok = yield from q.try_put(ctx, req)
                    if ok:
                        t_tot["admitted"] += 1
                        if breaker is not None:
                            breaker.record_success(clock.now())
                        return True
                    full = True
                # Busy (depth gate shed or queue full): retry with backoff
                # if the attempt cap and the global retry budget allow.
                if breaker is not None:
                    breaker.record_failure(clock.now())
                if attempt >= pol.max_attempts:
                    shed(tier.name, "queue_full" if full else "depth", now)
                    return False
                if budget is not None and not budget.allow():
                    shed(tier.name, "budget", now)
                    return False
                t_tot["retries"] += 1
                totals["retries"] += 1
                yield from clock.sleep(ctx, retry.delay(req[0], attempt))
                attempt += 1

        def make_generator(gi: int):
            def generator(ctx: ThreadContext):
                yield from instr.thread_setup(ctx)
                clock = _PmcClock(session, cfg.resync_every, drift_stream)
                yield from clock.setup(ctx)
                rng = ctx.rng
                base = clock.now()
                arrival = base
                mean_ia = cfg.base_interarrival_cycles
                for i in range(cfg.requests_per_generator):
                    multiplier = cfg.rate_multiplier(arrival - base)
                    arrival += rng.exp_cycles(
                        max(1, int(mean_ia / multiplier))
                    )
                    wait = arrival - clock.now()
                    if wait > 0:
                        yield from clock.sleep(ctx, wait)
                    totals["offered"] += 1
                    priority = (
                        0 if rng.bernoulli(cfg.high_priority_pct / 100.0)
                        else 1
                    )
                    rid = gi * cfg.requests_per_generator + i
                    req = (rid, priority, arrival,
                           arrival + cfg.deadline_cycles, 1)
                    if (yield from call_tier(ctx, clock, 0, req)):
                        totals["admitted"] += 1
                    yield from clock.read(ctx)
                    yield from instr.checkpoint(ctx)
                live["gen"] -= 1
                if live["gen"] == 0:
                    yield from queues[0].close(ctx)
                yield from clock.teardown(ctx)
                yield from instr.thread_teardown(ctx)

            return generator

        def make_worker(index: int):
            tier = tiers[index]
            q = queues[index]
            next_index = index + 1 if index + 1 < len(tiers) else None
            last = next_index is None
            t_tot = tier_totals[tier.name]

            def worker(ctx: ThreadContext):
                yield from instr.thread_setup(ctx)
                clock = _PmcClock(session, cfg.resync_every, drift_stream)
                yield from clock.setup(ctx)
                rng = ctx.rng
                samples: list[tuple[int, int]] = []
                while True:
                    idle = q.depth() == 0
                    item = yield from q.get(ctx)
                    if item is BoundedQueue.Closed:
                        break
                    if idle:
                        # The blocking wait froze our counter for a
                        # duration we can't know; re-anchor before using
                        # the clock for deadline or latency math.
                        yield from clock.reanchor(ctx)
                    now = yield from clock.read(ctx)
                    rid, priority, arrival, deadline, generation = item
                    if pol.timeouts and now > deadline:
                        # Stale work: serving it can't meet the SLO, so
                        # shed it here instead of wasting the bottleneck.
                        t_tot["timeout"] += 1
                        obs_runtime.count_window(shed_counter, at=max(0, now))
                        # A timed-out request looks dead to its client,
                        # which re-issues it from the edge — the feedback
                        # loop that makes unbudgeted retry storms
                        # self-sustaining (recycled work keeps the
                        # bottleneck saturated after the spike passes).
                        # The retry budget is what breaks the loop.
                        if (
                            pol.max_attempts > 1
                            and generation < pol.max_attempts
                            and (budget is None or budget.allow())
                        ):
                            t_tot["retries"] += 1
                            totals["retries"] += 1
                            resubmit = (rid, priority, now,
                                        now + cfg.deadline_cycles,
                                        generation + 1)
                            yield from call_tier(ctx, clock, 0, resubmit)
                        yield from instr.checkpoint(ctx)
                        continue
                    spec = ctx.service_fault(fp.TIER_CRASH, tier.name)
                    if spec is not None:
                        # Crash + restart: this worker is gone for the
                        # outage; upstream sees the backlog, not an error.
                        t_tot["crash_outages"] += 1
                        yield from clock.sleep(ctx, int(spec.arg))
                        ctx.service_fault_resolved(fp.TIER_CRASH)
                        now = yield from clock.read(ctx)
                    spec = ctx.service_fault(fp.TIER_ERROR, tier.name)
                    if spec is not None:
                        t_tot["errors"] += 1
                        breaker = breakers.get(tier.name)
                        if breaker is not None:
                            breaker.record_failure(now)
                        ctx.service_fault_resolved(fp.TIER_ERROR)
                        obs_runtime.count_window(shed_counter, at=max(0, now))
                        yield from instr.checkpoint(ctx)
                        continue
                    yield Syscall(
                        "work", (rng.exp_cycles(tier.kernel_cycles),)
                    )
                    yield Compute(
                        rng.lognormal_cycles(
                            tier.service_median_cycles,
                            tier.service_sigma,
                            minimum=500,
                        ),
                        SERVICE_RATES,
                    )
                    spec = ctx.service_fault(fp.TIER_LATENCY, tier.name)
                    if spec is not None:
                        t_tot["latency_spikes"] += 1
                        yield Compute(int(spec.arg), SERVICE_RATES)
                        ctx.service_fault_resolved(fp.TIER_LATENCY)
                    if last:
                        now = yield from clock.read(ctx)
                        latency = max(0, now - arrival)
                        totals["completed"] += 1
                        if now <= deadline:
                            totals["goodput"] += 1
                        samples.append((latency, max(0, now)))
                        if len(samples) >= OBS_FLUSH_EVERY:
                            obs_runtime.observe_batch(
                                latency_stream, samples,
                                counter=requests_counter,
                            )
                            samples.clear()
                    else:
                        yield from call_tier(ctx, clock, next_index, item)
                    yield from instr.checkpoint(ctx)
                live[tier.name] -= 1
                if live[tier.name] == 0 and next_index is not None:
                    yield from queues[next_index].close(ctx)
                if samples:
                    obs_runtime.observe_batch(
                        latency_stream, samples, counter=requests_counter
                    )
                yield from clock.teardown(ctx)
                yield from instr.thread_teardown(ctx)

            return worker

        # Generators first: the lint walker drives threads in spec order
        # with shared Python queue state, so producers must fill (and
        # close) queues before the consumers are walked.
        specs = [
            ThreadSpec(f"svc:gen:{i}", make_generator(i))
            for i in range(cfg.n_generators)
        ]
        for index, tier in enumerate(tiers):
            for w in range(tier.workers):
                specs.append(
                    ThreadSpec(f"svc:{tier.name}:w{w}", make_worker(index))
                )
        return specs

    # -- post-run accounting -------------------------------------------------

    def shed_total(self) -> int:
        """Requests dropped anywhere in the chain, by any policy."""
        return sum(
            sum(tt[f"shed_{r}"] for r in SHED_REASONS)
            + tt["timeout"] + tt["errors"]
            for tt in self.tier_totals.values()
        )

    def summary(self) -> dict:
        """Plain-int accounting for the experiment's extract()."""
        out = dict(self.totals)
        out["tiers"] = {name: dict(tt) for name, tt in self.tier_totals.items()}
        out["breaker_opens"] = sum(b.opens for b in self.breakers.values())
        out["breaker_short_circuits"] = sum(
            b.short_circuits for b in self.breakers.values()
        )
        if self.budget is not None:
            out["retry_budget"] = {
                "calls": self.budget.calls,
                "granted": self.budget.granted,
                "denied": self.budget.denied,
            }
        return out
