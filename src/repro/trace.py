"""Trace toolbox: summarize, convert and filter JSONL trace files.

Usage::

    python -m repro.trace summarize traces/e1.jsonl
    python -m repro.trace convert traces/e1.jsonl -o e1.trace.json \
        --freq-ghz 2.4 --label "E1 quick"      # JSONL -> Perfetto
    python -m repro.trace filter traces/e1.jsonl --kind syscall_enter \
        --tid 3 -o subset.jsonl                # subset, still JSONL
    python -m repro.trace kinds                # list known event kinds

The JSONL files come from ``python -m repro.experiments --trace-dir`` or
``python -m repro run --trace-dir`` (see :mod:`repro.obs.export`). The
``convert`` output loads in https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.common.errors import ReproError
from repro.common.units import Frequency
from repro.obs import trace as tr
from repro.obs.export import (
    events_to_jsonl,
    perfetto_document,
    read_jsonl,
    summarize_events,
)


def _cmd_summarize(args) -> int:
    events = read_jsonl(args.file)
    summary = summarize_events(events)
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"{args.file}: {summary['n_events']} events, "
          f"cycles {summary['t_first']}..{summary['t_last']}")
    print()
    print("by kind")
    for kind, n in summary["by_kind"].items():
        print(f"  {kind:<16} {n}")
    print()
    print("by tid")
    for tid, n in summary["by_tid"].items():
        print(f"  tid {tid:<12} {n}")
    return 0


def _cmd_convert(args) -> int:
    events = read_jsonl(args.file)
    frequency = Frequency(round(args.freq_ghz * 1e9))
    label = args.label or Path(args.file).stem
    doc = perfetto_document([(label, events, frequency, None)])
    out = Path(args.out) if args.out else Path(args.file).with_suffix(".trace.json")
    out.write_text(json.dumps(doc) + "\n")
    print(f"wrote {out} ({len(doc['traceEvents'])} trace events)")
    return 0


def _cmd_filter(args) -> int:
    events = read_jsonl(args.file)
    kinds = set(args.kind or [])
    unknown = kinds - tr.KINDS
    if unknown:
        print(f"warning: unknown kind(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
    kept = [
        e
        for e in events
        if (not kinds or e.kind in kinds)
        and (args.tid is None or e.tid == args.tid)
        and (args.core is None or e.core == args.core)
        and (args.after is None or e.time >= args.after)
        and (args.before is None or e.time < args.before)
    ]
    if args.out:
        n = events_to_jsonl(kept, args.out)
        print(f"wrote {args.out} ({n}/{len(events)} events kept)")
    else:
        from repro.obs.export import event_to_dict

        for e in kept:
            print(json.dumps(event_to_dict(e), separators=(",", ":")))
    return 0


def _cmd_kinds(args) -> int:
    for kind in sorted(tr.KINDS):
        print(f"{kind:<16} {tr.KIND_DESCRIPTIONS.get(kind, '')}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize, convert and filter simulator trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sum_p = sub.add_parser("summarize", help="event counts and time span")
    sum_p.add_argument("file", help="JSONL trace file")
    sum_p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    conv_p = sub.add_parser("convert", help="JSONL -> Perfetto trace_event JSON")
    conv_p.add_argument("file", help="JSONL trace file")
    conv_p.add_argument("-o", "--out", help="output path "
                        "(default: <file>.trace.json)")
    conv_p.add_argument("--freq-ghz", type=float, default=2.4,
                        help="simulated clock for cycle->us conversion")
    conv_p.add_argument("--label", help="process label in the trace UI")

    filt_p = sub.add_parser("filter", help="subset a JSONL trace")
    filt_p.add_argument("file", help="JSONL trace file")
    filt_p.add_argument("--kind", action="append",
                        help="keep this kind (repeatable)")
    filt_p.add_argument("--tid", type=int, help="keep this thread only")
    filt_p.add_argument("--core", type=int, help="keep this core only")
    filt_p.add_argument("--after", type=int, metavar="CYCLE",
                        help="keep events at/after this cycle")
    filt_p.add_argument("--before", type=int, metavar="CYCLE",
                        help="keep events before this cycle")
    filt_p.add_argument("-o", "--out", help="write JSONL here "
                        "(default: print to stdout)")

    sub.add_parser("kinds", help="list known trace event kinds")

    args = parser.parse_args(argv)
    try:
        if args.command == "summarize":
            return _cmd_summarize(args)
        if args.command == "convert":
            return _cmd_convert(args)
        if args.command == "filter":
            return _cmd_filter(args)
        if args.command == "kinds":
            return _cmd_kinds(args)
    except BrokenPipeError:
        # stdout piped into e.g. `head`; normal usage, not an error
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
