"""Trace toolbox: summarize, convert, filter and tail trace output.

Usage::

    python -m repro.trace summarize traces/e1.jsonl
    python -m repro.trace summarize traces/        # whole trace directory
    python -m repro.trace convert traces/e1.jsonl -o e1.trace.json \
        --freq-ghz 2.4 --label "E1 quick"      # JSONL -> Perfetto
    python -m repro.trace filter traces/e1.jsonl --kind syscall_enter \
        --tid 3 -o subset.jsonl                # subset, still JSONL
    python -m repro.trace tail stream/e19 -n 20    # last N stream windows
    python -m repro.trace watch stream/e19         # follow a live stream
    python -m repro.trace kinds                # list known event kinds

The JSONL files come from ``python -m repro.experiments --trace-dir`` or
``python -m repro run --trace-dir`` (see :mod:`repro.obs.export`); stream
directories come from ``python -m repro.experiments --stream-dir``. The
``convert`` output loads in https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.common.errors import ReproError
from repro.common.units import Frequency
from repro.obs import trace as tr
from repro.obs.export import (
    StreamFollower,
    events_to_jsonl,
    is_stream_dir,
    perfetto_document,
    read_jsonl,
    read_stream_manifest,
    read_stream_records,
    summarize_events,
)
from repro.obs.windows import SPILLED_INDEX, Window


def _summarize_file(path: str, as_json: bool) -> int:
    events = read_jsonl(path)
    summary = summarize_events(events)
    if as_json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"{path}: {summary['n_events']} events, "
          f"cycles {summary['t_first']}..{summary['t_last']}")
    print()
    print("by kind")
    for kind, n in summary["by_kind"].items():
        print(f"  {kind:<16} {n}")
    print()
    print("by tid")
    for tid, n in summary["by_tid"].items():
        print(f"  tid {tid:<12} {n}")
    return 0


def _summarize_stream(directory: Path, as_json: bool) -> int:
    manifest = read_stream_manifest(directory)
    records = read_stream_records(directory)
    windows = [r for r in records if r.get("type") == "window"]
    totals = Window(SPILLED_INDEX)
    for rec in windows:
        totals.merge(Window.from_dict(rec["window"]))
    if as_json:
        print(json.dumps({
            "directory": str(directory),
            "label": manifest.get("label"),
            "closed": manifest.get("closed", False),
            "n_records": len(records),
            "n_windows": len(windows),
            "totals": totals.as_dict(),
        }, indent=2))
        return 0
    state = "closed" if manifest.get("closed") else "live"
    label = manifest.get("label") or directory.name
    print(f"{directory}: stream {label!r} ({state}), "
          f"{len(records)} records, {len(windows)} windows")
    if totals.counters:
        print()
        print("counters (all windows)")
        for name in sorted(totals.counters):
            print(f"  {name:<32} {_num(totals.counters[name])}")
    if totals.hists:
        print()
        print("streams (all windows)")
        for stream in sorted(totals.hists):
            print(f"  {stream:<32} {_hist_cell(totals.hists[stream])}")
    return 0


def _cmd_summarize(args) -> int:
    path = Path(args.file)
    if not path.exists():
        print(f"error: {path}: no such trace file or directory",
              file=sys.stderr)
        return 1
    if path.is_dir():
        if is_stream_dir(path):
            return _summarize_stream(path, args.json)
        files = sorted(p for p in path.glob("*.jsonl")
                       if not p.name.startswith("part-"))
        if not files:
            print(f"error: {path}: empty trace directory "
                  "(no .jsonl trace files and no stream manifest)",
                  file=sys.stderr)
            return 1
        rc = 0
        for i, file in enumerate(files):
            if i and not args.json:
                print()
            rc |= _summarize_file(str(file), args.json)
        return rc
    return _summarize_file(args.file, args.json)


def _cmd_convert(args) -> int:
    events = read_jsonl(args.file)
    frequency = Frequency(round(args.freq_ghz * 1e9))
    label = args.label or Path(args.file).stem
    doc = perfetto_document([(label, events, frequency, None)])
    out = Path(args.out) if args.out else Path(args.file).with_suffix(".trace.json")
    out.write_text(json.dumps(doc) + "\n")
    print(f"wrote {out} ({len(doc['traceEvents'])} trace events)")
    return 0


def _cmd_filter(args) -> int:
    events = read_jsonl(args.file)
    kinds = set(args.kind or [])
    unknown = kinds - tr.KINDS
    if unknown:
        print(f"warning: unknown kind(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
    kept = [
        e
        for e in events
        if (not kinds or e.kind in kinds)
        and (args.tid is None or e.tid == args.tid)
        and (args.core is None or e.core == args.core)
        and (args.after is None or e.time >= args.after)
        and (args.before is None or e.time < args.before)
    ]
    if args.out:
        n = events_to_jsonl(kept, args.out)
        print(f"wrote {args.out} ({n}/{len(events)} events kept)")
    else:
        from repro.obs.export import event_to_dict

        for e in kept:
            print(json.dumps(event_to_dict(e), separators=(",", ":")))
    return 0


def _num(value) -> str:
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return f"{value:,}" if isinstance(value, int) else f"{value:,.2f}"


def _hist_cell(hist) -> str:
    s = hist.summary()
    return (f"n={s['count']:,} p50={s['p50']:,} p95={s['p95']:,} "
            f"p99={s['p99']:,} p99.9={s['p99.9']:,} max={s['max']:,}")


def _window_line(record: dict) -> str:
    """One rolling-summary line for a stream window record."""
    window = Window.from_dict(record["window"])
    data = record["window"]
    if window.index == SPILLED_INDEX:
        where = ("late (out-of-order observations)"
                 if record.get("source") == "late"
                 else "spilled (pre-merge evictions)")
    elif "start_cycle" in data:
        where = (f"window {window.index} "
                 f"[{data['start_cycle']:,}..{data['end_cycle']:,}]")
    else:
        where = f"window {window.index}"
    bits = [f"run {record.get('run', 0)}",
            f"{record.get('source', 'flush'):<7}", where]
    for name in sorted(window.counters):
        bits.append(f"{name}={_num(window.counters[name])}")
    for stream in sorted(window.hists):
        bits.append(f"{stream}: {_hist_cell(window.hists[stream])}")
    return "  ".join(bits)


def _cmd_tail(args) -> int:
    directory = Path(args.directory)
    manifest = read_stream_manifest(directory)  # raises ReproError if not one
    records = [r for r in read_stream_records(directory)
               if r.get("type") == "window"]
    state = "closed" if manifest.get("closed") else "live"
    label = manifest.get("label") or directory.name
    shown = records[-args.windows:] if args.windows > 0 else records
    if args.json:
        for record in shown:
            print(json.dumps(record, separators=(",", ":")))
        return 0
    print(f"{directory}: stream {label!r} ({state}), "
          f"{len(records)} window records"
          + (f", showing last {len(shown)}" if len(shown) < len(records)
             else ""))
    for record in shown:
        print(_window_line(record))
    return 0


def _cmd_watch(args) -> int:
    directory = Path(args.directory)
    follower = StreamFollower(directory)
    deadline = (time.monotonic() + args.timeout
                if args.timeout is not None else None)
    seen = 0
    announced = False
    try:
        while True:
            for record in follower.poll():
                if record.get("type") != "window":
                    continue
                seen += 1
                if args.json:
                    print(json.dumps(record, separators=(",", ":")))
                else:
                    print(_window_line(record))
                sys.stdout.flush()
            manifest = follower.manifest()
            if manifest is not None and not announced and not args.json:
                label = manifest.get("label") or directory.name
                print(f"watching {directory} (stream {label!r})",
                      file=sys.stderr)
                announced = True
            if manifest is not None and manifest.get("closed"):
                # One final poll already drained everything written before
                # close(); the stream can't grow any further.
                if not args.json:
                    print(f"stream closed after {seen} window records",
                          file=sys.stderr)
                return 0
            if deadline is not None and time.monotonic() >= deadline:
                if manifest is None and seen == 0:
                    print(f"error: {directory}: no stream appeared within "
                          f"{args.timeout:g}s", file=sys.stderr)
                    return 1
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 0


def _cmd_kinds(args) -> int:
    for kind in sorted(tr.KINDS):
        print(f"{kind:<16} {tr.KIND_DESCRIPTIONS.get(kind, '')}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize, convert and filter simulator trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sum_p = sub.add_parser("summarize", help="event counts and time span")
    sum_p.add_argument("file", help="JSONL trace file, trace directory, "
                       "or stream directory")
    sum_p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    tail_p = sub.add_parser(
        "tail", help="last N window summaries of a stream directory")
    tail_p.add_argument("directory", help="stream directory "
                        "(from --stream-dir)")
    tail_p.add_argument("-n", "--windows", type=int, default=10,
                        help="window records to show (0 = all; default 10)")
    tail_p.add_argument("--json", action="store_true",
                        help="raw JSONL records instead of summaries")

    watch_p = sub.add_parser(
        "watch", help="follow a live stream directory, printing windows "
        "as they are flushed")
    watch_p.add_argument("directory", help="stream directory "
                         "(from --stream-dir)")
    watch_p.add_argument("--interval", type=float, default=0.5,
                         help="poll interval in seconds (default 0.5)")
    watch_p.add_argument("--timeout", type=float, default=None,
                         help="give up after this many seconds "
                         "(default: until the stream closes or Ctrl-C)")
    watch_p.add_argument("--json", action="store_true",
                         help="raw JSONL records instead of summaries")

    conv_p = sub.add_parser("convert", help="JSONL -> Perfetto trace_event JSON")
    conv_p.add_argument("file", help="JSONL trace file")
    conv_p.add_argument("-o", "--out", help="output path "
                        "(default: <file>.trace.json)")
    conv_p.add_argument("--freq-ghz", type=float, default=2.4,
                        help="simulated clock for cycle->us conversion")
    conv_p.add_argument("--label", help="process label in the trace UI")

    filt_p = sub.add_parser("filter", help="subset a JSONL trace")
    filt_p.add_argument("file", help="JSONL trace file")
    filt_p.add_argument("--kind", action="append",
                        help="keep this kind (repeatable)")
    filt_p.add_argument("--tid", type=int, help="keep this thread only")
    filt_p.add_argument("--core", type=int, help="keep this core only")
    filt_p.add_argument("--after", type=int, metavar="CYCLE",
                        help="keep events at/after this cycle")
    filt_p.add_argument("--before", type=int, metavar="CYCLE",
                        help="keep events before this cycle")
    filt_p.add_argument("-o", "--out", help="write JSONL here "
                        "(default: print to stdout)")

    sub.add_parser("kinds", help="list known trace event kinds")

    args = parser.parse_args(argv)
    try:
        if args.command == "summarize":
            return _cmd_summarize(args)
        if args.command == "convert":
            return _cmd_convert(args)
        if args.command == "filter":
            return _cmd_filter(args)
        if args.command == "tail":
            return _cmd_tail(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "kinds":
            return _cmd_kinds(args)
    except BrokenPipeError:
        # stdout piped into e.g. `head`; normal usage, not an error
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
