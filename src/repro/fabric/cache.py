"""Content-addressed on-disk cache for deterministic simulation results.

Every engine run is a pure function of (workload factory, kwargs, SimConfig
— which includes the seed) plus the simulator's source code. The cache
exploits that: entries are keyed by a SHA-256 over those inputs and a
*code-version salt* (a digest of every ``repro`` source file), so any code
change invalidates the whole cache automatically and no entry can ever be
served for inputs it was not computed from.

Entries are integrity-checked: each file stores the payload's own SHA-256
ahead of the pickled bytes, and a corrupted/truncated entry is detected on
load, counted in :class:`CacheStats`, *quarantined* (moved aside into
``<root>/quarantine/`` so the bad bytes stay available for diagnosis) and
treated as a miss — the run is simply re-simulated. IO problems never
propagate: an unreadable entry or an unwritable cache directory degrades
to uncached execution with a one-line :func:`repro.obs.warn`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.warnings import warn

#: bump to invalidate every cache entry regardless of code salt
CACHE_FORMAT = 1

_code_salt: str | None = None


def code_salt() -> str:
    """Digest of every ``repro`` source file (memoised per process).

    Two processes running the same source tree compute the same salt; any
    edit to any ``.py`` file under the package changes it.
    """
    global _code_salt
    if _code_salt is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_salt = digest.hexdigest()[:16]
    return _code_salt


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


@dataclass
class CacheStats:
    """Hit/miss/store counters, exposed in manifests and ``--cache-stats``."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0  #: corrupted or unreadable entries detected
    quarantined: int = 0  #: corrupt entries moved aside to quarantine/

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "quarantined": self.quarantined,
        }

    def add(self, other: "CacheStats | dict") -> None:
        if isinstance(other, CacheStats):
            other = other.as_dict()
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.stores += other.get("stores", 0)
        self.errors += other.get("errors", 0)
        self.quarantined += other.get("quarantined", 0)

    def delta(self, since: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            stores=self.stores - since.stores,
            errors=self.errors - since.errors,
            quarantined=self.quarantined - since.quarantined,
        )

    def copy(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.stores, self.errors, self.quarantined
        )


class ResultCache:
    """A directory of integrity-checked pickled values, addressed by key.

    ``salt`` defaults to :func:`code_salt`; tests pass an explicit salt to
    exercise invalidation without editing source files.
    """

    def __init__(
        self,
        root: Path | str,
        salt: str | None = None,
        stats: CacheStats | None = None,
    ) -> None:
        self.root = Path(root)
        self.salt = salt if salt is not None else code_salt()
        self.stats = stats if stats is not None else CacheStats()
        #: corrupt keys whose entry could not be quarantined *or* evicted
        #: (read-only cache dir): remembered so this process stops
        #: re-reading and re-warning about them on every lookup.
        self._dead_keys: set[str] = set()

    # -- keys ---------------------------------------------------------------

    def key(self, kind: str, *parts: Any) -> str:
        """Content address for a value of ``kind`` derived from ``parts``.

        Parts are folded in via ``repr``, so they must have deterministic
        reprs (ints, floats, strings, tuples, dataclasses of those).
        """
        digest = hashlib.sha256()
        digest.update(f"repro-cache/{CACHE_FORMAT}/{self.salt}/{kind}".encode())
        for part in parts:
            digest.update(b"\0")
            digest.update(repr(part).encode())
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- IO -----------------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """The stored value, or None on miss, IO error or corruption.

        A missing file is a clean miss. An *unreadable* file (permissions,
        IO error, a directory where the entry should be) counts as an
        error and degrades to a miss. A *corrupt* file (digest mismatch,
        truncated or unpicklable payload) is quarantined — moved into
        ``<root>/quarantine/`` — so the next store rewrites it cleanly and
        the bad bytes remain available for diagnosis; on a read-only cache
        the key is simply ignored for the rest of the process.
        """
        if key in self._dead_keys:
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            self.stats.errors += 1
            self.stats.misses += 1
            warn(f"cache entry {path.name} unreadable ({exc}); treated as a miss")
            return None
        try:
            header, payload = blob.split(b"\n", 1)
            if header.decode() != hashlib.sha256(payload).hexdigest():
                raise ValueError("payload digest mismatch")
            value = pickle.loads(payload)
        except Exception as exc:
            self.stats.errors += 1
            self.stats.misses += 1
            self._quarantine(key, path, exc)
            return None
        self.stats.hits += 1
        return value

    def _quarantine(self, key: str, path: Path, reason: Exception) -> None:
        """Move a corrupt entry into quarantine/ (fallbacks: evict, ignore)."""
        qdir = self.root / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            # Can't move it (read-only dir, cross-device...): try plain
            # eviction; failing that, blacklist the key for this process so
            # we don't re-read and re-detect the same corruption forever.
            try:
                path.unlink()
            except OSError:
                self._dead_keys.add(key)
                warn(
                    f"cache entry {path.name} corrupt ({reason}) and the "
                    f"cache directory is not writable; ignoring the entry"
                )
                return
            warn(f"cache entry {path.name} corrupt ({reason}); evicted")
            return
        self.stats.quarantined += 1
        warn(f"cache entry {path.name} corrupt ({reason}); quarantined to {qdir}")

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically (write-to-temp + rename).

        Storage failures (read-only or full cache directory) warn once and
        degrade to uncached execution — they never fail the run.
        """
        path = self._path(key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError as exc:
            self.stats.errors += 1
            warn(f"cache store failed for {path.name} ({exc}); running uncached")
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stats.stores += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {self.root} salt={self.salt}>"
