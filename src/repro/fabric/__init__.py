"""repro.fabric: parallel run execution and deterministic result caching.

The fabric turns the evaluation suite's independent (seed, config) runs
into picklable job specs that can execute in a process pool and be replayed
from a content-addressed on-disk cache. Determinism is the contract: a
run's outputs depend only on its inputs and the simulator source, so
serial, parallel and cached execution all produce identical results.
"""

from repro.fabric.cache import (
    CacheStats,
    ResultCache,
    code_salt,
    default_cache_dir,
)
from repro.fabric.jobs import (
    FabricConfig,
    JobOutcome,
    RunJob,
    configure,
    current,
    execute_job,
    run_many,
    run_one,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "code_salt",
    "default_cache_dir",
    "FabricConfig",
    "JobOutcome",
    "RunJob",
    "configure",
    "current",
    "execute_job",
    "run_many",
    "run_one",
]
