"""repro.fabric: parallel run execution and deterministic result caching.

The fabric turns the evaluation suite's independent (seed, config) runs
into picklable job specs that can execute in a process pool and be replayed
from a content-addressed on-disk cache. Determinism is the contract: a
run's outputs depend only on its inputs and the simulator source, so
serial, parallel and cached execution all produce identical results.

The fabric is also crash-tolerant: pooled jobs run one-per-process with a
per-job timeout and bounded retry, so a crashed or hung worker yields a
structured :class:`JobFailure` (under ``fail_fast=False``) instead of
taking down the sweep, and corrupt cache entries are quarantined rather
than fatal (see :mod:`repro.fabric.cache` and ``docs/robustness.md``).
"""

from repro.fabric.cache import (
    CacheStats,
    ResultCache,
    code_salt,
    default_cache_dir,
)
from repro.fabric.jobs import (
    FabricConfig,
    JobFailure,
    JobOutcome,
    RunJob,
    configure,
    current,
    drain_failures,
    execute_job,
    run_many,
    run_one,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "code_salt",
    "default_cache_dir",
    "FabricConfig",
    "JobFailure",
    "JobOutcome",
    "RunJob",
    "configure",
    "current",
    "drain_failures",
    "execute_job",
    "run_many",
    "run_one",
]
