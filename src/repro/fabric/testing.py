"""Fault-injecting workload factory for exercising the fabric itself.

:class:`ChaosWorkload` is the crash-test dummy of the run fabric: resolved
like any other :class:`~repro.fabric.jobs.RunJob` workload, but able to
kill its worker process outright, hang it, raise, or fail only on the
first attempt (to prove retry works). It lives in the library rather than
the test tree so CI jobs and local smoke targets can reference it by
dotted path, exactly like a real workload.

Modes:

* ``"ok"`` — behave: build a small :class:`BusyWorkload` program;
* ``"crash"`` — ``os._exit`` the worker before building anything (models
  a segfault / OOM kill: no exception ever reaches the fabric);
* ``"hang"`` — sleep far beyond any sane per-job timeout;
* ``"error"`` — raise a deterministic RuntimeError;
* ``"flaky"`` — crash on the first attempt, then behave: the first call
  creates ``marker`` and dies, later calls see the marker and build
  normally (requires ``marker`` to be set to a writable path).
"""

from __future__ import annotations

import os
import time

from repro.common.errors import ConfigError
from repro.workloads.synthetic import BusyWorkload

#: exit code used by crashing modes, distinctive in fabric error messages
CRASH_EXIT_CODE = 23

MODES = ("ok", "crash", "hang", "error", "flaky")


class ChaosWorkload:
    """See module docstring. ``cycles``/``n_threads`` size the program the
    behaving modes build; ``hang_seconds`` bounds the hang so a fabric bug
    can't wedge a test run forever."""

    def __init__(
        self,
        mode: str = "ok",
        cycles: int = 20_000,
        n_threads: int = 2,
        marker: str | None = None,
        hang_seconds: float = 120.0,
    ) -> None:
        if mode not in MODES:
            raise ConfigError(f"unknown chaos mode {mode!r}; known: {MODES}")
        if mode == "flaky" and not marker:
            raise ConfigError("chaos mode 'flaky' needs a marker path")
        self.mode = mode
        self.cycles = cycles
        self.n_threads = n_threads
        self.marker = marker
        self.hang_seconds = hang_seconds

    def build(self):
        if self.mode == "crash":
            os._exit(CRASH_EXIT_CODE)
        if self.mode == "hang":
            time.sleep(self.hang_seconds)
            os._exit(CRASH_EXIT_CODE)  # a timeout should have killed us
        if self.mode == "error":
            raise RuntimeError("chaos: deterministic job failure")
        if self.mode == "flaky" and not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write("chaos: first attempt\n")
            os._exit(CRASH_EXIT_CODE)
        return BusyWorkload(
            n_threads=self.n_threads, cycles_per_thread=self.cycles
        ).build()
