"""Picklable run jobs and the process-pool execution fabric.

A :class:`RunJob` names everything one engine run needs — a dotted-path
workload factory, its keyword arguments and a :class:`SimConfig` (which
carries the seed). Because the factory is resolved *inside* the executing
process, session/profiler objects the workload creates live and die with
the run; whatever the caller needs back travels as picklable data:

* ``outcome.result`` — the full :class:`~repro.sim.results.RunResult`;
* ``outcome.extra`` — the factory's optional ``extract(result)`` payload
  (use it to ship tool-side observations such as session read records).

:func:`run_many` executes a batch of jobs — in worker processes when the
fabric is configured with ``jobs > 1``, inline otherwise — consults the
result cache when one is configured, and merges every engine run into the
ambient :mod:`repro.obs` collector so manifests stay correct regardless of
where runs physically executed. Simulation is deterministic, so outcomes
are byte-identical across serial, parallel and cache-hit execution (a
property test enforces this).

Worker execution is *fault-isolated*: every pooled job runs in its own
process, so a crashed worker (segfault, ``os._exit``, OOM kill) or a hung
one (per-job ``timeout``) is blamed on exactly the offending job — never
on innocent jobs sharing the sweep. Crashes and timeouts are retried with
jittered exponential backoff up to ``retries`` times (they may be
transient: a busy machine, an OOM near-miss); deterministic Python
exceptions are not retried, because the simulator is deterministic and
would fail identically. Under ``fail_fast=False`` a terminally failed job
becomes a structured :class:`JobFailure` in the outcome list and the sweep
continues; under ``fail_fast=True`` (the library default, matching the
historical behaviour) the first terminal failure raises.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any

from repro.common.config import SimConfig
from repro.common.errors import ConfigError, FabricError
from repro.fabric.cache import ResultCache
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import EngineRunRecord
from repro.obs.warnings import warn
from repro.sim.results import RunResult

class _Unset:
    """Sentinel type for "argument omitted" as distinct from an explicit
    ``None``; a real class (not a bare ``object()``) so ``isinstance``
    checks narrow the ``X | None | _Unset`` unions below."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<unset>"


_UNSET = _Unset()


@dataclass
class FabricConfig:
    """Process-local execution policy: pool width, result cache, and the
    failure policy (per-job timeout, retry budget, fail-fast)."""

    jobs: int = 1
    cache: ResultCache | None = None
    #: per-job wall-clock budget in seconds for pooled execution; None
    #: disables the watchdog (inline runs are never timed out — there is
    #: no process boundary to kill).
    timeout: float | None = None
    #: how many times a crashed or timed-out job is re-run before it
    #: becomes a terminal failure (deterministic exceptions never retry).
    retries: int = 1
    #: base backoff in seconds before a retry; the actual delay is
    #: ``backoff * 2**(attempt-1)`` with up to +25% jitter.
    backoff: float = 0.25
    #: True: first terminal job failure raises (historical behaviour).
    #: False: failures come back as JobFailure and the sweep continues.
    fail_fast: bool = True


_config = FabricConfig()

#: Terminal JobFailures from every run_many in this process since the last
#: drain — the experiment runner reports these in its manifest/exit code.
_session_failures: list["JobFailure"] = []


def drain_failures() -> list["JobFailure"]:
    """Return (and clear) the terminal job failures seen by this process."""
    global _session_failures
    failures, _session_failures = _session_failures, []
    return failures


def configure(
    jobs: int | None = None,
    cache: "ResultCache | None | _Unset" = _UNSET,
    cache_dir: "str | None | _Unset" = _UNSET,
    salt: str | None = None,
    timeout: "float | None | _Unset" = _UNSET,
    retries: int | None = None,
    backoff: float | None = None,
    fail_fast: bool | None = None,
) -> FabricConfig:
    """Set the process-wide fabric policy; returns the live config.

    ``cache`` takes a ready :class:`ResultCache` (or None to disable);
    ``cache_dir`` builds one at that path. Passing neither leaves the
    current cache untouched. ``timeout``/``retries``/``backoff``/
    ``fail_fast`` set the failure policy (see :class:`FabricConfig`).
    """
    if jobs is not None:
        if jobs < 1:
            raise ConfigError(f"fabric jobs must be >= 1, got {jobs}")
        _config.jobs = jobs
    if not isinstance(cache, _Unset):
        _config.cache = cache
    elif not isinstance(cache_dir, _Unset):
        _config.cache = (
            ResultCache(cache_dir, salt=salt) if cache_dir else None
        )
    if not isinstance(timeout, _Unset):
        if timeout is not None and timeout <= 0:
            raise ConfigError(f"fabric timeout must be > 0, got {timeout}")
        _config.timeout = timeout
    if retries is not None:
        if retries < 0:
            raise ConfigError(f"fabric retries must be >= 0, got {retries}")
        _config.retries = retries
    if backoff is not None:
        if backoff < 0:
            raise ConfigError(f"fabric backoff must be >= 0, got {backoff}")
        _config.backoff = backoff
    if fail_fast is not None:
        _config.fail_fast = fail_fast
    return _config


def current() -> FabricConfig:
    return _config


@dataclass
class RunJob:
    """One engine run as a picklable spec.

    ``workload`` is a dotted path to a factory; called with ``kwargs`` it
    returns either a list of :class:`~repro.sim.program.ThreadSpec` or an
    object with ``build() -> specs`` and (optionally) ``extract(result)``
    returning a picklable payload. ``kwargs`` values must have
    deterministic reprs (they are part of the cache key).
    """

    workload: str
    config: SimConfig
    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str | None = None


@dataclass
class JobOutcome:
    """What one executed (or cache-replayed) job produced."""

    job: RunJob
    result: RunResult
    extra: Any
    records: list[EngineRunRecord]
    wall_seconds: float
    cached: bool = False


@dataclass
class JobFailure:
    """A job that terminally failed (after any retries).

    Appears in :func:`run_many`'s outcome list in place of a
    :class:`JobOutcome` when the fabric runs with ``fail_fast=False``;
    ``kind`` is ``"crash"`` (worker process died), ``"timeout"`` (per-job
    wall budget exceeded; the worker was killed) or ``"error"`` (the job
    raised a Python exception).
    """

    job: RunJob
    error: str
    kind: str
    attempts: int
    wall_seconds: float
    cached: bool = False  #: always False; mirrors JobOutcome for callers

    def as_dict(self) -> dict[str, Any]:
        """Manifest-friendly summary of this failure."""
        return {
            "workload": self.job.workload,
            "label": self.job.label,
            "seed": self.job.config.seed,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
        }


def resolve(path: str) -> Any:
    """Import ``pkg.module.attr`` and return the attribute."""
    module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise ConfigError(f"not a dotted path: {path!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ConfigError(f"{module_name} has no attribute {attr!r}") from None


def _note_lower_version(cache: ResultCache) -> None:
    """Stamp the compiled-tier lowering version in the cache root and warn
    once when it moved. Every ``run`` key folds the version salt, so a
    bump strands prior entries; the structured warning makes the resulting
    cold restart attributable instead of a silent slowdown."""
    from repro.sim.compiled import LOWER_VERSION

    if getattr(cache, "_lower_version_checked", False):
        return
    cache._lower_version_checked = True  # memo per cache instance
    marker = cache.root / "compiled-lower-version"
    current = str(LOWER_VERSION)
    try:
        stamped = marker.read_text().strip()
    except OSError:
        stamped = None
    if stamped == current:
        return
    if stamped is not None:
        warn(
            "compiled-tier lowering version moved "
            f"(cache {cache.root} was stamped v{stamped}, code is "
            f"v{current}): cached run results are invalidated and will "
            "be recomputed"
        )
    try:
        cache.root.mkdir(parents=True, exist_ok=True)
        marker.write_text(current + "\n")
    except OSError:
        pass  # read-only cache: already degraded; nothing to stamp


def job_key(cache: ResultCache, job: RunJob) -> str:
    from repro.sim.compiled import cache_salt

    _note_lower_version(cache)
    return cache.key(
        "run",
        job.workload,
        tuple(sorted(job.kwargs.items())),
        job.config,
        cache_salt(job.config),
    )


def execute_job(
    job: RunJob,
    capture_traces: bool = False,
    window_spec: Any | None = None,
) -> JobOutcome:
    """Run one job in the current process (pool workers land here too).

    ``window_spec`` shapes any windowed observations the workload makes
    (propagated from the ambient collector by :func:`run_many`, so serial
    and pooled runs window identically); the stats travel back on the
    outcome's records and merge exactly into the ambient collector.
    """
    from repro.sim.engine import Engine

    factory = resolve(job.workload)
    started = time.perf_counter()
    trial = factory(**job.kwargs)
    specs = trial.build() if hasattr(trial, "build") else trial

    def fresh_build():
        # Compiled-tier lowering pass: rebuild from the dotted path so the
        # walked objects are throwaways (same rule as the lint gate).
        t = factory(**job.kwargs)
        return t.build() if hasattr(t, "build") else t

    # Trials/workloads whose op streams lower to sub-MIN_BATCH runs (e.g.
    # open-loop request loops) opt out with ``compiled_lower = False``:
    # for them the lowering walk is pure overhead, never a speedup.
    lower = fresh_build if getattr(trial, "compiled_lower", True) else None

    with obs_runtime.collect(
        capture_traces=capture_traces,
        label=job.label or job.workload,
        window_spec=window_spec,
    ) as collector:
        result = Engine(job.config).run(specs, lower=lower)
    extra = trial.extract(result) if hasattr(trial, "extract") else None
    return JobOutcome(
        job=job,
        result=result,
        extra=extra,
        records=collector.records,
        wall_seconds=time.perf_counter() - started,
    )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _child_entry(
    conn, job: RunJob, capture_traces: bool, window_spec: Any | None = None
) -> None:
    """Worker-process entry: run one job, ship the outcome over the pipe."""
    try:
        payload = ("ok", execute_job(job, capture_traces, window_spec))
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        payload = ("error", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    except Exception as exc:  # unpicklable outcome: still report something
        try:
            conn.send(("error", f"job outcome not picklable: {exc}"))
        except Exception:
            pass
    conn.close()


@dataclass
class _Attempt:
    """Book-keeping for one job's journey through the pooled scheduler."""

    index: int
    job: RunJob
    attempts: int = 0
    not_before: float = 0.0  #: monotonic time before which we won't respawn


def _backoff_delay(
    backoff: float,
    attempt: int,
    key: str = "",
    cap: float | None = None,
) -> float:
    """Exponential backoff with deterministic +0–25% jitter.

    The jitter fraction is derived by hashing ``(key, attempt)`` — stable
    across reruns and hosts (so retry schedules are reproducible and
    testable), while distinct jobs in a sweep still desynchronize their
    retries. ``cap`` bounds the delay: with a per-job ``timeout``
    configured, no retry ever waits longer than the job's own wall
    budget, so backoff can never dominate the deadline it serves.
    """
    if backoff <= 0:
        return 0.0
    digest = hashlib.sha256(f"{key}\x00{attempt}".encode("utf-8")).digest()
    frac = int.from_bytes(digest[:8], "little") / 2**64
    delay = backoff * (2 ** (attempt - 1)) * (1.0 + 0.25 * frac)
    if cap is not None:
        delay = min(delay, cap)
    return delay


def _stop_worker(proc) -> None:
    proc.terminate()
    proc.join(timeout=5.0)
    if proc.is_alive():  # pragma: no cover - SIGTERM ignored
        proc.kill()
        proc.join(timeout=5.0)


def _run_pooled(
    pending: list[tuple[int, str | None, RunJob]],
    workers: int,
    capture_traces: bool,
    timeout: float | None,
    retries: int,
    backoff: float,
    fail_fast: bool,
    window_spec: Any | None = None,
) -> dict[int, "JobOutcome | JobFailure"]:
    """Run jobs with one process per job, at most ``workers`` at a time.

    One process per job (rather than a shared executor pool) is what makes
    failure *attribution* exact: a dead or hung worker names precisely the
    job it was running, so one poison job can never take down innocent
    jobs sharing the sweep the way a broken ProcessPoolExecutor does.
    """
    ctx = _mp_context()
    queue: deque[_Attempt] = deque(
        _Attempt(index=i, job=job) for i, _key, job in pending
    )
    running: dict[Any, tuple[Any, _Attempt, float, float | None]] = {}
    results: dict[int, JobOutcome | JobFailure] = {}

    def settle(att: _Attempt, kind: str, error: str, wall: float) -> None:
        """A worker attempt crashed or timed out: retry or finalize."""
        if att.attempts <= retries:
            warn(
                f"fabric job {att.job.label or att.job.workload!r} "
                f"{kind} on attempt {att.attempts} ({error}); retrying"
            )
            att.not_before = time.monotonic() + _backoff_delay(
                backoff,
                att.attempts,
                key=att.job.label or att.job.workload,
                cap=timeout,
            )
            queue.append(att)
            return
        failure = JobFailure(
            job=att.job,
            error=error,
            kind=kind,
            attempts=att.attempts,
            wall_seconds=wall,
        )
        results[att.index] = failure
        if fail_fast:
            raise FabricError(
                f"job {att.job.label or att.job.workload!r} {kind} after "
                f"{att.attempts} attempt(s): {error}"
            )

    try:
        while queue or running:
            now = time.monotonic()
            # Spawn eligible queued attempts into free worker slots.
            for _ in range(len(queue)):
                if len(running) >= workers:
                    break
                att = queue.popleft()
                if att.not_before > now:
                    queue.append(att)  # still backing off; rotate
                    continue
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_entry,
                    args=(send_conn, att.job, capture_traces, window_spec),
                    daemon=True,
                )
                att.attempts += 1
                proc.start()
                send_conn.close()
                deadline = None if timeout is None else now + timeout
                running[recv_conn] = (proc, att, now, deadline)
            if not running:
                time.sleep(0.01)  # every queued attempt is backing off
                continue
            # Reap finished workers (message arrived or pipe closed).
            for conn in mp_connection.wait(list(running), timeout=0.05):
                proc, att, started, _deadline = running.pop(conn)
                wall = time.monotonic() - started
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    msg = None  # died without reporting
                conn.close()
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - wedged post-send
                    _stop_worker(proc)
                if msg is None:
                    settle(
                        att,
                        "crash",
                        f"worker process died (exit code {proc.exitcode})",
                        wall,
                    )
                elif msg[0] == "ok":
                    results[att.index] = msg[1]
                else:
                    # A Python exception is deterministic — no retry.
                    failure = JobFailure(
                        job=att.job,
                        error=msg[1],
                        kind="error",
                        attempts=att.attempts,
                        wall_seconds=wall,
                    )
                    results[att.index] = failure
                    if fail_fast:
                        raise FabricError(
                            f"job {att.job.label or att.job.workload!r} "
                            f"raised: {msg[1]}"
                        )
            # Kill workers past their per-job deadline.
            now = time.monotonic()
            for conn, (proc, att, started, deadline) in list(running.items()):
                if deadline is not None and now > deadline:
                    del running[conn]
                    _stop_worker(proc)
                    conn.close()
                    settle(
                        att,
                        "timeout",
                        "exceeded the per-job timeout of "
                        f"{deadline - started:g}s",
                        now - started,
                    )
    finally:
        for conn, (proc, _att, _started, _deadline) in running.items():
            _stop_worker(proc)
            conn.close()
    return results


def run_many(
    jobs: list[RunJob],
    *,
    jobs_n: int | None = None,
    cache: "ResultCache | None | _Unset" = _UNSET,
    capture_traces: bool | None = None,
    timeout: "float | None | _Unset" = _UNSET,
    retries: int | None = None,
    backoff: float | None = None,
    fail_fast: bool | None = None,
) -> list["JobOutcome | JobFailure"]:
    """Execute a batch of jobs; outcomes come back in submission order.

    Defaults come from :func:`configure`: pool width from ``jobs``, the
    result cache from ``cache``, and the failure policy (``timeout``,
    ``retries``, ``backoff``, ``fail_fast``) from the matching config
    fields. When the ambient collector captures traces, caching is
    bypassed (trace events are host-side artifacts that must reflect a
    real execution) and traces ship back from the workers.

    With ``fail_fast=False``, a job that terminally fails (worker crash,
    timeout, or exception — after any retries) yields a
    :class:`JobFailure` at its slot instead of aborting the sweep; the
    failure is also queued for :func:`drain_failures`. Failures are never
    cached and contribute no records to the ambient collector.
    """
    if jobs_n is None:
        jobs_n = _config.jobs
    if isinstance(cache, _Unset):
        cache = _config.cache
    if isinstance(timeout, _Unset):
        timeout = _config.timeout
    if retries is None:
        retries = _config.retries
    if backoff is None:
        backoff = _config.backoff
    if fail_fast is None:
        fail_fast = _config.fail_fast
    collector = obs_runtime.current()
    if capture_traces is None:
        capture_traces = collector.capture_traces if collector else False
    if capture_traces:
        cache = None
    # Inner collectors window observations identically wherever a job
    # physically runs, so serial and pooled summaries stay bit-identical.
    window_spec = collector.window_spec if collector else None

    # Fail-closed static analysis before anything is dispatched *or served
    # from cache*: the lint verdict must not depend on cache state. Raises
    # LintError naming every hazardous job in the batch.
    from repro.lint import gate as lint_gate

    if lint_gate.active():
        lint_gate.check_jobs(jobs)

    outcomes: list[JobOutcome | JobFailure | None] = [None] * len(jobs)
    pending: list[tuple[int, str | None, RunJob]] = []
    if cache is not None:
        for i, job in enumerate(jobs):
            key = job_key(cache, job)
            hit = cache.get(key)
            if hit is not None:
                hit.cached = True
                outcomes[i] = hit
            else:
                pending.append((i, key, job))
    else:
        pending = [(i, None, job) for i, job in enumerate(jobs)]

    # Pool when parallelism is requested; a single pending job only pays
    # for a worker process when a timeout needs the process boundary.
    use_pool = jobs_n > 1 and (
        len(pending) > 1 or (pending and timeout is not None)
    )
    if use_pool:
        workers = min(jobs_n, len(pending))
        pooled = _run_pooled(
            pending,
            workers,
            capture_traces,
            timeout,
            retries,
            backoff,
            fail_fast,
            window_spec,
        )
        for i, _key, _job in pending:
            outcomes[i] = pooled[i]
    else:
        for i, _key, job in pending:
            started = time.perf_counter()
            try:
                outcomes[i] = execute_job(job, capture_traces, window_spec)
            except Exception as exc:
                if fail_fast:
                    raise
                outcomes[i] = JobFailure(
                    job=job,
                    error=f"{type(exc).__name__}: {exc}",
                    kind="error",
                    attempts=1,
                    wall_seconds=time.perf_counter() - started,
                )

    if cache is not None:
        for i, key, _job in pending:
            outcome = outcomes[i]
            if key is not None and isinstance(outcome, JobOutcome):
                cache.put(key, outcome)

    settled: list[JobOutcome | JobFailure] = []
    for outcome in outcomes:
        if outcome is None:
            raise FabricError("internal error: job outcome slot unfilled")
        if isinstance(outcome, JobFailure):
            _session_failures.append(outcome)
        elif collector is not None:
            collector.merge_records(
                outcome.records, keep_traces=capture_traces
            )
        settled.append(outcome)
    return settled


def run_one(job: RunJob, **kwargs) -> JobOutcome:
    """Convenience wrapper: ``run_many([job])[0]``."""
    return run_many([job], **kwargs)[0]
