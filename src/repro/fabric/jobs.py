"""Picklable run jobs and the process-pool execution fabric.

A :class:`RunJob` names everything one engine run needs — a dotted-path
workload factory, its keyword arguments and a :class:`SimConfig` (which
carries the seed). Because the factory is resolved *inside* the executing
process, session/profiler objects the workload creates live and die with
the run; whatever the caller needs back travels as picklable data:

* ``outcome.result`` — the full :class:`~repro.sim.results.RunResult`;
* ``outcome.extra`` — the factory's optional ``extract(result)`` payload
  (use it to ship tool-side observations such as session read records).

:func:`run_many` executes a batch of jobs — in worker processes when the
fabric is configured with ``jobs > 1``, inline otherwise — consults the
result cache when one is configured, and merges every engine run into the
ambient :mod:`repro.obs` collector so manifests stay correct regardless of
where runs physically executed. Simulation is deterministic, so outcomes
are byte-identical across serial, parallel and cache-hit execution (a
property test enforces this).
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.common.config import SimConfig
from repro.common.errors import ConfigError
from repro.fabric.cache import ResultCache
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import EngineRunRecord
from repro.sim.results import RunResult

_UNSET = object()


@dataclass
class FabricConfig:
    """Process-local execution policy: pool width and result cache."""

    jobs: int = 1
    cache: ResultCache | None = None


_config = FabricConfig()


def configure(
    jobs: int | None = None,
    cache: "ResultCache | None | object" = _UNSET,
    cache_dir: "str | None | object" = _UNSET,
    salt: str | None = None,
) -> FabricConfig:
    """Set the process-wide fabric policy; returns the live config.

    ``cache`` takes a ready :class:`ResultCache` (or None to disable);
    ``cache_dir`` builds one at that path. Passing neither leaves the
    current cache untouched.
    """
    if jobs is not None:
        if jobs < 1:
            raise ConfigError(f"fabric jobs must be >= 1, got {jobs}")
        _config.jobs = jobs
    if cache is not _UNSET:
        _config.cache = cache  # type: ignore[assignment]
    elif cache_dir is not _UNSET:
        _config.cache = (
            ResultCache(cache_dir, salt=salt) if cache_dir else None
        )
    return _config


def current() -> FabricConfig:
    return _config


@dataclass
class RunJob:
    """One engine run as a picklable spec.

    ``workload`` is a dotted path to a factory; called with ``kwargs`` it
    returns either a list of :class:`~repro.sim.program.ThreadSpec` or an
    object with ``build() -> specs`` and (optionally) ``extract(result)``
    returning a picklable payload. ``kwargs`` values must have
    deterministic reprs (they are part of the cache key).
    """

    workload: str
    config: SimConfig
    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str | None = None


@dataclass
class JobOutcome:
    """What one executed (or cache-replayed) job produced."""

    job: RunJob
    result: RunResult
    extra: Any
    records: list[EngineRunRecord]
    wall_seconds: float
    cached: bool = False


def resolve(path: str) -> Any:
    """Import ``pkg.module.attr`` and return the attribute."""
    module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise ConfigError(f"not a dotted path: {path!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ConfigError(f"{module_name} has no attribute {attr!r}") from None


def job_key(cache: ResultCache, job: RunJob) -> str:
    return cache.key(
        "run", job.workload, tuple(sorted(job.kwargs.items())), job.config
    )


def execute_job(job: RunJob, capture_traces: bool = False) -> JobOutcome:
    """Run one job in the current process (pool workers land here too)."""
    from repro.sim.engine import Engine

    factory = resolve(job.workload)
    started = time.perf_counter()
    trial = factory(**job.kwargs)
    specs = trial.build() if hasattr(trial, "build") else trial
    with obs_runtime.collect(
        capture_traces=capture_traces, label=job.label or job.workload
    ) as collector:
        result = Engine(job.config).run(specs)
    extra = trial.extract(result) if hasattr(trial, "extract") else None
    return JobOutcome(
        job=job,
        result=result,
        extra=extra,
        records=collector.records,
        wall_seconds=time.perf_counter() - started,
    )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_many(
    jobs: list[RunJob],
    *,
    jobs_n: int | None = None,
    cache: "ResultCache | None | object" = _UNSET,
    capture_traces: bool | None = None,
) -> list[JobOutcome]:
    """Execute a batch of jobs; outcomes come back in submission order.

    Defaults come from :func:`configure`: pool width from ``jobs`` and the
    result cache from ``cache``. When the ambient collector captures
    traces, caching is bypassed (trace events are host-side artifacts that
    must reflect a real execution) and traces ship back from the workers.
    """
    if jobs_n is None:
        jobs_n = _config.jobs
    if cache is _UNSET:
        cache = _config.cache
    collector = obs_runtime.current()
    if capture_traces is None:
        capture_traces = collector.capture_traces if collector else False
    if capture_traces:
        cache = None

    outcomes: list[JobOutcome | None] = [None] * len(jobs)
    pending: list[tuple[int, str | None, RunJob]] = []
    if cache is not None:
        for i, job in enumerate(jobs):
            key = job_key(cache, job)
            hit = cache.get(key)
            if hit is not None:
                hit.cached = True
                outcomes[i] = hit
            else:
                pending.append((i, key, job))
    else:
        pending = [(i, None, job) for i, job in enumerate(jobs)]

    if len(pending) > 1 and jobs_n > 1:
        workers = min(jobs_n, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        ) as pool:
            futures = [
                (i, key, pool.submit(execute_job, job, capture_traces))
                for i, key, job in pending
            ]
            for i, key, future in futures:
                outcomes[i] = future.result()
    else:
        for i, key, job in pending:
            outcomes[i] = execute_job(job, capture_traces)

    if cache is not None:
        for i, key, _job in pending:
            cache.put(key, outcomes[i])

    if collector is not None:
        for outcome in outcomes:
            collector.merge_records(
                outcome.records, keep_traces=capture_traces
            )
    return outcomes  # type: ignore[return-value]


def run_one(job: RunJob, **kwargs) -> JobOutcome:
    """Convenience wrapper: ``run_many([job])[0]``."""
    return run_many([job], **kwargs)[0]
