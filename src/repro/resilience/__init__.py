"""repro.resilience — deterministic resilience policies for service chains.

Composable, pure-state-machine implementations of the standard overload
defenses — token-bucket admission, queue-depth gates with priority load
shedding, bounded retries with seeded jittered backoff and a global retry
budget, and a count-based circuit breaker with half-open probing. Every
policy is driven exclusively by *simulated* time and seeded randomness, so
runs are bit-reproducible across hosts, process pools and streaming on/off
(the same determinism contract as :mod:`repro.faults`).

:mod:`repro.workloads.service` wires these around a multi-tier request
chain; ``docs/robustness.md`` documents the policy semantics and E20
measures them against the overload schedule.
"""

from repro.resilience.policies import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionGate,
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
    TokenBucket,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "AdmissionGate",
    "CircuitBreaker",
    "RetryBudget",
    "RetryPolicy",
    "TokenBucket",
]
