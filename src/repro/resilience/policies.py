"""Deterministic resilience-policy state machines.

Each policy here is a plain Python object mutated only from workload code
running under the simulated engine, driven by simulated cycle timestamps
(the callers' PMC-derived clocks) and, where randomness is needed, by
:class:`~repro.common.rng.RandomStream` children of the workload seed.
Nothing reads wall time or host identity, so policy decisions — and with
them the whole simulation — are bit-reproducible.

Integer arithmetic throughout: the token bucket accrues micro-tokens with
integer rates (tokens per million cycles), backoff delays are integer
cycles, and the breaker's thresholds are counts. This keeps every decision
an exact function of the cycle stamps it saw, with no float-accumulation
drift across refactors.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.rng import RandomStream

#: Micro-token scale: one admission token = ``_SCALE`` accrual units.
_SCALE = 1_000_000


class TokenBucket:
    """Token-bucket rate limiter over simulated time.

    ``rate_per_mcycle`` is the refill rate in tokens per million cycles
    (integer), ``burst`` the bucket capacity in whole tokens. Refill is
    computed lazily from elapsed simulated cycles with pure integer math:
    ``elapsed * rate_per_mcycle`` micro-tokens, capped at the burst.
    """

    __slots__ = ("rate_per_mcycle", "burst", "_micro", "_last", "taken", "throttled")

    def __init__(self, rate_per_mcycle: int, burst: int, *, start: int = 0) -> None:
        if rate_per_mcycle < 1:
            raise ConfigError("token bucket rate must be >= 1 token/Mcycle")
        if burst < 1:
            raise ConfigError("token bucket burst must be >= 1")
        self.rate_per_mcycle = rate_per_mcycle
        self.burst = burst
        self._micro = burst * _SCALE  # start full
        self._last = start
        self.taken = 0
        self.throttled = 0

    def _refill(self, now: int) -> None:
        if now > self._last:
            self._micro = min(
                self.burst * _SCALE,
                self._micro + (now - self._last) * self.rate_per_mcycle,
            )
            self._last = now

    def try_take(self, now: int) -> bool:
        """Take one token if available at simulated time ``now``."""
        self._refill(now)
        if self._micro >= _SCALE:
            self._micro -= _SCALE
            self.taken += 1
            return True
        self.throttled += 1
        return False


class AdmissionGate:
    """Admission control for one tier: token bucket + queue-depth gate.

    The depth gate implements priority load shedding: priority class ``c``
    (0 = highest) is admitted only while the downstream queue depth is
    below ``depth_thresholds[c]``. Lower classes get lower thresholds, so
    as the queue fills the gate sheds low-priority work first and reserves
    the remaining headroom for high-priority requests — the classic
    criticality-ladder admission controller.

    Either half is optional: ``bucket=None`` disables rate admission,
    ``depth_thresholds=()`` disables the depth gate.
    """

    __slots__ = ("bucket", "depth_thresholds", "shed_throttle", "shed_depth")

    def __init__(
        self,
        bucket: TokenBucket | None = None,
        depth_thresholds: tuple[int, ...] = (),
    ) -> None:
        if any(t < 1 for t in depth_thresholds):
            raise ConfigError("depth thresholds must be >= 1")
        self.bucket = bucket
        self.depth_thresholds = depth_thresholds
        self.shed_throttle = 0
        self.shed_depth = 0

    def admit(self, now: int, depth: int, priority: int) -> str:
        """Decide admission at ``now`` given the downstream queue ``depth``.

        Returns ``"ok"``, ``"throttle"`` (token bucket empty) or
        ``"depth"`` (queue-depth gate shed this priority class).
        """
        if self.depth_thresholds:
            c = min(priority, len(self.depth_thresholds) - 1)
            if depth >= self.depth_thresholds[c]:
                self.shed_depth += 1
                return "depth"
        if self.bucket is not None and not self.bucket.try_take(now):
            self.shed_throttle += 1
            return "throttle"
        return "ok"


class RetryBudget:
    """A global retry budget: retries may consume at most ``percent`` %
    of the calls issued so far (plus a small floor so cold-start failures
    can still retry).

    This is the policy that breaks retry storms: under overload, per-call
    retry caps alone multiply the offered load by the retry factor, which
    is precisely what keeps the system saturated after the original spike
    has passed (retry-storm metastability). A budget bounds the *global*
    retry fraction instead. ``percent=None`` disables the budget —
    the configuration E20's budget-off arm uses to reproduce the storm.
    """

    __slots__ = ("percent", "floor", "calls", "granted", "denied")

    def __init__(self, percent: int | None, *, floor: int = 10) -> None:
        if percent is not None and not 0 <= percent <= 100:
            raise ConfigError("retry budget percent must be in [0, 100]")
        self.percent = percent
        self.floor = floor
        self.calls = 0
        self.granted = 0
        self.denied = 0

    def note_call(self) -> None:
        """Account one first-attempt call (grows the budget)."""
        self.calls += 1

    def allow(self) -> bool:
        """May one more retry be issued? Grants are consumed immediately."""
        if self.percent is None:
            self.granted += 1
            return True
        budget = self.floor + self.calls * self.percent // 100
        if self.granted < budget:
            self.granted += 1
            return True
        self.denied += 1
        return False


class RetryPolicy:
    """Bounded retries with seeded, jittered exponential backoff.

    ``delay(request_id, attempt)`` is a pure function of the seed and its
    arguments: base × 2^(attempt-1), plus up to ``jitter_pct`` % of that
    drawn from a :class:`RandomStream` child keyed by (request, attempt).
    Identical across reruns, process pools, and call order — the property
    tests/fabric/test_failures.py pins for the fabric's analogous backoff.
    """

    __slots__ = ("max_attempts", "backoff_cycles", "jitter_pct", "_rng")

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_cycles: int = 20_000,
        jitter_pct: int = 25,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if backoff_cycles < 0:
            raise ConfigError("backoff_cycles must be >= 0")
        if not 0 <= jitter_pct <= 100:
            raise ConfigError("jitter_pct must be in [0, 100]")
        self.max_attempts = max_attempts
        self.backoff_cycles = backoff_cycles
        self.jitter_pct = jitter_pct
        self._rng = RandomStream(seed, "resilience", "backoff")

    def delay(self, request_id: int, attempt: int) -> int:
        """Backoff before retry ``attempt`` (1-based) of ``request_id``."""
        base = self.backoff_cycles * (1 << (attempt - 1))
        if base <= 0:
            return 0
        jitter_max = base * self.jitter_pct // 100
        if jitter_max <= 0:
            return base
        jitter = self._rng.child(request_id, attempt).randint(0, jitter_max)
        return base + jitter


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Count-based circuit breaker with half-open probing.

    Closed: calls flow; ``failure_threshold`` *consecutive* failures trip
    it open. Open: calls short-circuit for ``cooldown_cycles``. After the
    cooldown the breaker goes half-open and admits up to ``probes`` trial
    calls: any failure re-opens (with a fresh cooldown), while ``probes``
    consecutive successes close it again.
    """

    __slots__ = (
        "failure_threshold",
        "cooldown_cycles",
        "probes",
        "state",
        "_consecutive_failures",
        "_probe_successes",
        "_probes_in_flight",
        "_open_until",
        "opens",
        "short_circuits",
    )

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_cycles: int = 500_000,
        probes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if cooldown_cycles < 1:
            raise ConfigError("cooldown_cycles must be >= 1")
        if probes < 1:
            raise ConfigError("probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_cycles = cooldown_cycles
        self.probes = probes
        self.state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._probes_in_flight = 0
        self._open_until = 0
        self.opens = 0
        self.short_circuits = 0

    def allow(self, now: int) -> bool:
        """May a call proceed at ``now``? (False = short-circuit.)"""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now < self._open_until:
                self.short_circuits += 1
                return False
            self.state = BREAKER_HALF_OPEN
            self._probe_successes = 0
            self._probes_in_flight = 0
        # Half-open: admit at most ``probes`` outstanding trial calls.
        if self._probes_in_flight < self.probes:
            self._probes_in_flight += 1
            return True
        self.short_circuits += 1
        return False

    def record_success(self, now: int) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._probes_in_flight -= 1
            self._probe_successes += 1
            if self._probe_successes >= self.probes:
                self.state = BREAKER_CLOSED
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self, now: int) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self._trip(now)
        elif self.state == BREAKER_CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip(now)

    def _trip(self, now: int) -> None:
        self.state = BREAKER_OPEN
        self._open_until = now + self.cooldown_cycles
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self.opens += 1
