"""The PAPI-like baseline: kernel-mediated precise counter reads.

Mirrors the era's PAPI-C stack: a userspace library call that traps into the
kernel, which collects the virtualized counter values and copies them out.
Precise (the kernel read is atomic) but ~1 us per read — the "heavyweight
kernel interaction" the abstract contrasts LiMiT against.

API-compatible with :class:`repro.core.limit.LimitSession` (setup /
read / read_all / teardown / records), so workloads and instrumented locks
can swap access techniques without changing their code.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.core.limit import LimitSession, ReadRecord, _as_spec
from repro.hw.events import Event, LIBRARY_RATES
from repro.kernel.vpmu import SlotSpec
from repro.sim.ops import Compute, Syscall
from repro.sim.program import ThreadContext


def _papi_spec(entry: Event | SlotSpec, count_kernel: bool) -> SlotSpec:
    spec = _as_spec(entry, count_kernel)
    # PAPI counters live behind the kernel: no user-readable mapping.
    return SlotSpec(
        event=spec.event,
        count_user=spec.count_user,
        count_kernel=spec.count_kernel,
        mode="count",
        owner="papi",
        user_readable=False,
    )


class PapiLikeSession(LimitSession):
    """Precise counting via per-read syscalls (PAPI-class cost)."""

    def __init__(
        self,
        events: Iterable[Event | SlotSpec],
        count_kernel: bool = False,
        name: str = "papi",
    ) -> None:
        super().__init__(events, count_kernel=count_kernel, name=name)
        self.specs = [_papi_spec(s, count_kernel) for s in self.specs]

    def read(self, ctx: ThreadContext, i: int = 0) -> Generator[Any, Any, int]:
        """One kernel-mediated read: library dispatch + syscall."""
        idx = self._slot(ctx, i)
        yield Compute(ctx.costs.papi_user_overhead, LIBRARY_RATES)
        values = yield Syscall("papi_read", ((idx,),))
        value = values[0]
        self._record_kernel_read(ctx, idx, i, value)
        return value

    def read_all(self, ctx: ThreadContext) -> Generator[Any, Any, list[int]]:
        """Read every counter in one syscall (amortized, like
        PAPI_read of a full event set)."""
        indices = tuple(self._indices(ctx))
        yield Compute(ctx.costs.papi_user_overhead, LIBRARY_RATES)
        values = yield Syscall("papi_read", (indices,))
        for i, (idx, value) in enumerate(zip(indices, values)):
            self._record_kernel_read(ctx, idx, i, value)
        return list(values)

    # The userspace protocols make no sense against kernel-only slots.
    def read_safe(self, ctx, i=0):
        raise NotImplementedError("PAPI-like sessions read via the kernel")

    def read_unsafe(self, ctx, i=0):
        raise NotImplementedError("PAPI-like sessions read via the kernel")

    def read_destructive(self, ctx, i=0):
        raise NotImplementedError("PAPI-like sessions read via the kernel")

    def _record_kernel_read(
        self, ctx: ThreadContext, idx: int, i: int, value: int
    ) -> None:
        thread = ctx.thread()
        truth = thread.last_kernel_read_truth.get(idx, 0)
        self.records.append(
            ReadRecord(
                tid=ctx.tid,
                time=ctx.now(),
                slot=idx,
                event=self.specs[i].event,
                value=value,
                truth=truth,
                protocol="papi",
            )
        )
