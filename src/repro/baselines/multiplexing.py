"""Counter multiplexing — how existing interfaces monitor more events than
there are hardware counters, and why the result is an *estimate*.

perf_event (and PAPI on top of it) time-share a physical counter across an
event group, rotating on the scheduler tick, and scale each event's raw
count by total-time / enabled-time. When program phases correlate with the
rotation period, the extrapolation aliases and the estimates are wrong by
large factors. LiMiT refuses to multiplex (allocation fails beyond the
physical counters) precisely to keep reads exact; this module provides the
multiplexed baseline so experiment E13 can quantify the error LiMiT's
refusal avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable

from repro.common.errors import SessionError
from repro.hw.events import Event
from repro.sim.ops import Syscall
from repro.sim.program import ThreadContext


@dataclass(frozen=True)
class MuxEstimate:
    """One event's multiplexed reading."""

    event: Event
    raw_count: int        #: events counted while the slot was live
    enabled_cpu: int      #: cpu cycles the event was live
    total_cpu: int        #: cpu cycles since the group was opened
    truth: int            #: ground truth (engine-side, for scoring)

    @property
    def scaled(self) -> float:
        """The time-extrapolated estimate perf would report."""
        if self.enabled_cpu <= 0:
            return 0.0
        return self.raw_count * (self.total_cpu / self.enabled_cpu)

    @property
    def relative_error(self) -> float:
        if self.truth == 0:
            return 0.0 if self.scaled == 0 else float("inf")
        return abs(self.scaled - self.truth) / self.truth


class MultiplexedSession:
    """Monitor N events on one physical counter via kernel rotation."""

    def __init__(
        self,
        events: Iterable[Event],
        count_kernel: bool = False,
        name: str = "mux",
    ) -> None:
        self.events = list(events)
        if not self.events:
            raise SessionError("a multiplexed session needs events")
        self.count_kernel = count_kernel
        self.name = name
        self.slots: dict[int, int] = {}
        self.estimates: list[MuxEstimate] = []

    def setup(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        if ctx.tid in self.slots:
            raise SessionError(
                f"session {self.name!r} already set up on thread {ctx.tid}"
            )
        idx = yield Syscall(
            "mux_open", (tuple(self.events), True, self.count_kernel)
        )
        self.slots[ctx.tid] = idx

    def teardown(self, ctx: ThreadContext) -> Generator[Any, Any, int]:
        if ctx.tid not in self.slots:
            raise SessionError(
                f"session {self.name!r} not set up on thread {ctx.tid}"
            )
        rotations = yield Syscall("mux_close", ())
        del self.slots[ctx.tid]
        return rotations

    def read_all(self, ctx: ThreadContext) -> Generator[Any, Any, list[MuxEstimate]]:
        """Read the whole group; returns scaled estimates with ground truth
        attached for post-run accuracy scoring."""
        if ctx.tid not in self.slots:
            raise SessionError(
                f"session {self.name!r} not set up on thread {ctx.tid}"
            )
        triples = yield Syscall("mux_read", ())
        truths = ctx.scratch.pop("_mux_truth")
        batch = [
            MuxEstimate(
                event=event,
                raw_count=count,
                enabled_cpu=enabled,
                total_cpu=total,
                truth=truth,
            )
            for event, (count, enabled, total), truth in zip(
                self.events, triples, truths
            )
        ]
        self.estimates.extend(batch)
        return batch

    def worst_relative_error(self) -> float:
        return max((e.relative_error for e in self.estimates), default=0.0)

    def mean_relative_error(self) -> float:
        finite = [
            e.relative_error
            for e in self.estimates
            if e.relative_error != float("inf")
        ]
        return sum(finite) / len(finite) if finite else 0.0
