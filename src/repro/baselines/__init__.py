"""Baseline measurement techniques the paper compares LiMiT against."""

from repro.baselines.instrumenting import FlatProfileEntry, InstrumentingProfiler
from repro.baselines.multiplexing import MultiplexedSession, MuxEstimate
from repro.baselines.papi import PapiLikeSession
from repro.baselines.perf_read import PerfReadSession
from repro.baselines.sampling import RegionEstimate, SamplingProfiler

__all__ = [
    "FlatProfileEntry",
    "InstrumentingProfiler",
    "MultiplexedSession",
    "MuxEstimate",
    "PapiLikeSession",
    "PerfReadSession",
    "RegionEstimate",
    "SamplingProfiler",
]
