"""gprof-class instrumenting profiler.

Attaches entry/exit hooks to every region (function) a thread executes. The
engine charges the hook cost (an mcount-style stub with a timestamp read) on
each RegionBegin/RegionEnd and calls back into the profiler with the
*perturbed* timestamps — so the profiler's flat profile includes its own
overhead, exactly like real instrumentation-based profilers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.common.errors import SessionError
from repro.sim.program import ThreadContext


@dataclass
class FlatProfileEntry:
    """The profiler's view of one region."""

    name: str
    calls: int = 0
    total_cycles: int = 0        #: inclusive wall cycles, as the tool saw them
    _stack_times: dict[int, list[int]] = field(default_factory=dict, repr=False)

    @property
    def mean_cycles(self) -> float:
        return self.total_cycles / self.calls if self.calls else 0.0


class InstrumentingProfiler:
    """Flat profiler driven by region entry/exit hooks (gprof-like)."""

    def __init__(self, name: str = "gprof") -> None:
        self.name = name
        self.entries: dict[str, FlatProfileEntry] = {}
        self.attached_tids: set[int] = set()

    def attach(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        """Attach to the calling thread (must run before its regions).

        Generator for interface symmetry with sessions; attaching itself is
        a link-time property of the binary, so it costs nothing at runtime.
        """
        thread = ctx.thread()
        if thread.profiler is not None:
            raise SessionError(
                f"thread {ctx.tid} already has a profiler attached"
            )
        thread.profiler = self
        self.attached_tids.add(ctx.tid)
        return
        yield  # pragma: no cover - makes this a generator

    def detach(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        thread = ctx.thread()
        if thread.profiler is not self:
            raise SessionError(f"profiler {self.name!r} not attached to {ctx.tid}")
        thread.profiler = None
        self.attached_tids.discard(ctx.tid)
        return
        yield  # pragma: no cover

    # -- engine callbacks (timestamps are post-hook, i.e. perturbed) ---------

    def on_enter(self, tid: int, region: str, now: int) -> None:
        entry = self.entries.get(region)
        if entry is None:
            entry = FlatProfileEntry(name=region)
            self.entries[region] = entry
        entry._stack_times.setdefault(tid, []).append(now)

    def on_exit(self, tid: int, region: str, now: int) -> None:
        entry = self.entries.get(region)
        if entry is None or not entry._stack_times.get(tid):
            # exit without enter: region opened before attach; ignore
            return
        t0 = entry._stack_times[tid].pop()
        entry.calls += 1
        entry.total_cycles += now - t0

    # -- results ---------------------------------------------------------------

    def flat_profile(self) -> list[FlatProfileEntry]:
        """Entries sorted by total time, descending (gprof's flat profile)."""
        return sorted(
            self.entries.values(), key=lambda e: e.total_cycles, reverse=True
        )

    def total_cycles(self, region: str) -> int:
        entry = self.entries.get(region)
        return entry.total_cycles if entry else 0

    def calls(self, region: str) -> int:
        entry = self.entries.get(region)
        return entry.calls if entry else 0
