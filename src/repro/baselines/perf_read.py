"""The perf_event ``read(2)`` baseline: the slowest precise path.

Models the stock-kernel interface the paper's users were stuck with:
``perf_event_open`` once, then a full ``read(2)`` — fd lookup, event
synchronisation, format handling — per value. Precise but several
microseconds per read.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.core.limit import ReadRecord
from repro.common.errors import SessionError
from repro.hw.events import Event
from repro.sim.ops import Syscall
from repro.sim.program import ThreadContext


class PerfReadSession:
    """Counting perf_event fds read via the read(2) syscall."""

    name = "perf_read"

    def __init__(
        self,
        events: Iterable[Event],
        count_kernel: bool = False,
        name: str = "perf_read",
    ) -> None:
        self.name = name
        self.events = list(events)
        if not self.events:
            raise SessionError("a session needs at least one event")
        self.count_kernel = count_kernel
        #: per-thread fd list, same order as events
        self.fds: dict[int, list[int]] = {}
        self.records: list[ReadRecord] = []

    def setup(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        if ctx.tid in self.fds:
            raise SessionError(
                f"session {self.name!r} already set up on thread {ctx.tid}"
            )
        fds = []
        for event in self.events:
            fd = yield Syscall(
                "perf_open", (event, "count", 0, True, self.count_kernel)
            )
            fds.append(fd)
        self.fds[ctx.tid] = fds

    def teardown(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        for fd in self._fds(ctx):
            yield Syscall("perf_close", (fd,))
        del self.fds[ctx.tid]

    def read(self, ctx: ThreadContext, i: int = 0) -> Generator[Any, Any, int]:
        """read(2) on the i-th event's fd."""
        fds = self._fds(ctx)
        if not 0 <= i < len(fds):
            raise SessionError(f"no fd index {i} in session {self.name!r}")
        value = yield Syscall("perf_read", (fds[i],))
        thread = ctx.thread()
        # engine stored the truth under the backing slot; find it via the fd
        engine = ctx._engine
        slot = engine.perf.get(fds[i]).slot
        truth = thread.last_kernel_read_truth.get(slot, 0)
        self.records.append(
            ReadRecord(
                tid=ctx.tid,
                time=ctx.now(),
                slot=slot,
                event=self.events[i],
                value=value,
                truth=truth,
                protocol="perf_read",
            )
        )
        return value

    def read_all(self, ctx: ThreadContext) -> Generator[Any, Any, list[int]]:
        values = []
        for i in range(len(self.events)):
            values.append((yield from self.read(ctx, i)))
        return values

    def errors(self) -> list[int]:
        return [r.error for r in self.records]

    def max_abs_error(self) -> int:
        return max((abs(e) for e in self.errors()), default=0)

    def _fds(self, ctx: ThreadContext) -> list[int]:
        try:
            return self.fds[ctx.tid]
        except KeyError:
            raise SessionError(
                f"session {self.name!r} not set up on thread {ctx.tid}"
            ) from None
