"""Sampling profilers (perf-record / oprofile class).

A :class:`SamplingProfiler` opens a sampling perf fd per thread: the PMU
counter is preloaded so it overflows every ``period`` events, and the PMI
handler records which *region* the thread was in — after interrupt skid.
Cheap when the period is long, but:

* short regions are missed or mis-attributed (skid + quantisation), and
* counts are estimates (``samples x period``), not exact values.

Experiment E3 quantifies both against LiMiT's exact reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.common.errors import SessionError
from repro.hw.events import Event
from repro.kernel.perf import SampleRecord
from repro.sim.ops import Syscall
from repro.sim.program import ThreadContext
from repro.sim.results import RunResult


@dataclass(frozen=True)
class RegionEstimate:
    """A sampling profiler's estimate for one region."""

    region: str | None
    samples: int
    estimated_events: int    #: samples * period


class SamplingProfiler:
    """Overflow-driven statistical profiling of one event."""

    def __init__(
        self,
        event: Event,
        period: int,
        count_kernel: bool = False,
        name: str = "sampler",
    ) -> None:
        if period <= 0:
            raise SessionError(f"sampling period must be positive, got {period}")
        self.event = event
        self.period = period
        self.count_kernel = count_kernel
        self.name = name
        self.fds: dict[int, int] = {}

    def setup(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        if ctx.tid in self.fds:
            raise SessionError(
                f"profiler {self.name!r} already attached to thread {ctx.tid}"
            )
        fd = yield Syscall(
            "perf_open", (self.event, "sample", self.period, True, self.count_kernel)
        )
        self.fds[ctx.tid] = fd

    def teardown(self, ctx: ThreadContext) -> Generator[Any, Any, None]:
        fd = self.fds.pop(ctx.tid, None)
        if fd is None:
            raise SessionError(
                f"profiler {self.name!r} not attached to thread {ctx.tid}"
            )
        yield Syscall("perf_close", (fd,))

    # -- post-run analysis ---------------------------------------------------

    def my_samples(self, result: RunResult) -> list[SampleRecord]:
        fd_set = set(self.fds.values()) | {
            s.fd for s in result.samples if s.event is self.event
        }
        return [
            s
            for s in result.samples
            if s.event is self.event and s.fd in fd_set
        ]

    def estimates(self, result: RunResult) -> dict[str | None, RegionEstimate]:
        """Per-region event estimates: samples attributed x period."""
        counts: dict[str | None, int] = {}
        for sample in self.my_samples(result):
            counts[sample.region] = counts.get(sample.region, 0) + 1
        return {
            region: RegionEstimate(
                region=region,
                samples=n,
                estimated_events=n * self.period,
            )
            for region, n in counts.items()
        }

    def estimate_for(self, result: RunResult, region: str) -> int:
        """Estimated event count for one region (0 if never sampled)."""
        est = self.estimates(result).get(region)
        return est.estimated_events if est else 0

    def relative_error(self, result: RunResult, region: str, truth: int) -> float:
        """|estimate - truth| / truth for one region (inf if truth is 0)."""
        if truth == 0:
            return float("inf")
        return abs(self.estimate_for(result, region) - truth) / truth
