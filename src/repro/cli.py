"""Command-line interface: run a named workload and report on it.

Usage::

    python -m repro run mysql                 # run + text report
    python -m repro run apache --diagnose     # + bottleneck diagnosis
    python -m repro run firefox --json out.json
    python -m repro run pipeline --gantt      # + execution timeline
    python -m repro run mysql --manifest m.json --trace-dir traces/
                                              # + run manifest and
                                              #   Perfetto/JSONL traces
    python -m repro list                      # available workloads
    python -m repro calibrate                 # measure read costs

(Reproducing the paper's tables/figures is a separate entry point:
``python -m repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis import (
    build_timelines,
    describe,
    diagnose,
    render_gantt,
    result_to_json,
    run_report,
)
from repro.common.config import KernelConfig, MachineConfig, SimConfig
from repro.common.units import format_cycles
from repro.sim.engine import run_program


def _workload_catalog():
    from repro.workloads import (
        ApacheConfig,
        ApacheWorkload,
        FirefoxConfig,
        FirefoxWorkload,
        MemcachedConfig,
        MemcachedWorkload,
        MysqlConfig,
        MysqlWorkload,
        PipelineConfig,
        PipelineWorkload,
        SpecSuiteWorkload,
        StreamclusterConfig,
        StreamclusterWorkload,
        TrafficConfig,
        TrafficWorkload,
    )

    return {
        "mysql": lambda scale: MysqlWorkload(
            MysqlConfig(n_workers=8, transactions_per_worker=round(40 * scale))
        ),
        "apache": lambda scale: ApacheWorkload(
            ApacheConfig(n_workers=8, requests_per_worker=round(40 * scale))
        ),
        "firefox": lambda scale: FirefoxWorkload(
            FirefoxConfig(events=round(300 * scale))
        ),
        "memcached": lambda scale: MemcachedWorkload(
            MemcachedConfig(n_workers=8, requests_per_worker=round(100 * scale))
        ),
        "pipeline": lambda scale: PipelineWorkload(
            PipelineConfig(n_compressors=4, n_blocks=round(40 * scale))
        ),
        "spec": lambda scale: SpecSuiteWorkload(scale=scale),
        "streamcluster": lambda scale: StreamclusterWorkload(
            StreamclusterConfig(n_workers=4, n_phases=round(20 * scale))
        ),
        "traffic": lambda scale: TrafficWorkload(
            TrafficConfig(
                n_workers=4, requests_per_worker=max(1, round(400 * scale))
            )
        ),
    }


def build_workload_specs(name: str, scale: float):
    """Thread specs for a catalog workload (fabric job factory)."""
    return _workload_catalog()[name](scale).build()


def _cmd_list(args) -> int:
    for name in sorted(_workload_catalog()):
        print(name)
    return 0


def _cmd_run(args) -> int:
    catalog = _workload_catalog()
    factory = catalog.get(args.workload)
    if factory is None:
        print(
            f"unknown workload {args.workload!r}; try: {', '.join(sorted(catalog))}",
            file=sys.stderr,
        )
        return 2
    from repro.obs import runtime as obs_runtime

    config = SimConfig(
        machine=MachineConfig(n_cores=args.cores, n_sockets=args.sockets),
        kernel=KernelConfig(timeslice_cycles=args.timeslice),
        seed=args.seed,
        trace=args.gantt,
    )
    want_traces = args.trace_dir is not None
    cache = None
    cache_dir = args.cache_dir
    if cache_dir is None and args.cache:
        from repro.fabric import default_cache_dir

        cache_dir = default_cache_dir()
    if args.no_cache:
        cache_dir = None
    # Traces and gantt timelines must come from a real execution.
    if cache_dir and not want_traces and not args.gantt:
        from repro.fabric import ResultCache

        cache = ResultCache(cache_dir)

    cached = False
    started = time.perf_counter()
    with obs_runtime.collect(
        capture_traces=want_traces, label=args.workload
    ) as collector:
        if cache is not None:
            from repro import fabric

            outcome = fabric.run_one(
                fabric.RunJob(
                    workload="repro.cli.build_workload_specs",
                    config=config,
                    kwargs={"name": args.workload, "scale": args.scale},
                    label=args.workload,
                ),
                cache=cache,
            )
            result, cached = outcome.result, outcome.cached
        else:
            result = run_program(factory(args.scale).build(), config)
    wall = time.perf_counter() - started
    result.check_conservation()
    print(run_report(result))
    if args.diagnose:
        print()
        print("bottleneck diagnosis")
        print("====================")
        print(describe(diagnose(result)))
    if args.gantt:
        print()
        print(render_gantt(build_timelines(result), width=args.gantt_width))
    if args.json:
        Path(args.json).write_text(result_to_json(result) + "\n")
        print(f"\n(wrote {args.json})")
    if args.trace_dir:
        from repro.obs.export import events_to_jsonl, write_perfetto

        args.trace_dir.mkdir(parents=True, exist_ok=True)
        perfetto_path = args.trace_dir / f"{args.workload}.trace.json"
        jsonl_path = args.trace_dir / f"{args.workload}.jsonl"
        write_perfetto(perfetto_path, collector.perfetto_runs())
        events_to_jsonl(collector.all_events(), jsonl_path)
        print(f"\n(wrote {perfetto_path} and {jsonl_path})")
    if args.manifest:
        from repro.obs.export import write_manifest

        args.manifest.parent.mkdir(parents=True, exist_ok=True)
        write_manifest(
            args.manifest,
            {
                "workload": args.workload,
                "status": "passed",
                "wall_seconds": wall,
                "engine_runs": collector.n_runs,
                "sim_cycles": collector.sim_cycles,
                "sim_events": collector.sim_events,
                "context_switches": collector.context_switches,
                "config_hash": collector.config_hash(),
                "metrics": collector.metrics_snapshot(),
                "cached": cached,
                "cache": cache.stats.as_dict() if cache is not None else None,
            },
        )
        print(f"(wrote {args.manifest})")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.core.calibration import calibrate

    config = SimConfig(machine=MachineConfig(n_cores=1), seed=args.seed)
    cal = calibrate(config, n_reads=args.reads)
    freq = config.machine.frequency
    print("measured read costs")
    print("===================")
    for label, cycles in [
        ("rdtsc", cal.rdtsc_cycles),
        ("limit", cal.limit_read_cycles),
        ("limit destructive", cal.destructive_read_cycles),
        ("papi-class", cal.papi_read_cycles),
        ("perf read(2)", cal.perf_read_cycles),
    ]:
        print(f"  {label:<18} {format_cycles(cycles, freq)}")
    print(f"  papi/limit ratio   {cal.papi_vs_limit:.1f}x")
    print(f"  perf/limit ratio   {cal.perf_vs_limit:.1f}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="LiMiT reproduction workbench"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list runnable workloads")

    run_p = sub.add_parser("run", help="run a workload and report")
    run_p.add_argument("workload")
    run_p.add_argument("--cores", type=int, default=4)
    run_p.add_argument("--sockets", type=int, default=1,
                       help="split cores across this many sockets")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--scale", type=float, default=1.0,
                       help="workload size multiplier")
    run_p.add_argument("--timeslice", type=int, default=1_000_000)
    run_p.add_argument("--diagnose", action="store_true",
                       help="print the bottleneck diagnosis")
    run_p.add_argument("--gantt", action="store_true",
                       help="trace the run and print a timeline")
    run_p.add_argument("--gantt-width", type=int, default=72)
    run_p.add_argument("--json", metavar="PATH",
                       help="write the full result as JSON")
    run_p.add_argument("--manifest", type=Path, metavar="PATH",
                       help="write a machine-readable run manifest (JSON)")
    run_p.add_argument("--trace-dir", type=Path, metavar="DIR",
                       help="capture a trace; write Perfetto + JSONL files here")
    run_p.add_argument("--cache", action="store_true",
                       help="reuse cached simulation results (default dir)")
    run_p.add_argument("--cache-dir", type=Path, metavar="DIR",
                       help="result cache directory (implies --cache)")
    run_p.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")

    cal_p = sub.add_parser("calibrate", help="measure per-read costs")
    cal_p.add_argument("--reads", type=int, default=2_000)
    cal_p.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
