"""Simulated OS kernel mechanisms: scheduling, futexes, perf, virtualization."""

from repro.kernel.futex import FutexTable
from repro.kernel.locks import LockRegistry, LockState, LockStats
from repro.kernel.perf import PerfFd, PerfSubsystem, SampleRecord
from repro.kernel.scheduler import Scheduler
from repro.kernel.vpmu import SlotSpec, VirtualPmu

__all__ = [
    "FutexTable",
    "LockRegistry",
    "LockState",
    "LockStats",
    "PerfFd",
    "PerfSubsystem",
    "SampleRecord",
    "Scheduler",
    "SlotSpec",
    "VirtualPmu",
]
