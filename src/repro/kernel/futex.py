"""Futex wait queues — the kernel half of userspace mutexes."""

from __future__ import annotations

from collections import deque
from typing import Callable


class FutexTable:
    """Keyed FIFO wait queues, one per futex word (keyed by string here).

    The ``on_wait``/``on_wake`` observability hooks are installed by the
    engine only when tracing is on; an untraced run pays one is-None branch
    per wait/wake (never per cycle).
    """

    def __init__(self) -> None:
        self._queues: dict[str, deque[int]] = {}
        self.total_waits = 0
        self.total_wakes = 0
        #: called as (key, tid) when a thread goes to sleep on a futex
        self.on_wait: Callable[[str, int], None] | None = None
        #: called as (key, woken_tids) when a wake releases >= 1 waiter
        self.on_wake: Callable[[str, list[int]], None] | None = None

    def wait(self, key: str, tid: int) -> None:
        """Enqueue ``tid`` as a waiter on ``key``."""
        self._queues.setdefault(key, deque()).append(tid)
        self.total_waits += 1
        if self.on_wait is not None:
            self.on_wait(key, tid)

    def wake(self, key: str, n: int = 1) -> list[int]:
        """Dequeue up to ``n`` waiters in FIFO order; returns their tids."""
        queue = self._queues.get(key)
        woken: list[int] = []
        while queue and len(woken) < n:
            woken.append(queue.popleft())
        if queue is not None and not queue:
            del self._queues[key]
        self.total_wakes += len(woken)
        if self.on_wake is not None and woken:
            self.on_wake(key, woken)
        return woken

    def remove(self, key: str, tid: int) -> bool:
        """Remove a specific waiter (used if a thread is torn down)."""
        queue = self._queues.get(key)
        if not queue or tid not in queue:
            return False
        queue.remove(tid)
        if not queue:
            del self._queues[key]
        return True

    def n_waiters(self, key: str) -> int:
        return len(self._queues.get(key, ()))

    def waiting_keys(self) -> list[str]:
        return list(self._queues)
