"""Per-thread virtualized PMU state — the heart of the LiMiT kernel patch.

Each thread owns up to ``n`` *virtual counter slots* (n = physical counters).
While the thread is scheduled, each active slot is backed by the physical
counter with the same index; the kernel:

* on switch-in: programs the physical counter and zeroes it,
* on switch-out: folds the physical value into the slot's 64-bit
  accumulator (``vaccum``) and deprograms the counter,
* on overflow PMI of a counting slot: adds 2^W to the accumulator (the
  hardware value has wrapped and keeps counting).

The user-visible virtual value at any instant while running is therefore
``vaccum[i] + hw[i]`` — which is exactly what the LiMiT userspace read
sequence computes, and why it is only correct if not interrupted between the
two loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CounterError
from repro.hw.events import Event


@dataclass(frozen=True)
class SlotSpec:
    """Configuration of one virtual counter slot."""

    event: Event
    count_user: bool = True
    count_kernel: bool = False
    #: 'count' for 64-bit virtualized counting (LiMiT / perf counting mode),
    #: 'sample' for overflow-sampling with a preload period.
    mode: str = "count"
    period: int = 0          #: sampling period in events (mode='sample')
    owner: str = "limit"     #: which facility allocated the slot
    #: whether the slot's accumulator page is mapped user-readable (LiMiT
    #: slots are; perf counting slots require a read() syscall).
    user_readable: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("count", "sample"):
            raise CounterError(f"bad slot mode {self.mode!r}")
        if self.mode == "sample" and self.period <= 0:
            raise CounterError("sampling slots need a positive period")
        if not (self.count_user or self.count_kernel):
            raise CounterError("slot must count at least one domain")


@dataclass
class MuxState:
    """Kernel state of a multiplexed event group on one physical slot.

    Models perf_event's timer-driven rotation: one event of the group is
    live at a time; the others' counts are estimates scaled by
    enabled-time/total-time — the imprecision source LiMiT avoids by
    refusing to multiplex.
    """

    slot: int
    specs: list[SlotSpec]
    truth_base: list[int]
    active: int = 0
    counts: list[int] = None  # type: ignore[assignment]
    enabled_cpu: list[int] = None  # type: ignore[assignment]
    active_since_cpu: int = 0
    total_cpu_base: int = 0
    rotations: int = 0

    def __post_init__(self) -> None:
        if not self.specs:
            raise CounterError("multiplex group needs at least one event")
        if self.counts is None:
            self.counts = [0] * len(self.specs)
        if self.enabled_cpu is None:
            self.enabled_cpu = [0] * len(self.specs)


class VirtualPmu:
    """The virtual counter slots of one thread."""

    def __init__(self, n_slots: int) -> None:
        self.slots: list[SlotSpec | None] = [None] * n_slots
        self.vaccum: list[int] = [0] * n_slots
        #: samples taken per slot (statistics)
        self.sample_counts: list[int] = [0] * n_slots

    def allocate(self, spec: SlotSpec) -> int:
        """Allocate the first free slot; returns its index.

        Raises CounterError when all physical counters are spoken for — the
        model does not multiplex (the paper discusses multiplexing as one of
        the precision problems of existing interfaces, so LiMiT refuses it).
        """
        for i, slot in enumerate(self.slots):
            if slot is None:
                self.slots[i] = spec
                self.vaccum[i] = 0
                self.sample_counts[i] = 0
                return i
        raise CounterError(
            f"no free counter slot (all {len(self.slots)} in use); "
            "the model does not multiplex counters"
        )

    def free(self, index: int) -> None:
        self.spec(index)  # validates
        self.slots[index] = None
        self.vaccum[index] = 0

    def spec(self, index: int) -> SlotSpec:
        if not 0 <= index < len(self.slots):
            raise CounterError(f"bad slot index {index}")
        spec = self.slots[index]
        if spec is None:
            raise CounterError(f"slot {index} is not allocated")
        return spec

    def active_indices(self) -> list[int]:
        return [i for i, s in enumerate(self.slots) if s is not None]

    def n_active(self) -> int:
        return sum(1 for s in self.slots if s is not None)

    def read_accumulator(self, index: int) -> int:
        """The user-page accumulator load (LoadVAccum op semantics)."""
        spec = self.spec(index)
        if not spec.user_readable:
            raise CounterError(
                f"slot {index} accumulator is not mapped user-readable "
                f"(owner={spec.owner})"
            )
        return self.vaccum[index]

    def fold(self, index: int, hw_value: int) -> None:
        """Fold a physical counter value into the slot accumulator — the
        switch-out half of virtualization. A fold of a deprogrammed (zeroed)
        counter is a no-op, which is what makes a duplicated swap benign."""
        self.vaccum[index] += hw_value

    def snapshot(self) -> dict[int, int]:
        """Accumulator values of the allocated slots (tests/diagnostics)."""
        return {
            i: self.vaccum[i]
            for i, s in enumerate(self.slots)
            if s is not None
        }
