"""A perf_event-like kernel subsystem (the baseline interface).

Supports the two modes the paper's baselines use:

* **counting** fds: a 64-bit virtualized count, readable only through the
  (expensive) ``read(2)`` path — this is what PAPI sits on top of;
* **sampling** fds: the counter is preloaded to ``2^W - period`` so it
  overflows every ``period`` events; the PMI handler appends a sample record
  (with skid-affected attribution) to the fd's buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import SessionError
from repro.hw.events import Event


@dataclass(frozen=True)
class SampleRecord:
    """One sample taken by a sampling fd's overflow interrupt."""

    time: int          #: PMI delivery time (includes skid)
    tid: int
    region: str | None  #: innermost region at *delivery* time (skidded)
    event: Event
    fd: int


@dataclass
class PerfFd:
    """One open perf_event file descriptor."""

    fd: int
    tid: int           #: monitored thread (self-monitoring only, like LiMiT)
    slot: int          #: virtual PMU slot backing this fd
    event: Event
    mode: str          #: 'count' | 'sample'
    period: int = 0
    enabled: bool = True
    samples: list[SampleRecord] = field(default_factory=list)
    n_overflows: int = 0


class PerfSubsystem:
    """fd table + sample buffers."""

    def __init__(self) -> None:
        self._fds: dict[int, PerfFd] = {}
        self._closed: list[PerfFd] = []
        self._next_fd = 3  # 0/1/2 are taken, obviously
        self.total_samples = 0
        #: observability hook: called as (fd, record) for every sample taken.
        #: Installed by the engine only when tracing.
        self.on_sample: Callable[[PerfFd, SampleRecord], None] | None = None

    def open(self, tid: int, slot: int, event: Event, mode: str, period: int) -> PerfFd:
        fd = PerfFd(
            fd=self._next_fd, tid=tid, slot=slot, event=event, mode=mode, period=period
        )
        self._fds[fd.fd] = fd
        self._next_fd += 1
        return fd

    def get(self, fd: int) -> PerfFd:
        try:
            return self._fds[fd]
        except KeyError:
            raise SessionError(f"bad perf fd: {fd}") from None

    def close(self, fd: int) -> PerfFd:
        """Close an fd. Its sample buffer is retained (the profiler read it
        out before closing, as perf userspace does with the mmap ring)."""
        try:
            closed = self._fds.pop(fd)
        except KeyError:
            raise SessionError(f"closing unknown perf fd: {fd}") from None
        closed.enabled = False
        self._closed.append(closed)
        return closed

    def fd_for_slot(self, tid: int, slot: int) -> PerfFd | None:
        for fd in self._fds.values():
            if fd.tid == tid and fd.slot == slot:
                return fd
        return None

    def record_sample(self, fd: PerfFd, record: SampleRecord) -> None:
        fd.samples.append(record)
        fd.n_overflows += 1
        self.total_samples += 1
        if self.on_sample is not None:
            self.on_sample(fd, record)

    def all_samples(self) -> list[SampleRecord]:
        out: list[SampleRecord] = []
        for fd in self._fds.values():
            out.extend(fd.samples)
        for fd in self._closed:
            out.extend(fd.samples)
        out.sort(key=lambda s: (s.time, s.tid, s.fd))
        return out
