"""Per-core run queues with idle-first placement and work stealing.

A deliberately simple, deterministic O(n)-ish scheduler: round-robin within
a core's queue, new/woken threads placed on an idle core when one exists
(CFS's select_idle_sibling in spirit), and an idle core steals from the
longest other queue. Timeslice policy (preempt-at-slice-end) lives in the
engine; this module only answers "where does this thread go" and "what runs
next here".
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.common.errors import SchedulerError


class Scheduler:
    def __init__(self, n_cores: int, socket_of: list[int] | None = None) -> None:
        if n_cores < 1:
            raise SchedulerError("scheduler needs at least one core")
        self.n_cores = n_cores
        #: socket id per core; defaults to a single socket
        self.socket_of = socket_of or [0] * n_cores
        if len(self.socket_of) != n_cores:
            raise SchedulerError("socket_of must cover every core")
        self.runqueues: list[deque[int]] = [deque() for _ in range(n_cores)]
        self._rr_next = 0
        self.n_enqueues = 0
        self.n_steals = 0
        #: observability hook: called as (thief_core, victim_core, tid) when
        #: a steal happens. Installed by the engine only when tracing, so an
        #: untraced run pays one is-None branch per steal.
        self.on_steal: Callable[[int, int, int], None] | None = None

    def queue_length(self, core_id: int) -> int:
        return len(self.runqueues[core_id])

    def total_queued(self) -> int:
        return sum(len(q) for q in self.runqueues)

    def place(self, preferred_core: int | None, idle_cores: list[int]) -> int:
        """Choose the core for a new/woken thread.

        Prefer the thread's own idle core, then an idle core on the same
        socket (warm LLC), then any idle core (lowest id for determinism);
        otherwise the thread's previous core for cache affinity; otherwise
        round-robin.
        """
        if idle_cores:
            if preferred_core in idle_cores:
                return preferred_core
            if preferred_core is not None:
                socket = self.socket_of[preferred_core]
                same_socket = [
                    c for c in idle_cores if self.socket_of[c] == socket
                ]
                if same_socket:
                    return min(same_socket)
            return min(idle_cores)
        if preferred_core is not None:
            return preferred_core
        core = self._rr_next
        self._rr_next = (self._rr_next + 1) % self.n_cores
        return core

    def enqueue(self, tid: int, core_id: int) -> None:
        if not 0 <= core_id < self.n_cores:
            raise SchedulerError(f"bad core id {core_id}")
        self.runqueues[core_id].append(tid)
        self.n_enqueues += 1

    def requeue_front(self, tid: int, core_id: int) -> None:
        """Requeue at the *head* of the core's queue (fault-injection storms:
        the preempted victim resumes immediately after the forced switch, so
        a storm perturbs the read protocol without reordering the rest of the
        schedule)."""
        if not 0 <= core_id < self.n_cores:
            raise SchedulerError(f"bad core id {core_id}")
        self.runqueues[core_id].appendleft(tid)
        self.n_enqueues += 1

    def pick_next(self, core_id: int) -> int | None:
        """Pop the next thread for this core, stealing if the local queue is
        empty. Returns None when there is truly nothing to run."""
        queue = self.runqueues[core_id]
        if queue:
            return queue.popleft()
        victim = self._steal_victim(core_id)
        if victim is None:
            return None
        self.n_steals += 1
        tid = self.runqueues[victim].popleft()
        if self.on_steal is not None:
            self.on_steal(core_id, victim, tid)
        return tid

    def _steal_victim(self, thief: int) -> int | None:
        """Busiest other queue, preferring victims on the thief's socket
        so stolen threads avoid cross-socket migrations when possible."""
        thief_socket = self.socket_of[thief]
        best: int | None = None
        best_key = (False, 0)  # (same socket, queue length)
        for core_id, queue in enumerate(self.runqueues):
            if core_id == thief or not queue:
                continue
            key = (self.socket_of[core_id] == thief_socket, len(queue))
            if best is None or key > best_key:
                best, best_key = core_id, key
        return best

    def remove(self, tid: int) -> bool:
        """Remove a thread from whatever queue holds it (teardown paths)."""
        for queue in self.runqueues:
            if tid in queue:
                queue.remove(tid)
                return True
        return False
