"""Userspace mutex state plus exact ground-truth synchronization statistics.

The engine executes the spin-then-futex protocol; this module holds the lock
word state and records, with perfect knowledge, every acquisition's wait and
hold time. Measurement tools (LiMiT-instrumented locks, PAPI-instrumented
locks) *estimate* these quantities in-band; the case-study experiments
compare tool estimates and perturbation against this ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import LockProtocolError


@dataclass
class LockStats:
    """Ground-truth statistics of one lock."""

    n_acquires: int = 0
    n_contended: int = 0          #: acquisitions that had to wait at all
    n_futex_sleeps: int = 0       #: acquisitions that fell back to futex
    hold_cycles: list[int] = field(default_factory=list)
    wait_cycles: list[int] = field(default_factory=list)

    @property
    def total_hold(self) -> int:
        return sum(self.hold_cycles)

    @property
    def total_wait(self) -> int:
        return sum(self.wait_cycles)

    @property
    def contention_rate(self) -> float:
        return self.n_contended / self.n_acquires if self.n_acquires else 0.0

    @property
    def mean_hold(self) -> float:
        return self.total_hold / len(self.hold_cycles) if self.hold_cycles else 0.0

    @property
    def mean_wait(self) -> float:
        return self.total_wait / len(self.wait_cycles) if self.wait_cycles else 0.0


class LockState:
    """One userspace mutex (a futex-backed lock word)."""

    __slots__ = ("name", "owner", "acquired_at", "n_sleepers", "stats")

    def __init__(self, name: str) -> None:
        self.name = name
        self.owner: int | None = None
        self.acquired_at = 0
        self.n_sleepers = 0    #: threads blocked in futex_wait on this lock
        self.stats = LockStats()

    @property
    def held(self) -> bool:
        return self.owner is not None

    def take(self, tid: int, now: int, waited: int, contended: bool, slept: bool) -> None:
        """Transfer ownership to ``tid`` (engine calls this atomically)."""
        if self.owner is not None:
            raise LockProtocolError(
                f"lock {self.name!r} taken by {tid} while owned by {self.owner}"
            )
        self.owner = tid
        self.acquired_at = now
        self.stats.n_acquires += 1
        self.stats.wait_cycles.append(waited)
        if contended:
            self.stats.n_contended += 1
        if slept:
            self.stats.n_futex_sleeps += 1

    def release(self, tid: int, now: int) -> int:
        """Release ownership; returns the hold time in cycles."""
        if self.owner != tid:
            raise LockProtocolError(
                f"thread {tid} released lock {self.name!r} owned by {self.owner}"
            )
        hold = now - self.acquired_at
        self.owner = None
        self.stats.hold_cycles.append(hold)
        return hold


class LockRegistry:
    """All locks in one simulation, created on first use."""

    def __init__(self) -> None:
        self._locks: dict[str, LockState] = {}

    def get(self, name: str) -> LockState:
        lock = self._locks.get(name)
        if lock is None:
            lock = LockState(name)
            self._locks[name] = lock
        return lock

    def all_locks(self) -> dict[str, LockState]:
        return dict(self._locks)

    def stats(self) -> dict[str, LockStats]:
        return {name: lock.stats for name, lock in self._locks.items()}
