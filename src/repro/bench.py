"""Tracked performance baseline: ``python -m repro.bench``.

Measures the workloads the perf-sensitive subsystems are judged on and
writes the results as ``BENCH_PR9.json`` (schema ``repro.bench/v1``,
documented in docs/performance.md):

* **contention microbench** — two threads on two cores alternating long
  solo compute stretches (many scheduler quanta: the macro-stepping sweet
  spot) with short critical sections on a shared lock and a LiMiT counter
  read per iteration. Run twice in-process — macro-stepping on and off —
  so the reported speedup is a same-machine, same-process A/B ratio.
* **experiment sweep** — every registered experiment in quick mode, timed
  per experiment, with the engines' fast-path telemetry (macro-step hit
  rate, batched quanta, composite fast reads, bailouts) aggregated from
  the run collector.
* **streaming observability A/B** — the open-loop traffic workload run
  twice in-process, once bare and once under a windowed collector with a
  live JSONL stream export *and* a registered SLO burn-rate alert
  (evaluated over the merged windows, as the manifest path does), so the
  reported streaming overhead is a same-machine ratio that includes the
  alerting layer. Fingerprints must match (zero perturbation) and the
  overhead must stay under :data:`STREAM_OVERHEAD_MAX`.

``--check BASELINE.json`` is the CI regression gate. Wall-clock seconds are
not comparable across machines, so the gate compares machine-independent
quantities against the committed baseline: the deterministic sweep piece
count (``sim_events`` — un-fusing ops or losing a fast path inflates it),
the sweep macro and compiled-segment hit rates, and the microbench on/off
speedup (a ratio of two runs on the *same* host). Any of them regressing
by more than
``--threshold`` (default 25%) fails the check, as does same-host
streaming overhead above the absolute :data:`STREAM_OVERHEAD_MAX` cap or
a fresh sweep compiled hit rate below the absolute
:data:`COMPILED_HIT_MIN` floor.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.common.config import KernelConfig, MachineConfig, SimConfig
from repro.core.limit import LimitSession
from repro.experiments.base import result_sharing
from repro.hw.events import Event
from repro.obs import runtime as obs_runtime
from repro.sim.engine import run_program
from repro.sim.ops import Compute, LockAcquire, LockRelease
from repro.sim.program import ThreadSpec
from repro.workloads.base import COMPUTE_RATES

SCHEMA = "repro.bench/v1"
DEFAULT_OUT = "BENCH_PR9.json"

#: Hard cap on the streaming-observability overhead ratio (same-host A/B).
STREAM_OVERHEAD_MAX = 0.05

#: Absolute floor on the fresh sweep compiled-segment hit rate. PR 7's
#: tier measured 0.512 on the quick sweep; the PR 8 lock-pair/safe-read/
#: fork lowering lifted it to ~0.80, so 0.65 keeps real headroom over the
#: old baseline while tolerating workload drift.
COMPILED_HIT_MIN = 0.65

#: Microbench shape: the two threads alternate long critical sections on a
#: shared lock. While one computes for many scheduler quanta, the other is
#: blocked on the futex and its core parks — the running thread is the sole
#: runnable on its core with no near actor, exactly the macro-stepping fast
#: path's case. The short parallel stretch before each acquire keeps the
#: lock genuinely contended (spin, futex sleep, cross-core wake) every
#: iteration, and the in-section LiMiT read exercises the composite read.
MICRO_COMPUTE = 20_000_000
MICRO_PARALLEL = 50_000
MICRO_ITERS = 800
MICRO_ITERS_QUICK = 200


def _micro_specs(session: LimitSession, iters: int) -> list[ThreadSpec]:
    def worker(ctx):
        yield from session.setup(ctx)
        for _ in range(iters):
            yield Compute(MICRO_PARALLEL, COMPUTE_RATES)
            yield LockAcquire("bench:hot")
            yield Compute(MICRO_COMPUTE, COMPUTE_RATES)
            value = yield from session.read(ctx, 0)
            assert value >= 0
            yield LockRelease("bench:hot")

    return [ThreadSpec(f"bench:{i}", worker) for i in range(2)]


def _run_micro(iters: int, macro: bool) -> dict:
    config = SimConfig(
        machine=MachineConfig(n_cores=2),
        kernel=KernelConfig(timeslice_cycles=1_000_000),
        seed=7,
        macro_stepping=macro,
    )
    session = LimitSession(
        [Event.CYCLES, Event.INSTRUCTIONS], name=f"bench:{macro}"
    )
    started = time.perf_counter()
    with obs_runtime.collect(label="bench-micro") as collector:
        result = run_program(_micro_specs(session, iters), config)
    wall = time.perf_counter() - started
    summary = collector.macro_summary()
    return {
        "wall_seconds": wall,
        "sim_events": collector.sim_events,
        "fingerprint": result.fingerprint(),
        **summary,
    }


def run_microbench(quick: bool) -> dict:
    """Contention microbench, macro-stepping on vs off (same process)."""
    iters = MICRO_ITERS_QUICK if quick else MICRO_ITERS
    off = _run_micro(iters, macro=False)
    on = _run_micro(iters, macro=True)
    if on["fingerprint"] != off["fingerprint"]:  # pragma: no cover - invariant
        raise RuntimeError(
            "macro-stepping changed the microbench fingerprint "
            f"({on['fingerprint']} != {off['fingerprint']})"
        )
    return {
        "iters_per_thread": iters,
        "compute_cycles": MICRO_COMPUTE,
        "macro_on": {k: v for k, v in on.items() if k != "fingerprint"},
        "macro_off": {k: v for k, v in off.items() if k != "fingerprint"},
        "fingerprint": on["fingerprint"],
        "speedup": off["wall_seconds"] / on["wall_seconds"]
        if on["wall_seconds"] > 0
        else 0.0,
    }


def run_sweep(quick: bool) -> dict:
    """Every registered experiment, timed, with fast-path telemetry."""
    from repro.experiments.registry import all_experiments

    def _total(records, key):
        return sum(r.metrics.get(key, 0) for r in records)

    experiments: dict[str, dict] = {}
    total_started = time.perf_counter()
    with result_sharing(), obs_runtime.collect(label="bench-sweep") as collector:
        for entry in all_experiments():
            n_before = len(collector.records)
            started = time.perf_counter()
            entry.run(quick=quick)
            sub = collector.records[n_before:]
            quanta = _total(sub, "quanta_batched")
            ticks = _total(sub, "timer_ticks")
            compiled_ops = _total(sub, "compiled_ops")
            # Hit-rate denominator: ops fetched by runs that lowered tables
            # (mirrors RunCollector.compiled_summary — opt-out workloads
            # must not dilute the rate of the runs the tier serves).
            fetched = sum(
                r.metrics.get("ops_fetched", 0)
                for r in sub
                if r.metrics.get("compiled_tables", 0) > 0
            )
            experiments[entry.exp_id] = {
                "wall_seconds": time.perf_counter() - started,
                "sim_events": sum(r.sim_events for r in sub),
                "macro_steps": _total(sub, "macro_steps"),
                "macro_hit_rate": quanta / ticks if ticks else 0.0,
                "compiled_segments": _total(sub, "compiled_segments"),
                "compiled_hit_rate": (
                    compiled_ops / fetched if fetched else 0.0
                ),
            }
    wall = time.perf_counter() - total_started
    snap = collector.metrics_snapshot()
    return {
        "wall_seconds": wall,
        "sim_events": collector.sim_events,
        "pieces_per_sec": collector.sim_events / wall if wall > 0 else 0.0,
        "macro_steps": snap["macro_steps"],
        "quanta_batched": snap["quanta_batched"],
        "macro_hit_rate": snap["macro_hit_rate"],
        "fast_reads": snap["fast_reads"],
        "fastpath_bailouts": snap["fastpath_bailouts"],
        "compiled_runs": snap["compiled_runs"],
        "compiled_segments": snap["compiled_segments"],
        "compiled_ops": snap["compiled_ops"],
        "compiled_hit_rate": snap["compiled_hit_rate"],
        "bailouts": collector.bailouts_by_reason(),
        "experiments": experiments,
    }


STREAM_REQUESTS = 10_000
STREAM_REQUESTS_QUICK = 1_500
#: Paired repetitions of the A/B; the reported overhead is the median of
#: the per-pair on/off ratios, which strips host scheduling noise from
#: the short runs (the true recording cost is well under 1%, so the gate
#: is effectively a noise-robust regression tripwire).
STREAM_REPEATS = 9


def _run_traffic(requests: int, streaming: bool) -> dict:
    import tempfile

    from repro.obs.alerts import SloSpec
    from repro.obs.export import JsonlStreamWriter
    from repro.obs.windows import WindowSpec
    from repro.workloads.traffic import LATENCY_STREAM, TrafficConfig, TrafficWorkload

    config = SimConfig(
        machine=MachineConfig(n_cores=4),
        kernel=KernelConfig(timeslice_cycles=1_000_000),
        seed=19,
    )
    workload = TrafficWorkload(
        TrafficConfig(n_workers=4, requests_per_worker=requests)
    )
    if streaming:
        with tempfile.TemporaryDirectory() as tmp:
            writer = JsonlStreamWriter(
                Path(tmp) / "bench", label="bench", spec=WindowSpec()
            )
            started = time.perf_counter()
            with obs_runtime.collect(
                label="bench-stream",
                window_spec=WindowSpec(),
                stream=writer,
            ) as collector:
                # The manifest path registers SLOs and evaluates them over
                # the merged windows; the streaming arm pays that cost too
                # so the overhead gate covers the alerting layer.
                obs_runtime.register_alert_spec(
                    SloSpec(
                        name="bench-slo",
                        stream=f"{LATENCY_STREAM}.constant",
                        threshold_cycles=1_000_000,
                        objective=0.95,
                    )
                )
                result = run_program(workload.build(), config)
            writer.close(summary=collector.windows_summary())
            alerts = collector.alerts_summary()
            wall = time.perf_counter() - started
            n_windows = writer.n_windows
            n_alerts = alerts["fired"] if alerts else 0
    else:
        started = time.perf_counter()
        result = run_program(workload.build(), config)
        wall = time.perf_counter() - started
        n_windows = 0
        n_alerts = 0
    return {
        "wall_seconds": wall,
        "n_windows": n_windows,
        "n_alerts": n_alerts,
        "fingerprint": result.fingerprint(),
    }


def run_streaming_overhead(quick: bool) -> dict:
    """Traffic workload bare vs under a live windowed stream export.

    Each repetition runs both arms back to back (alternating which goes
    first, so slow thermal/boost drift cancels instead of taxing one arm)
    and yields one on/off wall-time ratio; the reported overhead is the
    *median* of those per-repetition ratios, which a single host hiccup
    in either arm cannot move. The runs are deterministic, so every
    repetition compares the same work on both sides.
    """
    import statistics

    requests = STREAM_REQUESTS_QUICK if quick else STREAM_REQUESTS
    offs, ons, ratios = [], [], []
    for rep in range(STREAM_REPEATS):
        order = (False, True) if rep % 2 == 0 else (True, False)
        pair = {}
        for streaming in order:
            run = _run_traffic(requests, streaming)
            pair[streaming] = run
            (ons if streaming else offs).append(run)
        ratios.append(
            pair[True]["wall_seconds"] / pair[False]["wall_seconds"]
        )
    off = min(offs, key=lambda r: r["wall_seconds"])
    on = min(ons, key=lambda r: r["wall_seconds"])
    fingerprints = {r["fingerprint"] for r in offs + ons}
    if len(fingerprints) != 1:  # pragma: no cover - invariant
        raise RuntimeError(
            "streaming observation changed the traffic fingerprint "
            f"({sorted(fingerprints)})"
        )
    overhead = statistics.median(ratios) - 1.0
    return {
        "requests": requests * 4,
        "repeats": STREAM_REPEATS,
        "streaming_on": {
            k: v for k, v in on.items() if k != "fingerprint"
        },
        "streaming_off": {
            k: v for k, v in off.items() if k != "fingerprint"
        },
        "fingerprint": on["fingerprint"],
        "overhead": overhead,
    }


def measure(quick: bool) -> dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "microbench": run_microbench(quick),
        "sweep": run_sweep(quick),
        "streaming": run_streaming_overhead(quick),
    }


def check(current: dict, baseline: dict, threshold: float, out) -> int:
    """Compare a fresh measurement against the committed baseline using
    machine-independent quantities; returns a process exit code."""
    failures: list[str] = []

    def gate(label: str, fresh: float, committed: float, higher_is_better: bool):
        if committed <= 0:
            return
        ratio = fresh / committed
        regressed = (
            ratio < 1 - threshold if higher_is_better else ratio > 1 + threshold
        )
        status = "FAIL" if regressed else "ok"
        print(
            f"  [{status}] {label}: {fresh:.4g} vs baseline "
            f"{committed:.4g} ({ratio:.2f}x)",
            file=out,
        )
        if regressed:
            failures.append(label)

    print(f"regression check (threshold {threshold:.0%}):", file=out)
    gate(
        "sweep sim_events (deterministic piece count)",
        current["sweep"]["sim_events"],
        baseline["sweep"]["sim_events"],
        higher_is_better=False,
    )
    gate(
        "sweep macro_hit_rate",
        current["sweep"]["macro_hit_rate"],
        baseline["sweep"]["macro_hit_rate"],
        higher_is_better=True,
    )
    if "compiled_hit_rate" in baseline["sweep"]:
        # Baselines from before the compiled tier existed lack the key;
        # gate() skips zero baselines, this skips absent ones explicitly.
        gate(
            "sweep compiled_hit_rate",
            current["sweep"]["compiled_hit_rate"],
            baseline["sweep"]["compiled_hit_rate"],
            higher_is_better=True,
        )
    compiled_rate = current["sweep"].get("compiled_hit_rate", 0.0)
    floor_ok = compiled_rate >= COMPILED_HIT_MIN
    print(
        f"  [{'ok' if floor_ok else 'FAIL'}] sweep compiled_hit_rate "
        f"floor: {compiled_rate:.1%} (min {COMPILED_HIT_MIN:.0%})",
        file=out,
    )
    if not floor_ok:
        failures.append("sweep compiled_hit_rate floor")
    gate(
        "microbench speedup (macro off/on, same host)",
        current["microbench"]["speedup"],
        baseline["microbench"]["speedup"],
        higher_is_better=True,
    )
    streaming = current.get("streaming")
    if streaming is not None:
        # Absolute same-host cap, independent of the committed baseline.
        overhead = streaming["overhead"]
        ok = overhead <= STREAM_OVERHEAD_MAX
        print(
            f"  [{'ok' if ok else 'FAIL'}] streaming obs overhead: "
            f"{overhead:+.1%} (cap {STREAM_OVERHEAD_MAX:.0%})",
            file=out,
        )
        if not ok:
            failures.append("streaming obs overhead")
    if failures:
        print(f"REGRESSED: {', '.join(failures)}", file=out)
        return 1
    print("no perf regression vs baseline", file=out)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=f"Measure the tracked perf baseline ({DEFAULT_OUT}).",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized parameters"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help=f"write the measurement JSON here (default: {DEFAULT_OUT}; "
        "with --check, nothing is written unless --out is given)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline; non-zero exit on "
        "regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional regression for --check (default: 0.25)",
    )
    parser.add_argument(
        "--baseline-note",
        type=str,
        default=None,
        help="free-form provenance note recorded in the output JSON "
        "(e.g. pre-change sweep wall time measured with the same harness)",
    )
    args = parser.parse_args(argv)

    current = measure(quick=args.quick)
    if args.baseline_note:
        current["baseline_note"] = args.baseline_note

    micro = current["microbench"]
    sweep = current["sweep"]
    print(
        f"microbench: macro on {micro['macro_on']['wall_seconds']:.3f}s, "
        f"off {micro['macro_off']['wall_seconds']:.3f}s -> "
        f"{micro['speedup']:.2f}x"
    )
    print(
        f"sweep: {sweep['wall_seconds']:.2f}s, "
        f"{sweep['sim_events']:,} pieces "
        f"({sweep['pieces_per_sec']:,.0f}/s), "
        f"macro hit rate {sweep['macro_hit_rate']:.1%}, "
        f"compiled hit rate {sweep['compiled_hit_rate']:.1%} "
        f"({sweep['compiled_segments']:,.0f} segments), "
        f"{sweep['fast_reads']:,.0f} fast reads"
    )
    streaming = current["streaming"]
    print(
        f"streaming: {streaming['requests']:,} requests, on "
        f"{streaming['streaming_on']['wall_seconds']:.3f}s vs off "
        f"{streaming['streaming_off']['wall_seconds']:.3f}s -> "
        f"{streaming['overhead']:+.1%} overhead "
        f"({streaming['streaming_on']['n_windows']} windows streamed)"
    )

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        code = check(current, baseline, args.threshold, sys.stdout)
    else:
        code = 0

    out_path = args.out
    if out_path is None and args.check is None:
        out_path = Path(DEFAULT_OUT)
    if out_path is not None:
        out_path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path}")
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
