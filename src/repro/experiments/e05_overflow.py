"""E5 — Figure: overflow-interrupt pressure vs hardware counter width.

Narrow counters force the kernel to take an overflow PMI every 2^W events
to maintain the 64-bit virtual value. This sweep quantifies the PMI rate
and the runtime overhead as a function of width — the motivation for the
paper's first proposed hardware enhancement (full 64-bit counters, E11a).
"""

from __future__ import annotations

from repro.common.tables import render_table
from repro.core.limit import LimitSession
from repro.experiments.base import ExperimentResult, single_core_config
from repro.hw.events import Event, EventRates
from repro.sim.engine import run_program
from repro.sim.ops import Compute
from repro.sim.program import ThreadSpec

EXP_ID = "E5"
TITLE = "Overflow PMIs vs counter width (Figure)"
PAPER_CLAIM = (
    "software 64-bit virtualization of narrow hardware counters costs one "
    "PMI per 2^W events; wide architectural counters would eliminate the "
    "overflow machinery entirely"
)

#: high event-rate workload: 2 instructions per cycle
HOT_RATES = EventRates.profile(ipc=2.0)


def _workload(session, total_cycles: int):
    def program(ctx):
        yield from session.setup(ctx)
        done = 0
        chunk = 1_000_000
        while done < total_cycles:
            c = min(chunk, total_cycles - done)
            yield Compute(c, HOT_RATES)
            done += c
        value = yield from session.read(ctx, 0)
        ctx.scratch["final"] = value

    return [ThreadSpec("hot", program)]


def run(quick: bool = False) -> ExperimentResult:
    total_cycles = 5_000_000 if quick else 40_000_000
    widths = [16, 20, 24, 32] if quick else [16, 18, 20, 24, 28, 32, 48]

    # wide-counter reference (enhancement E11a): no overflow possible
    wide_config = single_core_config(seed=55).with_pmu(wide_counters=True)
    wide_session = LimitSession([Event.INSTRUCTIONS], name="wide")
    wide_result = run_program(_workload(wide_session, total_cycles), wide_config)
    wide_result.check_conservation()
    wide_wall = wide_result.wall_cycles

    rows = []
    overhead_at_16 = 0.0
    for width in widths:
        config = single_core_config(seed=55).with_pmu(counter_width=width)
        session = LimitSession([Event.INSTRUCTIONS], name=f"w{width}")
        result = run_program(_workload(session, total_cycles), config)
        result.check_conservation()
        overhead = result.wall_cycles / wide_wall - 1.0
        if width == 16:
            overhead_at_16 = overhead
        # the virtualized value must stay exact regardless of width
        assert session.max_abs_error() == 0, (
            f"width {width}: virtualized read diverged from ground truth"
        )
        rows.append(
            [
                width,
                result.kernel.n_counter_overflows,
                result.kernel.n_pmis,
                round(100 * overhead, 3),
            ]
        )
    rows.append(["64 (wide)", 0, wide_result.kernel.n_pmis, 0.0])

    table = render_table(
        ["counter width (bits)", "overflows", "PMIs", "overhead %"],
        rows,
        title=f"overflow pressure over {total_cycles:,} cycles at IPC 2.0",
    )
    metrics = {
        "overhead_at_16bit": overhead_at_16,
        "pmis_at_min_width": float(
            rows[0][2] if isinstance(rows[0][2], int) else 0
        ),
        "wide_pmis": float(wide_result.kernel.n_pmis),
    }
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        blocks=[table],
        metrics=metrics,
        notes="reads stay exact at every width: overflow PMIs fold 2^W into "
        "the 64-bit accumulator before the value can be observed stale",
    )
