"""E4 — Table: the interrupted-read hazard and LiMiT's restart protocol.

Counter virtualization means a userspace read is a two-load sequence
(accumulator + hardware counter); a context switch between the loads folds
the hardware value into the accumulator and zeroes the counter, so the
naive sum silently *undercounts by up to a timeslice of events*. LiMiT's
kernel patch detects interrupted reads and the library restarts them.

This experiment times dense reads on an oversubscribed core across a sweep
of timeslices and reports, for the safe and unsafe protocols: how many
reads were wrong, the worst error, and the restart rate the protection
needed.
"""

from __future__ import annotations

from repro.analysis.accuracy import summarize_errors
from repro.common.tables import render_table
from repro.core.limit import LimitSession, UnsafeLimitSession
from repro.experiments.base import ExperimentResult, single_core_config
from repro.hw.events import Event
from repro.sim.engine import run_program
from repro.sim.ops import Compute
from repro.sim.program import ThreadSpec
from repro.workloads.base import COMPUTE_RATES

EXP_ID = "E4"
TITLE = "Interrupted reads: unsafe vs LiMiT restart protocol (Table)"
PAPER_CLAIM = (
    "unprotected userspace reads of virtualized counters silently lose up "
    "to a timeslice of events when preempted mid-read; LiMiT's "
    "interruption detection + restart keeps every read exact at negligible "
    "added cost"
)


def _workload(session, n_threads: int, n_reads: int, gap_cycles: int):
    def worker(ctx):
        yield from session.setup(ctx)
        for _ in range(n_reads):
            yield Compute(gap_cycles, COMPUTE_RATES)
            yield from session.read(ctx, 0)

    return [ThreadSpec(f"reader:{i}", worker) for i in range(n_threads)]


def run(quick: bool = False) -> ExperimentResult:
    n_threads = 3
    n_reads = 800 if quick else 5_000
    gap = 60
    timeslices = [5_000, 50_000] if quick else [5_000, 20_000, 100_000, 500_000]

    rows = []
    worst_unsafe = 0
    safe_always_exact = True
    for slice_cycles in timeslices:
        config = single_core_config(seed=44, timeslice=slice_cycles)
        safe = LimitSession([Event.CYCLES], name="safe")
        unsafe = UnsafeLimitSession([Event.CYCLES], name="unsafe")

        safe_result = run_program(_workload(safe, n_threads, n_reads, gap), config)
        unsafe_result = run_program(
            _workload(unsafe, n_threads, n_reads, gap), config
        )
        safe_result.check_conservation()
        unsafe_result.check_conservation()

        safe_summary = summarize_errors(safe.errors())
        unsafe_summary = summarize_errors(unsafe.errors())
        restarts = sum(
            t.read_restarts for t in safe_result.threads.values()
        )
        safe_always_exact &= safe_summary.all_exact
        worst_unsafe = max(worst_unsafe, unsafe_summary.max_abs)
        rows.append(
            [
                slice_cycles,
                unsafe_summary.n,
                unsafe_summary.n_wrong,
                unsafe_summary.max_abs,
                safe_summary.n_wrong,
                restarts,
                round(1e6 * restarts / safe_summary.n, 1),
            ]
        )

    table = render_table(
        [
            "timeslice (cy)",
            "reads",
            "unsafe wrong",
            "unsafe max err (cy)",
            "safe wrong",
            "safe restarts",
            "restarts/Mread",
        ],
        rows,
        title="read correctness under preemption (3 threads, 1 core)",
    )
    metrics = {
        "safe_always_exact": 1.0 if safe_always_exact else 0.0,
        "unsafe_worst_error": float(worst_unsafe),
        "min_timeslice": float(timeslices[0]),
    }
    notes = (
        "unsafe max error approaches the timeslice length: exactly the "
        "events folded into the accumulator at the preemption"
    )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        blocks=[table],
        metrics=metrics,
        notes=notes,
    )
