"""E6 — Figure/Table: MySQL synchronization case study, and how the access
technique perturbs it.

The same MySQL model runs three times with identical seeds: uninstrumented,
with LiMiT-instrumented locks, and with PAPI-instrumented locks. Each
instrumented run reports what *its* tool observed; comparing against the
unperturbed run's ground truth shows the observer effect: microsecond-cost
reads inside every acquisition/release path inflate critical sections and
induce contention that was not there, while LiMiT's ~37 ns reads leave the
behaviour essentially unchanged — the reason the paper's MySQL numbers were
previously unobtainable.
"""

from __future__ import annotations

from repro.analysis.sync_stats import sync_profile
from repro.baselines.papi import PapiLikeSession
from repro.common.tables import render_table
from repro.core.limit import LimitSession
from repro.experiments.base import ExperimentResult, multicore_config
from repro.hw.events import Event
from repro.sim.engine import run_program
from repro.workloads.base import Instrumentation
from repro.workloads.mysql import LOG_LOCK, MysqlConfig, MysqlWorkload

EXP_ID = "E6"
TITLE = "MySQL locks: behaviour and measurement perturbation (Figure)"
PAPER_CLAIM = (
    "MySQL acquires locks extremely frequently but holds them briefly with "
    "little contention; only a low-overhead precise technique can measure "
    "this without distorting it"
)


def _mysql_config(quick: bool) -> MysqlConfig:
    return MysqlConfig(
        n_workers=8,
        transactions_per_worker=25 if quick else 120,
    )


def run(quick: bool = False) -> ExperimentResult:
    config = multicore_config(n_cores=4, seed=66)

    def one_run(make_instr):
        # The arm's instrumentation comes from a factory so the compiled
        # tier can lower over a fresh build (walking the live sessions
        # would corrupt their records).
        instr = make_instr()
        workload = MysqlWorkload(_mysql_config(quick))
        result = run_program(
            workload.build(instr),
            config,
            lower=lambda: MysqlWorkload(_mysql_config(quick)).build(make_instr()),
        )
        result.check_conservation()
        return result, instr

    # -- arm 1: unperturbed ground truth --------------------------------------
    plain_result, _ = one_run(lambda: None)
    plain_sync = sync_profile(plain_result, prefix="mysql:")
    plain_log = plain_result.locks[LOG_LOCK]

    # -- arm 2: LiMiT-instrumented locks --------------------------------------
    def limit_instr() -> Instrumentation:
        session = LimitSession([Event.CYCLES], count_kernel=True, name="limit")
        return Instrumentation(sessions=[session], lock_reader=session)

    limit_result, limit_run_instr = one_run(limit_instr)
    limit_obs = limit_run_instr.lock_observations()[LOG_LOCK]
    limit_log_truth = limit_result.locks[LOG_LOCK]

    # -- arm 3: PAPI-instrumented locks --------------------------------------
    def papi_instr() -> Instrumentation:
        session = PapiLikeSession([Event.CYCLES], count_kernel=True, name="papi")
        return Instrumentation(sessions=[session], lock_reader=session)

    papi_result, papi_run_instr = one_run(papi_instr)
    papi_obs = papi_run_instr.lock_observations()[LOG_LOCK]
    papi_log_truth = papi_result.locks[LOG_LOCK]

    # -- tables -----------------------------------------------------------------
    table1 = render_table(
        ["arm", "wall slowdown", "log-lock true hold (cy)", "log-lock contention"],
        [
            ["plain", 1.0, round(plain_log.mean_hold, 0),
             f"{plain_log.contention_rate:.1%}"],
            [
                "limit-instrumented",
                round(limit_result.wall_cycles / plain_result.wall_cycles, 3),
                round(limit_log_truth.mean_hold, 0),
                f"{limit_log_truth.contention_rate:.1%}",
            ],
            [
                "papi-instrumented",
                round(papi_result.wall_cycles / plain_result.wall_cycles, 3),
                round(papi_log_truth.mean_hold, 0),
                f"{papi_log_truth.contention_rate:.1%}",
            ],
        ],
        title="perturbation: what instrumenting the locks does to the app",
    )

    table2 = render_table(
        ["metric", "value"],
        [
            ["lock acquisitions", plain_sync.total_acquires],
            ["acquisitions / Mcycle", round(plain_sync.acquires_per_mcycle, 1)],
            ["mean hold (cycles)", round(plain_sync.mean_hold_cycles, 0)],
            ["cycles held / total", f"{plain_sync.hold_fraction:.1%}"],
            ["cycles waiting / total", f"{plain_sync.wait_fraction:.2%}"],
        ],
        title="MySQL synchronization profile (unperturbed ground truth)",
    )

    limit_slow = limit_result.wall_cycles / plain_result.wall_cycles
    papi_slow = papi_result.wall_cycles / plain_result.wall_cycles
    hold_inflation_limit = (
        limit_log_truth.mean_hold / plain_log.mean_hold if plain_log.mean_hold else 0
    )
    hold_inflation_papi = (
        papi_log_truth.mean_hold / plain_log.mean_hold if plain_log.mean_hold else 0
    )
    metrics = {
        "limit_slowdown": limit_slow,
        "papi_slowdown": papi_slow,
        "limit_hold_inflation": hold_inflation_limit,
        "papi_hold_inflation": hold_inflation_papi,
        "acquires_per_mcycle": plain_sync.acquires_per_mcycle,
        "mean_hold_cycles": plain_sync.mean_hold_cycles,
        "wait_fraction": plain_sync.wait_fraction,
        "limit_obs_mean_hold": limit_obs.mean_hold,
        "papi_obs_mean_hold": papi_obs.mean_hold,
    }
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        blocks=[table1, table2],
        metrics=metrics,
    )
