"""E10 — Table: whole-tool comparison against classic profilers.

Puts LiMiT next to the profilers practitioners actually reached for in
2011 — gprof-style instrumentation (per-call hooks) and oprofile-style
system sampling — on a compute kernel with short functions. Reports each
tool's runtime overhead and how accurately it recovers the per-function
cycle totals.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.accuracy import relative_error
from repro.baselines.instrumenting import InstrumentingProfiler
from repro.baselines.sampling import SamplingProfiler
from repro.common.tables import render_table
from repro.core.limit import LimitSession
from repro.core.regions import PreciseRegionProfiler
from repro.experiments.base import ExperimentResult, single_core_config
from repro.hw.events import Event
from repro.sim.engine import run_program
from repro.workloads.base import Instrumentation
from repro.workloads.spec import SpecKernelWorkload, kernel_catalog

EXP_ID = "E10"
TITLE = "Tool comparison: LiMiT vs gprof-class vs oprofile-class (Table)"
PAPER_CLAIM = (
    "existing profilers force a precision/overhead trade-off: "
    "instrumentation is precise-ish but perturbs, sampling is cheap but "
    "statistical; LiMiT gives exact counts at near-zero overhead"
)


def _kernel(quick: bool):
    base = kernel_catalog()["gcc_like"]
    # short phases so hook overhead matters, as with real small functions
    return dataclasses.replace(
        base, phase_cycles=2_000, n_phases=600 if quick else 4_000
    )


def run(quick: bool = False) -> ExperimentResult:
    kernel = _kernel(quick)
    region = f"{kernel.name}:phase"
    truth_total = kernel.total_cycles
    config = single_core_config(seed=1010)

    def one_run(instr):
        result = run_program(SpecKernelWorkload(kernel).build(instr), config)
        result.check_conservation()
        return result

    plain_result = one_run(None)
    plain_wall = plain_result.wall_cycles
    region_truth = plain_result.merged_region(region).user_cycles

    # gprof-class
    gprof = InstrumentingProfiler()
    gprof_result = one_run(Instrumentation(profiler=gprof))
    gprof_est = gprof.total_cycles(region) - gprof.calls(region) * (
        config.machine.costs.instrument_hook
    )

    # oprofile-class sampling
    sampler = SamplingProfiler(Event.CYCLES, period=50_000, name="oprofile")
    sampler_result = one_run(Instrumentation(sessions=[sampler]))
    sampler_est = sampler.estimate_for(sampler_result, region)

    # LiMiT per-phase measurement
    session = LimitSession([Event.CYCLES], name="limit")
    limit_prof = PreciseRegionProfiler(session)
    limit_result = one_run(
        Instrumentation(sessions=[session], region_profiler=limit_prof)
    )
    obs = limit_prof.observation(region)
    limit_est = obs.total - obs.invocations * config.machine.costs.limit_delta_overhead

    rows = [
        [
            "gprof-class hooks",
            round(gprof_result.wall_cycles / plain_wall, 3),
            f"{100 * relative_error(gprof_est, region_truth):.2f}%",
            "wall-clock hooks; includes preemption noise",
        ],
        [
            "oprofile-class sampling",
            round(sampler_result.wall_cycles / plain_wall, 3),
            f"{100 * relative_error(sampler_est, region_truth):.2f}%",
            "statistical; error shrinks only as sqrt(samples)",
        ],
        [
            "limit",
            round(limit_result.wall_cycles / plain_wall, 3),
            f"{100 * relative_error(limit_est, region_truth):.2f}%",
            "exact counts per invocation",
        ],
    ]
    table = render_table(
        ["tool", "slowdown", "profile error", "character"],
        rows,
        title=(
            f"profiling {kernel.n_phases} invocations of a "
            f"{kernel.phase_cycles}-cycle function (truth: {truth_total:,} cy)"
        ),
    )
    metrics = {
        "gprof_slowdown": gprof_result.wall_cycles / plain_wall,
        "sampler_slowdown": sampler_result.wall_cycles / plain_wall,
        "limit_slowdown": limit_result.wall_cycles / plain_wall,
        "limit_rel_err": relative_error(limit_est, region_truth),
        "sampler_rel_err": relative_error(sampler_est, region_truth),
    }
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        blocks=[table],
        metrics=metrics,
    )
