"""E7 — Figure: critical-section length distributions across applications.

Histograms of how long locks are actually held in the MySQL, Apache and
Firefox models: the paper's finding is that critical sections are
overwhelmingly sub-microsecond, which has direct architectural implications
(speculative lock elision viability, futex fast-path importance).
"""

from __future__ import annotations

from repro.analysis.sync_stats import (
    CS_HISTOGRAM_LABELS,
    short_section_fraction,
    sync_profile,
)
from repro.common.tables import render_histogram, render_table
from repro.experiments.base import ExperimentResult, multicore_config
from repro.sim.engine import run_program
from repro.workloads.apache import ApacheConfig, ApacheWorkload
from repro.workloads.firefox import FirefoxConfig, FirefoxWorkload
from repro.workloads.mysql import MysqlConfig, MysqlWorkload

EXP_ID = "E7"
TITLE = "Critical-section length histograms (Figure)"
PAPER_CLAIM = (
    "across server and client parallel applications, critical sections "
    "are predominantly shorter than ~1 us"
)


def _apps(quick: bool):
    scale = 1 if quick else 4
    return {
        "mysql": MysqlWorkload(
            MysqlConfig(n_workers=8, transactions_per_worker=25 * scale)
        ),
        "apache": ApacheWorkload(
            ApacheConfig(n_workers=8, requests_per_worker=30 * scale)
        ),
        "firefox": FirefoxWorkload(FirefoxConfig(events=120 * scale)),
    }


def run(quick: bool = False) -> ExperimentResult:
    blocks = []
    rows = []
    short_fracs = {}
    for app_name, workload in _apps(quick).items():
        result = run_program(workload.build(), multicore_config(n_cores=4, seed=77))
        result.check_conservation()
        profile = sync_profile(result)
        blocks.append(
            render_histogram(
                CS_HISTOGRAM_LABELS,
                profile.hold_histogram,
                title=f"{app_name}: critical-section lengths "
                f"({profile.total_acquires} acquisitions)",
            )
        )
        short = short_section_fraction(profile, threshold_cycles=2_400)
        short_fracs[app_name] = short
        rows.append(
            [
                app_name,
                profile.total_acquires,
                round(profile.mean_hold_cycles, 0),
                f"{short:.1%}",
                f"{profile.wait_fraction:.2%}",
            ]
        )
    blocks.append(
        render_table(
            ["app", "acquisitions", "mean hold (cy)", "held <1us", "wait fraction"],
            rows,
            title="summary across applications",
        )
    )
    metrics = {f"{app}_short_fraction": v for app, v in short_fracs.items()}
    metrics["min_short_fraction"] = min(short_fracs.values())
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        blocks=blocks,
        metrics=metrics,
    )
