"""E8 — Figure: user vs kernel cycle breakdown per application class.

Server workloads spend a large share of their cycles in the kernel —
syscalls, scheduling, interrupt handling — which per-user-mode profiling
misses entirely. LiMiT's per-domain counters (USR/OS select bits on the
virtualized counters) expose the split; SPEC-class compute is the control.
"""

from __future__ import annotations

from repro.analysis.cpi_stack import user_kernel_breakdown
from repro.common.tables import render_table
from repro.experiments.base import ExperimentResult, multicore_config
from repro.sim.engine import run_program
from repro.workloads.apache import ApacheConfig, ApacheWorkload
from repro.workloads.firefox import FirefoxConfig, FirefoxWorkload
from repro.workloads.mysql import MysqlConfig, MysqlWorkload
from repro.workloads.spec import SpecSuiteWorkload

EXP_ID = "E8"
TITLE = "User vs kernel cycles by application (Figure)"
PAPER_CLAIM = (
    "cloud/server applications execute a substantial fraction of their "
    "cycles in the kernel, invisible to user-only characterization; "
    "compute benchmarks do not"
)


def run(quick: bool = False) -> ExperimentResult:
    scale = 1 if quick else 4
    apps = {
        "mysql": MysqlWorkload(
            MysqlConfig(n_workers=8, transactions_per_worker=25 * scale)
        ),
        "apache": ApacheWorkload(
            ApacheConfig(n_workers=8, requests_per_worker=30 * scale)
        ),
        "firefox": FirefoxWorkload(FirefoxConfig(events=120 * scale)),
        "spec_suite": SpecSuiteWorkload(scale=0.5 * scale),
    }

    rows = []
    kernel_fracs: dict[str, float] = {}
    for app_name, workload in apps.items():
        result = run_program(workload.build(), multicore_config(n_cores=4, seed=88))
        result.check_conservation()
        b = user_kernel_breakdown(result)
        kernel_fracs[app_name] = b.kernel_fraction
        rows.append(
            [
                app_name,
                b.user_cycles,
                b.kernel_cycles,
                f"{b.kernel_fraction:.1%}",
                result.kernel.syscall_total(),
                result.kernel.n_context_switches,
            ]
        )
    table = render_table(
        ["app", "user cycles", "kernel cycles", "kernel %", "syscalls", "switches"],
        rows,
        title="cycle domain breakdown (ground truth; LiMiT's OS-domain "
        "counters observe the same split in-band)",
    )
    metrics = {f"{k}_kernel_fraction": v for k, v in kernel_fracs.items()}
    metrics["server_min_kernel_fraction"] = min(
        kernel_fracs["mysql"], kernel_fracs["apache"]
    )
    metrics["spec_kernel_fraction"] = kernel_fracs["spec_suite"]
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        paper_claim=PAPER_CLAIM,
        blocks=[table],
        metrics=metrics,
    )
